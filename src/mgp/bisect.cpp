#include "mgp/bisect.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>

#include "graph/ops.hpp"
#include "mgp/coarsen.hpp"
#include "obs/trace.hpp"
#include "util/require.hpp"

namespace sfp::mgp {

namespace {

/// Hard feasibility bound: floor-based so a tight tolerance (e.g. 1.001)
/// stays exact under integer weights instead of rounding a whole extra
/// vertex in.
graph::weight allowance(graph::weight target, double tol) {
  return std::max(target, static_cast<graph::weight>(
                              std::floor(tol * static_cast<double>(target))));
}

/// Gain of moving v to the other side: external minus internal edge weight.
graph::weight gain_of(const graph::csr& g,
                      const std::vector<graph::vid>& side, graph::vid v) {
  const auto nbrs = g.neighbors(v);
  const auto wgts = g.neighbor_weights(v);
  graph::weight gain = 0;
  for (std::size_t i = 0; i < nbrs.size(); ++i)
    gain += (side[static_cast<std::size_t>(nbrs[i])] !=
             side[static_cast<std::size_t>(v)])
                ? wgts[i]
                : -wgts[i];
  return gain;
}

/// Greedy graph growing: BFS from `seed`, absorbing vertices into side 0
/// until its weight reaches target0 (stopping at whichever prefix lands
/// closer). Disconnected leftovers go to side 1.
std::vector<graph::vid> grow_initial(const graph::csr& g, graph::vid seed,
                                     graph::weight target0) {
  const graph::vid nv = g.num_vertices();
  std::vector<graph::vid> side(static_cast<std::size_t>(nv), 1);
  std::vector<bool> visited(static_cast<std::size_t>(nv), false);
  std::queue<graph::vid> frontier;
  frontier.push(seed);
  visited[static_cast<std::size_t>(seed)] = true;
  graph::weight w0 = 0;
  while (!frontier.empty() && w0 < target0) {
    const graph::vid v = frontier.front();
    frontier.pop();
    const graph::weight wv = g.vertex_weight(v);
    // Stop before absorbing v if that leaves us closer to the target.
    if (w0 + wv - target0 > target0 - w0) break;
    side[static_cast<std::size_t>(v)] = 0;
    w0 += wv;
    for (const graph::vid u : g.neighbors(v)) {
      if (!visited[static_cast<std::size_t>(u)]) {
        visited[static_cast<std::size_t>(u)] = true;
        frontier.push(u);
      }
    }
  }
  // If the seed's component ran out before reaching the target, absorb
  // unvisited vertices (disconnected graphs) until the target is met.
  for (graph::vid v = 0; v < nv && w0 < target0; ++v) {
    if (!visited[static_cast<std::size_t>(v)]) {
      visited[static_cast<std::size_t>(v)] = true;
      side[static_cast<std::size_t>(v)] = 0;
      w0 += g.vertex_weight(v);
    }
  }
  return side;
}

struct candidate {
  graph::weight gain;
  std::uint64_t tiebreak;
  graph::vid v;
  bool operator<(const candidate& o) const {
    // priority_queue is a max-heap; highest gain first, then random tiebreak.
    if (gain != o.gain) return gain < o.gain;
    return tiebreak < o.tiebreak;
  }
};

}  // namespace

graph::weight fm_refine(const graph::csr& g, std::vector<graph::vid>& side,
                        graph::weight target0, double tol, int max_passes,
                        rng& r) {
  const graph::vid nv = g.num_vertices();
  SFP_REQUIRE(side.size() == static_cast<std::size_t>(nv),
              "side labels must cover the graph");
  const graph::weight total = g.total_vertex_weight();
  const graph::weight target[2] = {target0, total - target0};
  const graph::weight allow[2] = {allowance(target0, tol),
                                  allowance(total - target0, tol)};
  // Moves may pass through mildly infeasible states (classic FM hill
  // climbing): one max-weight vertex of slack beyond the hard bound. Only
  // states within `allow` count as feasible when selecting the best prefix.
  graph::weight max_vwgt = 1;
  for (graph::vid v = 0; v < nv; ++v)
    max_vwgt = std::max(max_vwgt, g.vertex_weight(v));
  const graph::weight slack[2] = {
      std::max(allow[0], target[0] + max_vwgt),
      std::max(allow[1], target[1] + max_vwgt)};

  graph::weight w[2] = {0, 0};
  for (graph::vid v = 0; v < nv; ++v)
    w[side[static_cast<std::size_t>(v)]] += g.vertex_weight(v);
  graph::weight cut = graph::cut_weight(g, side);

  const auto imbalance = [&](graph::weight w0) {
    return std::abs(w0 - target[0]);
  };
  const auto feasible = [&](graph::weight w0) {
    return w0 <= allow[0] && (total - w0) <= allow[1];
  };

  std::vector<graph::weight> gain(static_cast<std::size_t>(nv));
  std::vector<bool> moved(static_cast<std::size_t>(nv));

  for (int pass = 0; pass < max_passes; ++pass) {
    std::fill(moved.begin(), moved.end(), false);
    std::priority_queue<candidate> pq;
    for (graph::vid v = 0; v < nv; ++v) {
      gain[static_cast<std::size_t>(v)] = gain_of(g, side, v);
      pq.push({gain[static_cast<std::size_t>(v)], r(), v});
    }

    // Best state seen this pass: prefer feasible, then lowest cut, then
    // lowest imbalance. Position 0 = the starting state.
    struct snapshot {
      bool feas;
      graph::weight cut;
      graph::weight imb;
    };
    snapshot best{feasible(w[0]), cut, imbalance(w[0])};
    std::size_t best_prefix = 0;
    std::vector<graph::vid> trail;

    const auto better = [](const snapshot& a, const snapshot& b) {
      if (a.feas != b.feas) return a.feas;
      if (a.cut != b.cut) return a.cut < b.cut;
      return a.imb < b.imb;
    };

    while (!pq.empty()) {
      const candidate c = pq.top();
      pq.pop();
      const graph::vid v = c.v;
      if (moved[static_cast<std::size_t>(v)] ||
          c.gain != gain[static_cast<std::size_t>(v)])
        continue;  // stale entry
      const graph::vid s = side[static_cast<std::size_t>(v)];
      const graph::vid t = 1 - s;
      const graph::weight wv = g.vertex_weight(v);
      const graph::weight new_w0 = (s == 0) ? w[0] - wv : w[0] + wv;
      // A move is admissible if the destination stays within the slack
      // bound, or if it strictly improves balance (escape hatch for
      // infeasible starts).
      const bool dest_ok = (w[t] + wv) <= slack[t];
      const bool helps_balance = imbalance(new_w0) < imbalance(w[0]);
      if (!dest_ok && !helps_balance) continue;

      // Apply the move.
      side[static_cast<std::size_t>(v)] = t;
      moved[static_cast<std::size_t>(v)] = true;
      w[s] -= wv;
      w[t] += wv;
      cut -= gain[static_cast<std::size_t>(v)];
      trail.push_back(v);
      gain[static_cast<std::size_t>(v)] = -gain[static_cast<std::size_t>(v)];
      const auto nbrs = g.neighbors(v);
      const auto wgts = g.neighbor_weights(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const graph::vid u = nbrs[i];
        if (moved[static_cast<std::size_t>(u)]) continue;
        // u's gain changes by ±2*w(u,v) depending on whether v joined or
        // left u's side.
        gain[static_cast<std::size_t>(u)] +=
            (side[static_cast<std::size_t>(u)] == t) ? -2 * wgts[i]
                                                     : 2 * wgts[i];
        pq.push({gain[static_cast<std::size_t>(u)], r(), u});
      }

      const snapshot now{feasible(w[0]), cut, imbalance(w[0])};
      if (better(now, best)) {
        best = now;
        best_prefix = trail.size();
      }
    }

    // Roll back to the best prefix.
    bool changed = best_prefix > 0;
    while (trail.size() > best_prefix) {
      const graph::vid v = trail.back();
      trail.pop_back();
      const graph::vid s = side[static_cast<std::size_t>(v)];
      const graph::vid t = 1 - s;
      side[static_cast<std::size_t>(v)] = t;
      w[s] -= g.vertex_weight(v);
      w[t] += g.vertex_weight(v);
    }
    cut = best.cut;
    if (!changed) break;  // pass converged
  }
  return cut;
}

std::vector<graph::vid> bisect(const graph::csr& g, graph::weight target0,
                               double tol, const options& opt, rng& r) {
  SFP_REQUIRE(target0 > 0 && target0 < g.total_vertex_weight(),
              "bisection target must be strictly between 0 and total weight");
  // Cap coarse vertex weight so the coarsest graph remains splittable near
  // the target (METIS-style 1.5 * total / coarsen_to).
  const graph::vid coarse_target =
      std::max<graph::vid>(opt.coarsen_to, 24);
  const graph::weight max_vwgt = std::max<graph::weight>(
      1, (3 * g.total_vertex_weight()) / (2 * coarse_target));
  hierarchy h = coarsen(g, coarse_target, max_vwgt, r);

  // Initial bisection at the coarsest level: several greedy growings, keep
  // the best after refinement.
  const graph::csr& cg = h.coarsest();
  std::vector<graph::vid> best_side;
  {
    SFP_OBS_TIMED_SCOPE("mgp.initial");
    graph::weight best_cut = 0;
    bool have_best = false;
    for (int trial = 0; trial < std::max(1, opt.init_trials); ++trial) {
      const auto seed = static_cast<graph::vid>(
          r.below(static_cast<std::uint64_t>(cg.num_vertices())));
      std::vector<graph::vid> side = grow_initial(cg, seed, target0);
      const graph::weight cut =
          fm_refine(cg, side, target0, tol, opt.refine_passes, r);
      if (!have_best || cut < best_cut) {
        best_side = std::move(side);
        best_cut = cut;
        have_best = true;
      }
    }
  }

  // Uncoarsen with refinement at every level.
  std::vector<graph::vid> side = std::move(best_side);
  {
    SFP_OBS_TIMED_SCOPE("mgp.refine");
    for (std::size_t lvl = h.levels.size(); lvl-- > 1;) {
      side = project(h.levels[lvl], side);
      fm_refine(h.levels[lvl - 1].g, side, target0, tol, opt.refine_passes, r);
    }
  }
  return side;
}

namespace {

void rb_recurse(const graph::csr& g, const std::vector<graph::vid>& global_ids,
                int nparts, int first_label, const options& opt, rng& r,
                std::vector<graph::vid>& out) {
  if (nparts == 1) {
    for (const graph::vid id : global_ids)
      out[static_cast<std::size_t>(id)] = first_label;
    return;
  }
  const int k0 = nparts / 2;
  const int k1 = nparts - k0;
  const graph::weight target0 = static_cast<graph::weight>(
      (static_cast<double>(g.total_vertex_weight()) * k0) / nparts + 0.5);
  // RB keeps every split essentially exact (METIS pmetis behaviour: balance
  // first, cut second); the floor-based allowance makes 1.001 a hard split.
  const double tol = 1.001;
  std::vector<graph::vid> side =
      bisect(g, std::max<graph::weight>(1, target0), tol, opt, r);

  std::vector<graph::vid> keep0, keep1;
  for (graph::vid v = 0; v < g.num_vertices(); ++v)
    (side[static_cast<std::size_t>(v)] == 0 ? keep0 : keep1).push_back(v);
  // A degenerate side (possible on tiny graphs) is repaired by stealing one
  // vertex; both sides must be non-empty to host k0/k1 >= 1 parts.
  if (keep0.empty()) {
    keep0.push_back(keep1.back());
    keep1.pop_back();
  } else if (keep1.empty()) {
    keep1.push_back(keep0.back());
    keep0.pop_back();
  }

  std::vector<graph::vid> old0, old1;
  const graph::csr g0 = graph::induced_subgraph(g, keep0, old0);
  const graph::csr g1 = graph::induced_subgraph(g, keep1, old1);
  std::vector<graph::vid> ids0(old0.size()), ids1(old1.size());
  for (std::size_t i = 0; i < old0.size(); ++i)
    ids0[i] = global_ids[static_cast<std::size_t>(old0[i])];
  for (std::size_t i = 0; i < old1.size(); ++i)
    ids1[i] = global_ids[static_cast<std::size_t>(old1[i])];
  rb_recurse(g0, ids0, k0, first_label, opt, r, out);
  rb_recurse(g1, ids1, k1, first_label + k0, opt, r, out);
}

}  // namespace

partition::partition recursive_bisection(const graph::csr& g, int nparts,
                                         const options& opt, rng& r) {
  SFP_OBS_TIMED_SCOPE("mgp.bisect");
  SFP_REQUIRE(nparts >= 1, "need at least one part");
  SFP_REQUIRE(nparts <= g.num_vertices(), "more parts than vertices");
  partition::partition p;
  p.num_parts = nparts;
  p.part_of.assign(static_cast<std::size_t>(g.num_vertices()), 0);
  std::vector<graph::vid> ids(static_cast<std::size_t>(g.num_vertices()));
  std::iota(ids.begin(), ids.end(), 0);
  rb_recurse(g, ids, nparts, 0, opt, r, p.part_of);
  return p;
}

}  // namespace sfp::mgp
