#pragma once
// Halo-exchange planning: the communication schedule induced by a partition
// of the spectral element mesh.
//
// For a given (assembly, partition) pair this computes, per rank: the owned
// elements, the local numbering of every global dof the rank touches, and —
// for each peer rank — the ordered list of dofs whose partial sums must be
// exchanged each time the C0 continuity operator (DSS) runs. This is the
// object a production SEAM-like model would build once at startup; the
// partitioners in this library are competing precisely over how cheap these
// schedules are.

#include <cstdint>
#include <span>
#include <vector>

#include "obs/metrics.hpp"
#include "partition/partition.hpp"
#include "runtime/reliable.hpp"  // lint: layering-ok — seam hosts the timeout-aware wrappers over the virtual-rank world (see blocking rule)
#include "runtime/world.hpp"  // lint: layering-ok — seam hosts the timeout-aware wrappers over the virtual-rank world (see blocking rule)
#include "seam/assembly.hpp"

namespace sfp::seam {

struct rank_exchange_plan {
  std::vector<int> owned;  ///< element ids, ascending
  /// Flat node index (into the global field layout) of every owned node.
  std::vector<std::size_t> owned_nodes;
  /// For each owned node: index into `touched_dofs` (local dof numbering).
  std::vector<std::int32_t> node_dof_local;
  /// Global dofs touched by this rank's elements, ascending.
  std::vector<std::int64_t> touched_dofs;
  /// 1 / global multiplicity, per touched dof.
  std::vector<double> inv_multiplicity;
  struct peer_exchange {
    int rank;
    std::vector<std::int32_t> dof_local;  ///< shared dofs, ascending global order
  };
  std::vector<peer_exchange> peers;  ///< ascending by rank
};

struct exchange_plan {
  std::vector<rank_exchange_plan> ranks;

  /// Build plans for every rank. Every part must own at least one element.
  static exchange_plan build(const assembly& dofs,
                             const partition::partition& part);

  /// Diagnostics: total dof-partials crossing rank boundaries per DSS.
  std::int64_t total_exchange_volume() const;
  int max_peers() const;
};

/// Per-rank distributed DSS executor: accumulates the rank's own partial
/// sums, exchanges boundary partials with every peer, and writes averaged
/// values back into the owned slice of `field`. Each call must use a fresh
/// `tag` agreed across ranks (e.g. a shared counter).
class halo_exchanger {
 public:
  halo_exchanger(const rank_exchange_plan& plan, runtime::communicator& comm);

  /// Reliable-transport mode: halo traffic travels through `channel`
  /// (checksummed, acked, retransmitted — see runtime/reliable.hpp) instead
  /// of raw sends, healing injected drop/corrupt/duplicate/reorder faults
  /// in place. Each dss_average then ends with channel->flush() and
  /// channel->fence(): no rank leaves the exchange until every rank's halo
  /// traffic is delivered and acknowledged, which is what makes it safe to
  /// enter raw (non-pumping) collectives afterwards. `channel` must outlive
  /// the exchanger and belong to the same rank as `comm`.
  halo_exchanger(const rank_exchange_plan& plan, runtime::communicator& comm,
                 runtime::reliable_channel* channel);

  /// Backend-agnostic reliable-only mode: all traffic goes through
  /// `channel`, whatever transport it sits on (in-process or socket); no
  /// raw communicator is needed or available. `rank` is this rank's id,
  /// used only for the per-peer obs counter names.
  halo_exchanger(const rank_exchange_plan& plan, int rank,
                 runtime::reliable_channel& channel);

  /// Distributed equivalent of assembly::dss_average restricted to owned
  /// elements. Returns (messages sent, doubles sent) for accounting.
  std::pair<std::int64_t, std::int64_t> dss_average(std::span<double> field,
                                                    int tag);

 private:
  /// Shared core: obs counters + scratch sizing; `rank` only names the
  /// counters. Delegated to by every public constructor.
  halo_exchanger(const rank_exchange_plan& plan, int rank);

  const rank_exchange_plan* plan_;
  runtime::communicator* comm_ = nullptr;  ///< null in reliable-only mode
  runtime::reliable_channel* reliable_ = nullptr;
  std::vector<double> acc_;     // per touched dof
  std::vector<double> fresh_;   // accumulated incl. remote partials
  std::vector<double> packed_;  // send scratch
  /// Per-peer halo-volume counters in the global obs registry
  /// ("seam.halo.doubles.rankR.peerQ"), parallel to plan.peers; empty when
  /// no obs session was active at construction.
  std::vector<obs::counter*> peer_doubles_;
};

}  // namespace sfp::seam
