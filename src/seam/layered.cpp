#include "seam/layered.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace sfp::seam {

layered_advection::layered_advection(const mesh::cubed_sphere& mesh, int np,
                                     int nlev, double omega0, double shear)
    : nlev_(nlev), omega0_(omega0), shear_(shear), base_(mesh, np, 1.0) {
  SFP_REQUIRE(nlev >= 1, "need at least one layer");
  SFP_REQUIRE(omega0 != 0.0, "rotation rate must be non-zero");
  layers_.assign(static_cast<std::size_t>(nlev),
                 std::vector<double>(base_.field().size(), 0.0));
  s1_.resize(base_.field().size());
  s2_.resize(base_.field().size());
  rhs_.resize(base_.field().size());
}

double layered_advection::omega_at(int level) const {
  SFP_REQUIRE(level >= 0 && level < nlev_, "level out of range");
  if (nlev_ == 1) return omega0_;
  const double frac = static_cast<double>(level) / (nlev_ - 1) - 0.5;
  return omega0_ * (1.0 + shear_ * frac);
}

void layered_advection::set_field(
    const std::function<double(mesh::vec3, int)>& f) {
  for (int l = 0; l < nlev_; ++l) {
    auto& layer = layers_[static_cast<std::size_t>(l)];
    for (std::size_t k = 0; k < layer.size(); ++k)
      layer[k] = f(base_.geometry().position[k], l);
    base_.dofs().dss_average(layer);
  }
}

std::span<const double> layered_advection::layer(int level) const {
  SFP_REQUIRE(level >= 0 && level < nlev_, "level out of range");
  return layers_[static_cast<std::size_t>(level)];
}

void layered_advection::step(double dt) {
  SFP_REQUIRE(dt > 0, "timestep must be positive");
  const std::size_t n = s1_.size();
  for (int l = 0; l < nlev_; ++l) {
    auto& q = layers_[static_cast<std::size_t>(l)];
    const double w = omega_at(l);  // scales the base (omega=1) velocity
    // SSP-RK3 with the scaled tendency; DSS after every stage.
    base_.tendency(q, rhs_);
    for (std::size_t k = 0; k < n; ++k) s1_[k] = q[k] + dt * w * rhs_[k];
    base_.dofs().dss_average(s1_);

    base_.tendency(s1_, rhs_);
    for (std::size_t k = 0; k < n; ++k)
      s2_[k] = 0.75 * q[k] + 0.25 * (s1_[k] + dt * w * rhs_[k]);
    base_.dofs().dss_average(s2_);

    base_.tendency(s2_, rhs_);
    for (std::size_t k = 0; k < n; ++k)
      q[k] = q[k] / 3.0 + (2.0 / 3.0) * (s2_[k] + dt * w * rhs_[k]);
    base_.dofs().dss_average(q);
  }
}

double layered_advection::cfl_dt(double cfl) const {
  double w_max = 0;
  for (int l = 0; l < nlev_; ++l)
    w_max = std::max(w_max, std::abs(omega_at(l)));
  SFP_REQUIRE(w_max > 0, "flow is everywhere zero");
  return base_.cfl_dt(cfl) / w_max;
}

double layered_advection::layer_mass(int level) const {
  SFP_REQUIRE(level >= 0 && level < nlev_, "level out of range");
  const auto& q = layers_[static_cast<std::size_t>(level)];
  const auto& geom = base_.geometry();
  const auto& rule = base_.rule();
  const int np = rule.np();
  double total = 0;
  for (std::size_t k = 0; k < q.size(); ++k) {
    const int i = static_cast<int>(k % static_cast<std::size_t>(np));
    const int j = static_cast<int>((k / static_cast<std::size_t>(np)) %
                                   static_cast<std::size_t>(np));
    total += rule.weights[static_cast<std::size_t>(i)] *
             rule.weights[static_cast<std::size_t>(j)] * geom.jacobian[k] *
             q[k];
  }
  return total;
}

}  // namespace sfp::seam
