#include "seam/distributed.hpp"

#include <algorithm>
#include <exception>
#include <mutex>
#include <optional>

#include "core/escalation.hpp"
#include "obs/trace.hpp"
#include "runtime/reliable.hpp"  // lint: layering-ok — seam hosts the timeout-aware wrappers over the virtual-rank world (see blocking rule)
#include "runtime/world.hpp"  // lint: layering-ok — seam hosts the timeout-aware wrappers over the virtual-rank world (see blocking rule)
#include "seam/exchange.hpp"
#include "util/require.hpp"
#include "util/stopwatch.hpp"

namespace sfp::seam {

namespace {

/// Shared accounting across ranks.
struct stats_collector {
  std::mutex mutex;
  dist_stats total;

  void add(double compute_s, double exchange_s, std::int64_t messages,
           std::int64_t doubles_sent) {
    std::lock_guard<std::mutex> lock(mutex);
    total.compute_seconds += compute_s;
    total.exchange_seconds += exchange_s;
    total.messages += messages;
    total.doubles_sent += doubles_sent;
    total.max_rank_seconds =
        std::max(total.max_rank_seconds, compute_s + exchange_s);
  }
};

/// The one place the plain (non-resilient) runners construct the in-process
/// fabric: builds the world, runs `rank_main` on every rank, then hands the
/// world to `after` so callers can harvest per-rank counters.
template <typename RankMain, typename After>
void run_on_world(int nranks, const runtime::world::options& wopts,
                  RankMain&& rank_main, After&& after) {
  runtime::world w(nranks, wopts);  // lint: transport-discipline-ok — run_on_world is the plain runners' single fabric construction site
  w.run(rank_main);
  after(w);
}

}  // namespace

std::vector<double> run_distributed(const advection_model& model,
                                    const partition::partition& part,
                                    double dt, int nsteps, dist_stats* stats,
                                    const runtime::world::options& wopts) {
  SFP_REQUIRE(nsteps >= 0, "step count must be non-negative");
  SFP_REQUIRE(dt > 0, "timestep must be positive");
  const exchange_plan plan = exchange_plan::build(model.dofs(), part);
  const std::size_t nfield = model.field().size();

  std::vector<double> result(nfield, 0.0);
  stats_collector collector;

  const auto rank_main = [&](runtime::communicator& comm) {
    const rank_exchange_plan& rp =
        plan.ranks[static_cast<std::size_t>(comm.rank())];
    halo_exchanger halo(rp, comm);
    sfp::stopwatch clock;
    double compute_s = 0, exchange_s = 0;
    std::int64_t messages = 0, doubles_sent = 0;

    std::vector<double> q(model.field().begin(), model.field().end());
    std::vector<double> rhs(nfield, 0.0), s1(nfield, 0.0), s2(nfield, 0.0);

    int tag_counter = 0;
    const auto dss = [&](std::vector<double>& f) {
      SFP_TRACE_SCOPE_CAT("seam.exchange", "seam");
      clock.reset();
      const auto [msgs, sent] = halo.dss_average(f, tag_counter++);
      messages += msgs;
      doubles_sent += sent;
      exchange_s += clock.seconds();
    };
    const auto local_tendency = [&](const std::vector<double>& src,
                                    std::vector<double>& dst) {
      SFP_TRACE_SCOPE_CAT("seam.compute", "seam");
      clock.reset();
      for (const int e : rp.owned) model.tendency_element(src, dst, e);
      compute_s += clock.seconds();
    };

    for (int step = 0; step < nsteps; ++step) {
      SFP_TRACE_SCOPE_CAT("seam.step", "seam");
      local_tendency(q, rhs);
      for (const std::size_t n : rp.owned_nodes) s1[n] = q[n] + dt * rhs[n];
      dss(s1);

      local_tendency(s1, rhs);
      for (const std::size_t n : rp.owned_nodes)
        s2[n] = 0.75 * q[n] + 0.25 * (s1[n] + dt * rhs[n]);
      dss(s2);

      local_tendency(s2, rhs);
      for (const std::size_t n : rp.owned_nodes)
        q[n] = q[n] / 3.0 + (2.0 / 3.0) * (s2[n] + dt * rhs[n]);
      dss(q);
    }

    for (const std::size_t n : rp.owned_nodes) result[n] = q[n];
    collector.add(compute_s, exchange_s, messages, doubles_sent);
  };
  run_on_world(part.num_parts, wopts, rank_main, [&](runtime::world& w) {
    if (!stats) return;
    *stats = collector.total;
    stats->per_rank.reserve(static_cast<std::size_t>(part.num_parts));
    for (int p = 0; p < part.num_parts; ++p)
      stats->per_rank.push_back(w.counters(p));
  });
  return result;
}

std::vector<double> run_distributed_resilient(
    const advection_model& model, const core::cube_curve& curve,
    const partition::partition& part, double dt, int nsteps,
    const resilience_options& ropts, recovery_report* report,
    dist_stats* stats) {
  SFP_REQUIRE(nsteps >= 0, "step count must be non-negative");
  SFP_REQUIRE(dt > 0, "timestep must be positive");
  SFP_REQUIRE(part.part_of.size() == curve.order.size(),
              "partition must cover the curve's mesh");
  SFP_REQUIRE(ropts.max_recoveries >= 0, "max_recoveries must be >= 0");
  const std::size_t nfield = model.field().size();

  recovery_report rep;
  stats_collector collector;

  // Committed global state: the tracer field after `done` completed steps.
  std::vector<double> state(model.field().begin(), model.field().end());
  partition::partition cur = part;
  int done = 0;

  for (int attempt = 0; done < nsteps; ++attempt) {
    const exchange_plan plan = exchange_plan::build(model.dofs(), cur);
    const int nranks = cur.num_parts;
    rep.attempts = attempt + 1;

    // Per-step checkpoints, double-buffered. A buffer for step s is sealed
    // by the end-of-step barrier and can only be overwritten at step s+2,
    // which requires the step s+1 barrier — so the newest fully-barriered
    // buffer is never torn, even with ranks one step apart mid-abort.
    std::vector<std::vector<double>> snap(2, state);
    std::mutex progress_mutex;
    std::vector<int> progress(static_cast<std::size_t>(nranks), 0);

    // How this attempt died, for the escalation policy. Set under
    // reliable_mutex-free single-writer discipline: only the root-cause
    // exception reaches the catch blocks below.
    core::failure_kind kind = core::failure_kind::unknown;
    int thrower = -1, unreachable_peer = -1;
    std::exception_ptr failure;
    std::mutex reliable_mutex;

    // One rank's attempt, independent of the fabric underneath. In-process
    // mode passes the raw communicator (channel optional); socket mode
    // passes only the reliable channel — there is no raw communicator, so
    // every collective point goes through the channel's pumping fence.
    const auto attempt_body = [&](int rank, runtime::communicator* comm,
                                  runtime::reliable_channel* channel) {
      const rank_exchange_plan& rp =
          plan.ranks[static_cast<std::size_t>(rank)];
      std::optional<halo_exchanger> halo_slot;
      if (comm)
        halo_slot.emplace(rp, *comm, channel);
      else
        halo_slot.emplace(rp, rank, *channel);
      halo_exchanger& halo = *halo_slot;
        sfp::stopwatch clock;
        double compute_s = 0, exchange_s = 0;
        std::int64_t messages = 0, doubles_sent = 0;

        std::vector<double> q(state.begin(), state.end());
        std::vector<double> rhs(nfield, 0.0), s1(nfield, 0.0), s2(nfield, 0.0);

        int tag_counter = 0;
        const auto dss = [&](std::vector<double>& f) {
          clock.reset();
          const auto [msgs, sent] = halo.dss_average(f, tag_counter++);
          messages += msgs;
          doubles_sent += sent;
          exchange_s += clock.seconds();
        };
        const auto local_tendency = [&](const std::vector<double>& src,
                                        std::vector<double>& dst) {
          clock.reset();
          for (const int e : rp.owned) model.tendency_element(src, dst, e);
          compute_s += clock.seconds();
        };

        for (int step = done; step < nsteps; ++step) {
          SFP_TRACE_SCOPE_CAT("seam.step", "seam");
          local_tendency(q, rhs);
          for (const std::size_t n : rp.owned_nodes) s1[n] = q[n] + dt * rhs[n];
          dss(s1);

          local_tendency(s1, rhs);
          for (const std::size_t n : rp.owned_nodes)
            s2[n] = 0.75 * q[n] + 0.25 * (s1[n] + dt * rhs[n]);
          dss(s2);

          local_tendency(s2, rhs);
          for (const std::size_t n : rp.owned_nodes)
            q[n] = q[n] / 3.0 + (2.0 / 3.0) * (s2[n] + dt * rhs[n]);
          dss(q);

          auto& checkpoint = snap[static_cast<std::size_t>((step - done) & 1)];
          for (const std::size_t n : rp.owned_nodes) checkpoint[n] = q[n];
          // Seal the checkpoint. With the reliable channel this MUST be the
          // pumping fence, not the raw barrier: a rank parked in a
          // non-pumping collective can never retransmit or re-ack, so a
          // peer still healing a lost message would starve until its
          // recv_timeout and fake a peer_unreachable escalation.
          if (channel)
            channel->fence();
          else
            comm->barrier();  // lint: blocking-ok — per-step sync; world::options::timeout turns a lost rank into comm_timeout_error
          {
            std::lock_guard<std::mutex> lock(progress_mutex);
            progress[static_cast<std::size_t>(rank)] = step - done + 1;
          }
        }

        for (const std::size_t n : rp.owned_nodes) state[n] = q[n];
        collector.add(compute_s, exchange_s, messages, doubles_sent);
        if (channel) {
          std::lock_guard<std::mutex> lock(reliable_mutex);
          rep.reliable += channel->stats();
        }
      };

    // Identical fabric-failure handling on every backend: exactly these
    // three exception types feed the escalation ladder. Anything else
    // (model assertions, contract violations) propagates.
    const auto run_attempt = [&](auto& fabric, const auto& main_fn) {
      try {
        fabric.run(main_fn);
      } catch (const runtime::rank_killed&) {
        kind = core::failure_kind::rank_killed;
        thrower = fabric.failed_rank();
        failure = std::current_exception();
      } catch (const runtime::peer_unreachable_error& e) {
        kind = core::failure_kind::peer_unreachable;
        thrower = e.rank();
        unreachable_peer = e.peer();
        failure = std::current_exception();
      } catch (const runtime::comm_timeout_error& e) {
        kind = core::failure_kind::comm_timeout;
        thrower = e.rank();
        failure = std::current_exception();
      }
    };

    if (ropts.backend == runtime::transport_backend::inproc) {
      runtime::world::options wopts;
      wopts.timeout = ropts.timeout;
      if (attempt == 0) wopts.faults = ropts.faults;
      runtime::world w(nranks, wopts);  // lint: transport-discipline-ok — the resilient runner's in-process fabric branch
      run_attempt(w, [&](runtime::communicator& comm) {
        std::optional<runtime::reliable_channel> channel;
        if (ropts.reliable_transport) {
          runtime::reliable_options reliable_opts = ropts.reliable;
          reliable_opts.epoch = static_cast<std::uint64_t>(attempt);
          channel.emplace(comm, reliable_opts);
        }
        attempt_body(comm.rank(), &comm, channel ? &*channel : nullptr);
      });
      rep.counters += w.total_counters();
    } else {
      SFP_REQUIRE(ropts.reliable_transport,
                  "socket backend requires reliable_transport");
      runtime::socket_fabric_options sopts;
      if (attempt == 0) {
        sopts.faults = ropts.faults;
        sopts.stream_faults = ropts.stream_faults;
      }
      // Pin stream faults to reliable *data* frames: acks are smaller than
      // one envelope payload, so their interleaving can't shift a fault's
      // nth index between runs.
      sopts.stream_fault_min_payload = runtime::wire::header_doubles + 1;
      runtime::socket_fabric fab(nranks, sopts);  // lint: transport-discipline-ok — the resilient runner's socket fabric branch
      run_attempt(fab, [&](runtime::transport& t) {
        runtime::reliable_options reliable_opts = ropts.reliable;
        reliable_opts.epoch = static_cast<std::uint64_t>(attempt);
        runtime::reliable_channel channel(t, reliable_opts);
        attempt_body(t.rank(), nullptr, &channel);
      });
      rep.counters += fab.total_counters();
      rep.socket += fab.total_stats();
    }

    if (failure) {
      const core::escalation_decision decision = core::decide_escalation(
          kind, thrower, unreachable_peer, attempt, ropts.max_recoveries,
          nranks);
      if (!decision.recover) std::rethrow_exception(failure);

      // Roll back to the newest checkpoint every rank sealed, then re-slice
      // the curve over the survivors and go again.
      int completed = 0;
      for (const int p : progress) completed = std::max(completed, p);
      if (completed > 0)
        state = snap[static_cast<std::size_t>((completed - 1) & 1)];
      done += completed;
      core::recovery_plan rplan =
          core::plan_recovery(curve, cur, decision.victim);
      if (rep.failed_rank < 0) {
        rep.failed_rank = decision.victim;
        rep.restart_step = done;
        rep.migration = rplan.migration;
        rep.survivor_of = std::move(rplan.survivor_of);
      }
      cur = std::move(rplan.part);
      continue;
    }
    done = nsteps;
  }

  rep.final_partition = std::move(cur);
  if (report) *report = std::move(rep);
  if (stats) *stats = collector.total;
  return state;
}

swe_state run_distributed_swe(const shallow_water_model& model,
                              const partition::partition& part, double dt,
                              int nsteps, dist_stats* stats) {
  SFP_REQUIRE(nsteps >= 0, "step count must be non-negative");
  SFP_REQUIRE(dt > 0, "timestep must be positive");
  const exchange_plan plan = exchange_plan::build(model.dofs(), part);
  const std::size_t nfield = model.depth().size();

  swe_state result;
  result.h.assign(nfield, 0.0);
  result.ux.assign(nfield, 0.0);
  result.uy.assign(nfield, 0.0);
  result.uz.assign(nfield, 0.0);
  stats_collector collector;

  const auto rank_main = [&](runtime::communicator& comm) {
    const rank_exchange_plan& rp =
        plan.ranks[static_cast<std::size_t>(comm.rank())];
    halo_exchanger halo(rp, comm);
    sfp::stopwatch clock;
    double compute_s = 0, exchange_s = 0;
    std::int64_t messages = 0, doubles_sent = 0;

    // Four prognostic fields, full layout, owned slices meaningful.
    std::vector<double> h(model.depth().begin(), model.depth().end());
    std::vector<double> ux(model.velocity_x().begin(), model.velocity_x().end());
    std::vector<double> uy(model.velocity_y().begin(), model.velocity_y().end());
    std::vector<double> uz(model.velocity_z().begin(), model.velocity_z().end());
    std::vector<double> rh(nfield), rx(nfield), ry(nfield), rz(nfield);
    std::vector<double> t1h(nfield), t1x(nfield), t1y(nfield), t1z(nfield);
    std::vector<double> t2h(nfield), t2x(nfield), t2y(nfield), t2z(nfield);
    auto scratch = model.make_scratch();

    int tag_counter = 0;
    const auto project_dss = [&](std::vector<double>& fh,
                                 std::vector<double>& fx,
                                 std::vector<double>& fy,
                                 std::vector<double>& fz) {
      SFP_TRACE_SCOPE_CAT("seam.exchange", "seam");
      clock.reset();
      for (const std::size_t n : rp.owned_nodes)
        model.project_node(n, fx, fy, fz);
      for (auto* field : {&fh, &fx, &fy, &fz}) {
        const auto [msgs, sent] = halo.dss_average(*field, tag_counter++);
        messages += msgs;
        doubles_sent += sent;
      }
      exchange_s += clock.seconds();
    };
    const auto local_rhs = [&](const std::vector<double>& sh,
                               const std::vector<double>& sx,
                               const std::vector<double>& sy,
                               const std::vector<double>& sz) {
      SFP_TRACE_SCOPE_CAT("seam.compute", "seam");
      clock.reset();
      for (const int e : rp.owned)
        model.rhs_element(sh, sx, sy, sz, rh, rx, ry, rz, e, scratch);
      compute_s += clock.seconds();
    };

    for (int step = 0; step < nsteps; ++step) {
      local_rhs(h, ux, uy, uz);
      for (const std::size_t n : rp.owned_nodes) {
        t1h[n] = h[n] + dt * rh[n];
        t1x[n] = ux[n] + dt * rx[n];
        t1y[n] = uy[n] + dt * ry[n];
        t1z[n] = uz[n] + dt * rz[n];
      }
      project_dss(t1h, t1x, t1y, t1z);

      local_rhs(t1h, t1x, t1y, t1z);
      for (const std::size_t n : rp.owned_nodes) {
        t2h[n] = 0.75 * h[n] + 0.25 * (t1h[n] + dt * rh[n]);
        t2x[n] = 0.75 * ux[n] + 0.25 * (t1x[n] + dt * rx[n]);
        t2y[n] = 0.75 * uy[n] + 0.25 * (t1y[n] + dt * ry[n]);
        t2z[n] = 0.75 * uz[n] + 0.25 * (t1z[n] + dt * rz[n]);
      }
      project_dss(t2h, t2x, t2y, t2z);

      local_rhs(t2h, t2x, t2y, t2z);
      for (const std::size_t n : rp.owned_nodes) {
        h[n] = h[n] / 3.0 + (2.0 / 3.0) * (t2h[n] + dt * rh[n]);
        ux[n] = ux[n] / 3.0 + (2.0 / 3.0) * (t2x[n] + dt * rx[n]);
        uy[n] = uy[n] / 3.0 + (2.0 / 3.0) * (t2y[n] + dt * ry[n]);
        uz[n] = uz[n] / 3.0 + (2.0 / 3.0) * (t2z[n] + dt * rz[n]);
      }
      project_dss(h, ux, uy, uz);
    }

    for (const std::size_t n : rp.owned_nodes) {
      result.h[n] = h[n];
      result.ux[n] = ux[n];
      result.uy[n] = uy[n];
      result.uz[n] = uz[n];
    }
    collector.add(compute_s, exchange_s, messages, doubles_sent);
  };
  run_on_world(part.num_parts, {}, rank_main, [](runtime::world&) {});

  if (stats) *stats = collector.total;
  return result;
}

std::vector<std::vector<double>> run_distributed_layered(
    const layered_advection& model, const partition::partition& part,
    double dt, int nsteps, dist_stats* stats) {
  SFP_REQUIRE(nsteps >= 0, "step count must be non-negative");
  SFP_REQUIRE(dt > 0, "timestep must be positive");
  const advection_model& base = model.base();
  const exchange_plan plan = exchange_plan::build(base.dofs(), part);
  const std::size_t nfield = base.field().size();
  const int nlev = model.nlev();

  std::vector<std::vector<double>> result(
      static_cast<std::size_t>(nlev), std::vector<double>(nfield, 0.0));
  stats_collector collector;

  const auto rank_main = [&](runtime::communicator& comm) {
    const rank_exchange_plan& rp =
        plan.ranks[static_cast<std::size_t>(comm.rank())];
    halo_exchanger halo(rp, comm);
    sfp::stopwatch clock;
    double compute_s = 0, exchange_s = 0;
    std::int64_t messages = 0, doubles_sent = 0;

    std::vector<std::vector<double>> q(static_cast<std::size_t>(nlev));
    for (int l = 0; l < nlev; ++l)
      q[static_cast<std::size_t>(l)].assign(model.layer(l).begin(),
                                            model.layer(l).end());
    std::vector<double> rhs(nfield, 0.0), s1(nfield, 0.0), s2(nfield, 0.0);

    int tag_counter = 0;
    const auto dss = [&](std::vector<double>& f) {
      SFP_TRACE_SCOPE_CAT("seam.exchange", "seam");
      clock.reset();
      const auto [msgs, sent] = halo.dss_average(f, tag_counter++);
      messages += msgs;
      doubles_sent += sent;
      exchange_s += clock.seconds();
    };
    const auto local_tendency = [&](const std::vector<double>& src) {
      SFP_TRACE_SCOPE_CAT("seam.compute", "seam");
      clock.reset();
      for (const int e : rp.owned) base.tendency_element(src, rhs, e);
      compute_s += clock.seconds();
    };

    for (int step = 0; step < nsteps; ++step) {
      for (int l = 0; l < nlev; ++l) {
        auto& ql = q[static_cast<std::size_t>(l)];
        const double wscale = model.omega_at(l);
        local_tendency(ql);
        for (const std::size_t n : rp.owned_nodes)
          s1[n] = ql[n] + dt * wscale * rhs[n];
        dss(s1);
        local_tendency(s1);
        for (const std::size_t n : rp.owned_nodes)
          s2[n] = 0.75 * ql[n] + 0.25 * (s1[n] + dt * wscale * rhs[n]);
        dss(s2);
        local_tendency(s2);
        for (const std::size_t n : rp.owned_nodes)
          ql[n] = ql[n] / 3.0 + (2.0 / 3.0) * (s2[n] + dt * wscale * rhs[n]);
        dss(ql);
      }
    }

    for (int l = 0; l < nlev; ++l)
      for (const std::size_t n : rp.owned_nodes)
        result[static_cast<std::size_t>(l)][n] =
            q[static_cast<std::size_t>(l)][n];
    collector.add(compute_s, exchange_s, messages, doubles_sent);
  };
  run_on_world(part.num_parts, {}, rank_main, [](runtime::world&) {});

  if (stats) *stats = collector.total;
  return result;
}

}  // namespace sfp::seam
