#include "seam/gll.hpp"

#include <cmath>
#include <numbers>

#include "util/require.hpp"

namespace sfp::seam {

double legendre(int n, double x) {
  SFP_REQUIRE(n >= 0, "degree must be non-negative");
  if (n == 0) return 1.0;
  double pm1 = 1.0, p = x;
  for (int k = 2; k <= n; ++k) {
    const double pk = ((2.0 * k - 1.0) * x * p - (k - 1.0) * pm1) / k;
    pm1 = p;
    p = pk;
  }
  return p;
}

gll_rule make_gll(int np) {
  SFP_REQUIRE(np >= 2, "GLL rule needs at least 2 points");
  const int n = np - 1;  // polynomial degree
  gll_rule rule;
  rule.nodes.resize(static_cast<std::size_t>(np));
  rule.weights.resize(static_cast<std::size_t>(np));

  // Newton iteration (von Winckel's classic lglnodes): nodes are the roots
  // of (1-x^2) P'_n(x); start from Chebyshev-Lobatto points.
  for (int i = 0; i < np; ++i) {
    double x = -std::cos(std::numbers::pi * i / n);
    double x_old = 2.0;
    double pn = 0.0;
    for (int it = 0; it < 100 && std::abs(x - x_old) > 1e-15; ++it) {
      x_old = x;
      // Evaluate P_{n}(x) and P_{n-1}(x) by recurrence.
      double pm1 = 1.0, p = x;
      for (int k = 2; k <= n; ++k) {
        const double pk = ((2.0 * k - 1.0) * x * p - (k - 1.0) * pm1) / k;
        pm1 = p;
        p = pk;
      }
      pn = p;
      x = x_old - (x * p - pm1) / (np * p);
    }
    rule.nodes[static_cast<std::size_t>(i)] = x;
    // Re-evaluate P_n at the converged node for the weight formula.
    pn = legendre(n, x);
    rule.weights[static_cast<std::size_t>(i)] =
        2.0 / (n * np * pn * pn);
  }
  // Pin the endpoints exactly.
  rule.nodes.front() = -1.0;
  rule.nodes.back() = 1.0;

  // Barycentric differentiation matrix: exact for the interpolation basis on
  // these nodes, no sign-convention pitfalls.
  std::vector<double> lambda(static_cast<std::size_t>(np), 1.0);
  for (int i = 0; i < np; ++i) {
    for (int j = 0; j < np; ++j) {
      if (i != j)
        lambda[static_cast<std::size_t>(i)] /=
            (rule.nodes[static_cast<std::size_t>(i)] -
             rule.nodes[static_cast<std::size_t>(j)]);
    }
  }
  rule.diff.assign(static_cast<std::size_t>(np) * static_cast<std::size_t>(np),
                   0.0);
  for (int i = 0; i < np; ++i) {
    double row_sum = 0.0;
    for (int j = 0; j < np; ++j) {
      if (i == j) continue;
      const double d = lambda[static_cast<std::size_t>(j)] /
                       (lambda[static_cast<std::size_t>(i)] *
                        (rule.nodes[static_cast<std::size_t>(i)] -
                         rule.nodes[static_cast<std::size_t>(j)]));
      rule.diff[static_cast<std::size_t>(i * np + j)] = d;
      row_sum += d;
    }
    rule.diff[static_cast<std::size_t>(i * np + i)] = -row_sum;
  }
  return rule;
}

}  // namespace sfp::seam
