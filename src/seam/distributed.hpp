#pragma once
// Distributed execution of the advection mini-app over the virtual-rank
// runtime: each rank computes its partition's elements and exchanges element
// boundary contributions with neighbouring ranks at every RK stage — the
// same halo-exchange pattern that determines SEAM's parallel performance on
// the paper's cluster.

#include <chrono>
#include <cstdint>
#include <vector>

#include "core/cube_curve.hpp"
#include "core/rebalance.hpp"
#include "mesh/cubed_sphere.hpp"
#include "partition/partition.hpp"
#include "runtime/reliable.hpp"  // lint: layering-ok — seam hosts the timeout-aware wrappers over the virtual-rank world (see blocking rule)
#include "runtime/socket_transport.hpp"  // lint: layering-ok — seam hosts the timeout-aware wrappers over the virtual-rank world (see blocking rule)
#include "runtime/world.hpp"  // lint: layering-ok — seam hosts the timeout-aware wrappers over the virtual-rank world (see blocking rule)
#include "seam/advection.hpp"
#include "seam/layered.hpp"
#include "seam/shallow_water.hpp"

namespace sfp::seam {

/// Aggregate runtime statistics, summed over ranks.
struct dist_stats {
  double compute_seconds = 0;   ///< element kernel time
  double exchange_seconds = 0;  ///< boundary exchange (pack/send/recv/unpack)
  std::int64_t messages = 0;    ///< point-to-point messages sent
  std::int64_t doubles_sent = 0;  ///< total payload volume
  double max_rank_seconds = 0;  ///< slowest rank's total time
  /// Per-rank runtime counters from the world (indexed by rank). Filled by
  /// run_distributed; the trace tooling joins these with the span timeline.
  std::vector<runtime::rank_counters> per_rank;
};

/// Run `nsteps` of SSP-RK3 advection for `model`, distributed across
/// `part.num_parts` virtual ranks. The model's current field is the initial
/// condition; the returned vector is the final global field in the model's
/// layout (the model itself is left untouched). Fills `stats` if non-null.
///
/// Requires part.num_parts >= 1 and one label per mesh element; every part
/// must own at least one element. `wopts` configures the virtual-rank
/// runtime (timeouts, fault injection) — the default is fault-free.
std::vector<double> run_distributed(const advection_model& model,
                                    const partition::partition& part,
                                    double dt, int nsteps,
                                    dist_stats* stats = nullptr,
                                    const runtime::world::options& wopts = {});

/// Knobs for the fault-tolerant runner.
struct resilience_options {
  /// Injected into the first attempt only; recovery attempts run clean.
  runtime::fault_plan faults;
  /// Per blocking runtime call; zero = wait forever (aborts still wake).
  std::chrono::milliseconds timeout{0};
  /// Rank failures survived before giving up and rethrowing.
  int max_recoveries = 1;
  /// Route halo traffic through the reliable channel (checksum + ack +
  /// retransmit): transient drop/corrupt/duplicate/reorder faults heal in
  /// place with zero aborts, and only genuine rank death (or retransmit
  /// exhaustion) climbs to the plan_recovery re-slice.
  bool reliable_transport = false;
  /// Tuning for the channel when reliable_transport is on. The epoch field
  /// is overwritten with the attempt number.
  runtime::reliable_options reliable;
  /// Which fabric carries the halo traffic. The socket backend runs the
  /// identical rank program over loopback TCP and requires
  /// reliable_transport (raw framed streams give no delivery guarantee).
  runtime::transport_backend backend = runtime::transport_backend::inproc;
  /// Byte-stream chaos for the socket backend, injected underneath the
  /// message-level `faults` on the first attempt only. Ignored by the
  /// in-process backend, which has no byte stream to mangle.
  runtime::stream_fault_plan stream_faults;
};

/// What happened across attempts of a resilient run.
struct recovery_report {
  int attempts = 1;              ///< 1 = no fault occurred
  int failed_rank = -1;          ///< first failed rank (pre-failure numbering)
  int restart_step = 0;          ///< checkpoint step the recovery resumed from
  core::migration_stats migration;  ///< cost of the first recovery re-slice
  std::vector<graph::vid> survivor_of;  ///< new rank -> pre-failure rank
  partition::partition final_partition;
  runtime::rank_counters counters;  ///< totals over all attempts
  /// Reliable-transport totals over all ranks and attempts (all zero when
  /// resilience_options::reliable_transport was off).
  runtime::reliable_stats reliable;
  /// Socket-layer totals over all attempts (all zero on the in-process
  /// backend).
  runtime::socket_stats socket;
};

/// Fault-tolerant variant of run_distributed. Every completed step is
/// checkpointed (owned slices into a shared double buffer, sealed by a
/// barrier). If a rank fails, survivors re-slice the same cube curve over
/// nparts-1 segments with plan_recovery — only the failed segment's
/// elements migrate — and the run resumes from the last complete
/// checkpoint, reproducing the fault-free tracer field. Requires `part` to
/// label the elements of `curve`'s mesh.
std::vector<double> run_distributed_resilient(
    const advection_model& model, const core::cube_curve& curve,
    const partition::partition& part, double dt, int nsteps,
    const resilience_options& ropts = {}, recovery_report* report = nullptr,
    dist_stats* stats = nullptr);

/// Final state of a distributed shallow-water run (global field layout).
struct swe_state {
  std::vector<double> h, ux, uy, uz;
};

/// As run_distributed, for the shallow-water model: four prognostic fields,
/// tangent projection + DSS exchange after every RK stage. The model's
/// current state is the initial condition; the model itself is untouched.
swe_state run_distributed_swe(const shallow_water_model& model,
                              const partition::partition& part, double dt,
                              int nsteps, dist_stats* stats = nullptr);

/// As run_distributed, for the layered model: every vertical layer advances
/// independently on each rank, with one boundary exchange per layer per RK
/// stage — wire volume scales with nlev exactly as the performance model's
/// workload.nlev knob assumes. Returns all layers' final fields.
std::vector<std::vector<double>> run_distributed_layered(
    const layered_advection& model, const partition::partition& part,
    double dt, int nsteps, dist_stats* stats = nullptr);

}  // namespace sfp::seam
