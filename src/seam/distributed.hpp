#pragma once
// Distributed execution of the advection mini-app over the virtual-rank
// runtime: each rank computes its partition's elements and exchanges element
// boundary contributions with neighbouring ranks at every RK stage — the
// same halo-exchange pattern that determines SEAM's parallel performance on
// the paper's cluster.

#include <cstdint>
#include <vector>

#include "mesh/cubed_sphere.hpp"
#include "partition/partition.hpp"
#include "seam/advection.hpp"
#include "seam/layered.hpp"
#include "seam/shallow_water.hpp"

namespace sfp::seam {

/// Aggregate runtime statistics, summed over ranks.
struct dist_stats {
  double compute_seconds = 0;   ///< element kernel time
  double exchange_seconds = 0;  ///< boundary exchange (pack/send/recv/unpack)
  std::int64_t messages = 0;    ///< point-to-point messages sent
  std::int64_t doubles_sent = 0;  ///< total payload volume
  double max_rank_seconds = 0;  ///< slowest rank's total time
};

/// Run `nsteps` of SSP-RK3 advection for `model`, distributed across
/// `part.num_parts` virtual ranks. The model's current field is the initial
/// condition; the returned vector is the final global field in the model's
/// layout (the model itself is left untouched). Fills `stats` if non-null.
///
/// Requires part.num_parts >= 1 and one label per mesh element; every part
/// must own at least one element.
std::vector<double> run_distributed(const advection_model& model,
                                    const partition::partition& part,
                                    double dt, int nsteps,
                                    dist_stats* stats = nullptr);

/// Final state of a distributed shallow-water run (global field layout).
struct swe_state {
  std::vector<double> h, ux, uy, uz;
};

/// As run_distributed, for the shallow-water model: four prognostic fields,
/// tangent projection + DSS exchange after every RK stage. The model's
/// current state is the initial condition; the model itself is untouched.
swe_state run_distributed_swe(const shallow_water_model& model,
                              const partition::partition& part, double dt,
                              int nsteps, dist_stats* stats = nullptr);

/// As run_distributed, for the layered model: every vertical layer advances
/// independently on each rank, with one boundary exchange per layer per RK
/// stage — wire volume scales with nlev exactly as the performance model's
/// workload.nlev knob assumes. Returns all layers' final fields.
std::vector<std::vector<double>> run_distributed_layered(
    const layered_advection& model, const partition::partition& part,
    double dt, int nsteps, dist_stats* stats = nullptr);

}  // namespace sfp::seam
