#pragma once
// A passive-advection spectral-element dynamical core on the cubed-sphere —
// the mini-app stand-in for NCAR SEAM. Solid-body rotation transports a
// tracer field; each timestep runs the per-element tensor-product derivative
// kernel followed by the C0 direct-stiffness exchange, i.e. the same
// compute/communicate structure whose cost the partitioners are fighting
// over.

#include <functional>
#include <span>
#include <vector>

#include "mesh/cubed_sphere.hpp"
#include "seam/assembly.hpp"
#include "seam/gll.hpp"

namespace sfp::seam {

/// Per-node geometry prepared once: sphere position, contravariant velocity
/// in element reference coordinates, and the area Jacobian.
struct node_geometry {
  std::vector<mesh::vec3> position;  ///< unit-sphere node positions
  std::vector<double> v_xi;          ///< contravariant velocity, xi component
  std::vector<double> v_eta;         ///< contravariant velocity, eta component
  std::vector<double> jacobian;      ///< |t_xi × t_eta| (area element)
};

/// Build node geometry for solid-body rotation with angular velocity `omega`
/// about the axis `axis` (default z — flow along circles of latitude).
node_geometry make_rotation_geometry(const mesh::cubed_sphere& mesh,
                                     const gll_rule& rule,
                                     double omega = 1.0,
                                     mesh::vec3 axis = {0, 0, 1});

/// The advection model: dq/dt = -v·∇q, SSP-RK3 in time, DSS averaging after
/// every stage to maintain C0 continuity.
class advection_model {
 public:
  advection_model(const mesh::cubed_sphere& mesh, int np, double omega = 1.0,
                  mesh::vec3 axis = {0, 0, 1});

  const gll_rule& rule() const { return rule_; }
  const assembly& dofs() const { return assembly_; }
  const node_geometry& geometry() const { return geometry_; }

  /// Initialize the tracer from a function of position on the unit sphere.
  void set_field(const std::function<double(mesh::vec3)>& f);

  std::span<const double> field() const { return field_; }
  std::span<double> mutable_field() { return field_; }

  /// Advance one SSP-RK3 step.
  void step(double dt);

  /// Largest stable timestep estimate: CFL * min node spacing / max speed.
  double cfl_dt(double cfl = 0.5) const;

  /// Global tracer integral ∫ q dA by per-element GLL quadrature.
  double mass() const;
  double max_abs() const;

  /// Tracer centroid ∫ q p dA / ∫ q dA — used to track a rotating blob.
  mesh::vec3 centroid() const;

  /// Evaluate the advective tendency -v·∇q of `q` into `out`
  /// (no DSS applied). Public so the distributed runner reuses the exact
  /// same kernel.
  void tendency(std::span<const double> q, std::span<double> out) const;

  /// Per-element tendency kernel (the distributed runner computes only its
  /// owned elements). Thread-safe: touches only element `elem`'s slice of
  /// `out`.
  void tendency_element(std::span<const double> q, std::span<double> out,
                        int elem) const;

 private:
  int np_;
  gll_rule rule_;
  assembly assembly_;
  node_geometry geometry_;
  std::vector<double> field_;
  std::vector<double> stage1_, stage2_, rhs_;  // RK scratch
};

}  // namespace sfp::seam
