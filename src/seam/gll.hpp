#pragma once
// Gauss–Lobatto–Legendre quadrature and spectral differentiation on [-1,1] —
// the per-element numerics of the spectral element method (paper Section 1:
// "model fields are approximated by high order polynomials").

#include <vector>

namespace sfp::seam {

/// GLL rule with `np` points (polynomial degree np-1). Exact for integrands
/// of degree <= 2*np-3.
struct gll_rule {
  std::vector<double> nodes;    ///< ascending, nodes.front()=-1, back()=+1
  std::vector<double> weights;  ///< positive, summing to 2
  /// Dense differentiation matrix: (D q)_i = sum_j D[i*np+j] q_j is the
  /// derivative at node i of the degree np-1 interpolant of q.
  std::vector<double> diff;

  int np() const { return static_cast<int>(nodes.size()); }
};

/// Compute the GLL rule (Newton iteration on the Legendre recurrence;
/// barycentric differentiation matrix). np >= 2.
gll_rule make_gll(int np);

/// Evaluate the Legendre polynomial P_n at x (used by tests).
double legendre(int n, double x);

}  // namespace sfp::seam
