#pragma once
// Layered (multi-level) advection: nlev vertically stacked tracer layers,
// each transported by solid-body rotation whose rate varies with height
// (linear shear) — the structure that makes a climate dycore's per-element
// cost scale with nlev, exactly the knob the performance model charges for
// (seam_workload::nlev). Layers couple through nothing but shared geometry,
// so the per-step cost is nlev × the single-layer kernel plus one DSS per
// layer — matching the model's accounting.

#include <functional>
#include <span>
#include <vector>

#include "mesh/cubed_sphere.hpp"
#include "seam/advection.hpp"

namespace sfp::seam {

class layered_advection {
 public:
  /// `omega0` is the mid-column rotation rate; level l rotates at
  /// omega0 · (1 + shear · (l/(nlev-1) − 1/2)) (uniform for nlev == 1).
  layered_advection(const mesh::cubed_sphere& mesh, int np, int nlev,
                    double omega0 = 1.0, double shear = 0.5);

  int nlev() const { return nlev_; }
  double omega_at(int level) const;

  /// Initialize every layer from a function of (position, level).
  void set_field(const std::function<double(mesh::vec3, int)>& f);

  std::span<const double> layer(int level) const;

  /// Advance all layers one SSP-RK3 step.
  void step(double dt);

  /// CFL limit of the fastest layer.
  double cfl_dt(double cfl = 0.4) const;

  /// Global tracer integral of one layer.
  double layer_mass(int level) const;

  const advection_model& base() const { return base_; }

 private:
  int nlev_;
  double omega0_, shear_;
  advection_model base_;  ///< omega = 1 geometry; layers scale its velocity
  std::vector<std::vector<double>> layers_;
  std::vector<double> s1_, s2_, rhs_;
};

}  // namespace sfp::seam
