#pragma once
// Chaos-soak harness for the reliable distributed runner.
//
// A chaos_schedule is a *discrete* fault list — "the nth message from rank
// 1 to rank 3 is corrupted" — rather than per-message probabilities. Each
// fault lowers to a probability-1 runtime::fault_plan entry with a one-shot
// fire window, so a schedule is reproducible from its seed and, crucially,
// shrinkable: when a soak finds a schedule that breaks the 1e-12 agreement
// with the fault-free run, ddmin-style delta debugging (shrink_failure)
// removes faults while the failure persists, leaving a minimal reproducer
// that can be serialized as JSON and replayed.
//
// The harness runs seam::run_distributed_resilient with the reliable
// transport on a small cubed-sphere advection problem. A trial passes when
// the run heals every injected fault in place: one attempt, no re-slices,
// and a final tracer field within `tolerance` of the fault-free baseline.

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "core/cube_curve.hpp"
#include "core/dist_scan.hpp"
#include "io/json.hpp"
#include "mesh/cubed_sphere.hpp"
#include "partition/partition.hpp"
#include "runtime/fault.hpp"  // lint: layering-ok — seam hosts the timeout-aware wrappers over the virtual-rank world (see blocking rule)
#include "runtime/partition_fabric.hpp"  // lint: layering-ok — seam hosts the timeout-aware wrappers over the virtual-rank world (see blocking rule)
#include "runtime/reliable.hpp"  // lint: layering-ok — seam hosts the timeout-aware wrappers over the virtual-rank world (see blocking rule)
#include "runtime/socket_transport.hpp"  // lint: layering-ok — seam hosts the timeout-aware wrappers over the virtual-rank world (see blocking rule)
#include "seam/advection.hpp"
#include "seam/distributed.hpp"

namespace sfp::seam {

/// One discrete injected fault: hit the `nth` wire message (0-based, in the
/// sender's own order, acks and retransmits included) from `src` to `dst`.
struct chaos_fault {
  enum class kind : int { drop = 0, duplicate, corrupt, truncate, reorder };
  kind what = kind::drop;
  int src = 0, dst = 0;
  std::int64_t nth = 0;
};

const char* to_string(chaos_fault::kind k);

/// One simulated process death: world rank `rank` throws rank_killed at its
/// `at_op`-th communication op (counted from 1; on the partition fabric
/// every op is a transport send, acks and retransmits included, on either
/// backend). Ack interleaving is timing-dependent, so the exact message the
/// kill lands after may shift between runs — which is fine, because unlike
/// a message fault a kill is not checked against a pinned delivery outcome:
/// *every* landing point must satisfy the same contract (survivor parity or
/// clean abort). A kill whose `at_op` lies past the rank's last op never
/// fires (and shrinks away), exactly like an over-indexed message fault.
struct chaos_kill {
  int rank = 0;
  std::int64_t at_op = 1;
};

/// A seeded discrete schedule. `seed` drives only positional randomness
/// (which bit a corruption flips, where a truncation cuts); the fault list
/// pins which messages are hit. `stream_faults` pins byte-stream faults to
/// data frames on (src, dst) links — native on the socket backend, lowered
/// to message-level equivalents on the in-process one (see to_fault_plan),
/// so one schedule soaks every backend.
struct chaos_schedule {
  std::uint64_t seed = 0;
  std::vector<chaos_fault> faults;
  std::vector<runtime::stream_fault> stream_faults;
  std::vector<chaos_kill> kills;
};

/// Randomized schedule: `nfaults` faults with kinds, (src, dst) pairs and
/// message indices in [0, max_nth) drawn from `seed`. Pure function of its
/// arguments. The default max_nth covers the 3 * nsteps data messages a
/// default-sized trial sends per (src, dst) pair; a fault indexed past the
/// last real message simply never fires (and shrinks away).
chaos_schedule make_chaos_schedule(std::uint64_t seed, int nranks,
                                   int nfaults, std::int64_t max_nth = 9);

/// Append `nstream` seeded byte-stream faults (kinds, (src, dst) pairs and
/// frame indices in [0, max_nth)) to the schedule. Pure function of the
/// schedule's seed and its arguments; drawn from a stream decorrelated from
/// both the shape and positional rngs.
void add_stream_faults(chaos_schedule& schedule, int nranks, int nstream,
                       std::int64_t max_nth = 9);

/// Append `nkills` seeded rank-kill faults (ranks in [0, nranks), op
/// indices in [1, max_op]) to the schedule. Pure function of the
/// schedule's seed and its arguments, drawn from a fourth rng stream
/// decorrelated from the shape, positional and stream-fault rngs. Repeated
/// ranks are allowed — a second kill of an already-dead rank never fires.
void add_kills(chaos_schedule& schedule, int nranks, int nkills,
               std::int64_t max_op = 12);

/// Lower to the runtime's declarative plan: one probability-1 entry per
/// fault, scoped by (src, dst) with a [nth, nth+1) fire window and a
/// min_payload filter that restricts matching to reliable data frames —
/// header-only ack/fence frames interleave with timing, so counting them
/// would make `nth` name a different message on every run.
///
/// On the in-process backend the schedule's stream faults are lowered to
/// their closest message-level equivalent (truncate -> truncate, reset ->
/// drop, split/stall -> delay): the byte stream does not exist there, but
/// the delivery outcome the reliable layer must heal is the same, which is
/// what keeps one schedule comparable across backends. On the socket
/// backend they are NOT lowered — to_stream_plan injects them natively at
/// the framing layer instead.
runtime::fault_plan to_fault_plan(
    const chaos_schedule& schedule,
    runtime::transport_backend backend = runtime::transport_backend::inproc);

/// The schedule's byte-stream faults as a socket-fabric injection plan.
runtime::stream_fault_plan to_stream_plan(const chaos_schedule& schedule);

/// Reliable-channel tuning for chaos trials: a retransmit timeout well
/// above scheduler noise, so the only retransmits are the ones the
/// schedule causes and match indices stay stable run to run.
runtime::reliable_options chaos_reliable_defaults();

io::json_value chaos_schedule_to_json(const chaos_schedule& schedule);
chaos_schedule chaos_schedule_from_json(const io::json_value& doc);

/// Problem + transport configuration for the harness.
struct chaos_options {
  int ne = 2;       ///< cubed-sphere elements per edge
  int np = 4;       ///< GLL points per element edge
  int nranks = 4;   ///< virtual ranks
  int nsteps = 3;   ///< RK3 steps per trial
  double cfl = 0.3; ///< dt = model.cfl_dt(cfl)
  double tolerance = 1e-12;  ///< max |chaos - baseline| to pass
  std::chrono::milliseconds timeout{10000};  ///< per blocking world call
  /// Channel tuning, incl. the verify_checksums test hook.
  runtime::reliable_options reliable = chaos_reliable_defaults();
  /// Fabric under test. Both backends run the identical schedule through
  /// the identical escalation ladder; soak both to prove the reliable
  /// layer's guarantees are backend-independent.
  runtime::transport_backend backend = runtime::transport_backend::inproc;
};

/// Outcome of one schedule.
struct chaos_trial {
  bool passed = false;
  int attempts = 0;          ///< resilient-runner attempts (1 = healed)
  double max_abs_diff = 0;   ///< vs the fault-free baseline
  std::string failure;       ///< empty when passed; mismatch or exception
  runtime::reliable_stats reliable;
  /// Fabric totals for the trial: the cross-backend soak asserts the
  /// schedule-determined subset (injected_* counters) matches per schedule
  /// on every backend.
  runtime::rank_counters counters;
  runtime::socket_stats socket;  ///< all zero on the in-process backend
};

/// Owns the mesh/model/partition and the fault-free baseline; trials are
/// const and independently repeatable.
class chaos_harness {
 public:
  explicit chaos_harness(const chaos_options& opts = {});

  chaos_trial run(const chaos_schedule& schedule) const;
  const chaos_options& options() const { return opts_; }

 private:
  chaos_options opts_;
  mesh::cubed_sphere mesh_;
  advection_model model_;
  core::cube_curve curve_;
  partition::partition part_;
  double dt_ = 0;
  std::vector<double> baseline_;
};

/// Delta-debug a failing schedule down to a locally minimal fault subset:
/// every single remaining fault is necessary (removing it makes the trial
/// pass). Requires harness.run(failing) to fail; returns `failing`
/// unchanged if it unexpectedly passes on re-run.
chaos_schedule shrink_failure(const chaos_harness& harness,
                              const chaos_schedule& failing);

/// One soak failure: the full schedule, its shrunk reproducer, and the
/// failing trial's diagnosis.
struct soak_failure {
  chaos_schedule schedule;
  chaos_schedule shrunk;
  chaos_trial trial;
};

io::json_value soak_failure_to_json(const soak_failure& f);

struct soak_report {
  int trials = 0;
  std::vector<soak_failure> failures;
  runtime::reliable_stats reliable;  ///< totals over every trial
  runtime::socket_stats socket;  ///< totals; zero on the in-process backend
};

/// Run `trials` schedules seeded base_seed, base_seed+1, ...; shrink each
/// failure when `shrink` is set (soaks that expect failures may skip it to
/// bound wall-clock). When `nstream` > 0 each schedule also carries that
/// many seeded byte-stream faults (native on the socket backend, lowered to
/// message-level equivalents on the in-process one).
soak_report run_chaos_soak(const chaos_harness& harness,
                           std::uint64_t base_seed, int trials, int nfaults,
                           bool shrink = true, int nstream = 0);

// ---------------------------------------------------------------------------
// Partition chaos: the same discrete-schedule machinery pointed at the
// distributed SFC partitioner (runtime::run_parallel_partition). Message
// faults must heal in place exactly as in the advection harness; rank
// kills additionally exercise the survivor-regroup ladder, and the wall is
// the serial-parity contract — a quorum-surviving group must assemble a
// plan element-for-element identical to core::sfc_partition, and a
// sub-quorum schedule must abort cleanly instead of hanging.

/// Reliable-channel tuning for partition kill trials: like
/// chaos_reliable_defaults() but with the peer-death detection budget
/// (retransmit exhaustion + recv timeout) tightened so a 50-schedule soak
/// that waits out real silence stays in CI wall-clock budget.
runtime::reliable_options partition_chaos_reliable_defaults();

/// Problem + transport configuration for the partition harness.
struct partition_chaos_options {
  int ne = 3;       ///< cubed-sphere elements per edge (K = 6 ne^2)
  int nparts = 5;   ///< parts in the plan (decoupled from nranks on purpose)
  int nranks = 4;   ///< virtual ranks
  runtime::transport_backend backend = runtime::transport_backend::inproc;
  runtime::reliable_options reliable = partition_chaos_reliable_defaults();
  std::chrono::milliseconds timeout{10000};  ///< per blocking world call
  core::regroup_options regroup;             ///< quorum + patience budget
  int max_recoveries = 3;
};

/// Outcome of one partition schedule.
struct partition_chaos_trial {
  bool passed = false;
  bool aborted = false;      ///< run gave up (sub-quorum or budget)
  int recoveries = 0;        ///< group reconfigurations absorbed
  std::uint64_t group_epoch = 0;
  std::vector<int> lost_ranks;
  std::string failure;       ///< empty when passed
  runtime::rank_counters counters;
  runtime::reliable_stats reliable;
  core::regroup_stats regroup;
};

/// Owns the mesh/curve and the serial baseline plan; trials are const and
/// independently repeatable. Pass/fail logic:
///   completed -> plan and boundaries must match the serial slicer
///                element for element; if kills fired, the run must either
///                record a recovery or have lost nobody (a corpse that
///                died after depositing its block still counts as healed).
///   aborted   -> acceptable only when the schedule could actually have
///                starved the group: enough distinct killable ranks to
///                break quorum or to exhaust max_recoveries.
class partition_chaos_harness {
 public:
  explicit partition_chaos_harness(const partition_chaos_options& opts = {});

  partition_chaos_trial run(const chaos_schedule& schedule) const;
  const partition_chaos_options& options() const { return opts_; }

 private:
  partition_chaos_options opts_;
  mesh::cubed_sphere mesh_;
  core::cube_curve curve_;
  core::cube_curve_spec spec_;
  partition::partition serial_;  ///< the baseline plan every trial must hit
};

/// Delta-debug a failing partition schedule down to a locally minimal
/// subset of its message faults *and* kills (ddmin over the combined
/// list): every remaining entry is necessary. Returns `failing` unchanged
/// if it unexpectedly passes on re-run.
chaos_schedule shrink_partition_failure(const partition_chaos_harness& harness,
                                        const chaos_schedule& failing);

/// One partition soak failure: full schedule, shrunk reproducer, diagnosis.
struct partition_soak_failure {
  chaos_schedule schedule;
  chaos_schedule shrunk;
  partition_chaos_trial trial;
};

io::json_value partition_soak_failure_to_json(const partition_soak_failure& f);

struct partition_soak_report {
  int trials = 0;
  int recovered_trials = 0;  ///< trials that absorbed >= 1 reconfiguration
  int aborted_trials = 0;    ///< trials that (acceptably) gave up
  std::vector<partition_soak_failure> failures;
  runtime::reliable_stats reliable;  ///< totals over every trial
  core::regroup_stats regroup;       ///< totals over every trial
};

/// Run `trials` schedules seeded base_seed, base_seed+1, ..., each with
/// `nkills` seeded rank kills on top of `nfaults` seeded message faults;
/// shrink each failure when `shrink` is set.
partition_soak_report run_partition_chaos_soak(
    const partition_chaos_harness& harness, std::uint64_t base_seed,
    int trials, int nkills, int nfaults = 0, bool shrink = true);

}  // namespace sfp::seam
