#include "seam/assembly.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <utility>

#include "util/require.hpp"

namespace sfp::seam {

namespace {

/// Local (i, j) of the k-th node along local edge e, traversing from corner
/// e to corner (e+1)%4. Corner order is SW, SE, NE, NW (matching
/// mesh::cubed_sphere::corner_points).
std::pair<int, int> edge_node(int e, int k, int np) {
  switch (e) {
    case 0: return {k, 0};                // S: SW -> SE
    case 1: return {np - 1, k};           // E: SE -> NE
    case 2: return {np - 1 - k, np - 1};  // N: NE -> NW
    default: return {0, np - 1 - k};      // W: NW -> SW
  }
}

struct pair_hash {
  std::size_t operator()(const std::pair<std::uint64_t, std::uint64_t>& p) const {
    std::uint64_t h = p.first * 0x9e3779b97f4a7c15ull;
    h ^= p.second + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return static_cast<std::size_t>(h);
  }
};

}  // namespace

assembly::assembly(const mesh::cubed_sphere& mesh, int np)
    : np_(np), num_elements_(mesh.num_elements()) {
  SFP_REQUIRE(np >= 2, "spectral elements need at least 2 nodes per edge");
  dof_.assign(static_cast<std::size_t>(field_size()), -1);

  std::int64_t next = 0;

  // Interior nodes: unique per element.
  for (int e = 0; e < num_elements_; ++e)
    for (int j = 1; j + 1 < np_; ++j)
      for (int i = 1; i + 1 < np_; ++i) dof_[flat(e, i, j)] = next++;

  // Corner nodes: one dof per geometric cube-surface point.
  std::unordered_map<std::uint64_t, std::int64_t> corner_dof;
  for (int e = 0; e < num_elements_; ++e) {
    const auto pts = mesh.corner_points(e);
    constexpr int corner_ij[4][2] = {{0, 0}, {1, 0}, {1, 1}, {0, 1}};
    for (int c = 0; c < 4; ++c) {
      const auto [it, inserted] =
          corner_dof.try_emplace(mesh::pack(pts[static_cast<std::size_t>(c)]), next);
      if (inserted) ++next;
      const int ci = corner_ij[c][0] * (np_ - 1);
      const int cj = corner_ij[c][1] * (np_ - 1);
      dof_[flat(e, ci, cj)] = it->second;
    }
  }

  // Edge-interior nodes: shared by the two elements on the geometric edge,
  // in canonical orientation (from the smaller packed corner key to the
  // larger) so reversed gluings across cube edges match up automatically.
  std::unordered_map<std::pair<std::uint64_t, std::uint64_t>, std::int64_t,
                     pair_hash>
      edge_base;
  for (int e = 0; e < num_elements_; ++e) {
    const auto pts = mesh.corner_points(e);
    for (int le = 0; le < 4; ++le) {
      const std::uint64_t a = mesh::pack(pts[static_cast<std::size_t>(le)]);
      const std::uint64_t b =
          mesh::pack(pts[static_cast<std::size_t>((le + 1) % 4)]);
      const auto key = std::minmax(a, b);
      auto [it, inserted] = edge_base.try_emplace(key, next);
      if (inserted) next += np_ - 2;
      for (int k = 1; k + 1 < np_; ++k) {
        const int canon = (a < b) ? k : np_ - 1 - k;
        const auto [i, j] = edge_node(le, k, np_);
        dof_[flat(e, i, j)] = it->second + (canon - 1);
      }
    }
  }

  num_dofs_ = next;
  multiplicity_.assign(static_cast<std::size_t>(num_dofs_), 0);
  for (const std::int64_t d : dof_) {
    SFP_REQUIRE(d >= 0, "assembly left a node unnumbered");
    ++multiplicity_[static_cast<std::size_t>(d)];
  }
}

void assembly::dss_sum(std::span<double> field) const {
  SFP_REQUIRE(field.size() == dof_.size(), "field size mismatch");
  std::vector<double> acc(static_cast<std::size_t>(num_dofs_), 0.0);
  for (std::size_t n = 0; n < dof_.size(); ++n)
    acc[static_cast<std::size_t>(dof_[n])] += field[n];
  for (std::size_t n = 0; n < dof_.size(); ++n)
    field[n] = acc[static_cast<std::size_t>(dof_[n])];
}

void assembly::dss_average(std::span<double> field) const {
  SFP_REQUIRE(field.size() == dof_.size(), "field size mismatch");
  std::vector<double> acc(static_cast<std::size_t>(num_dofs_), 0.0);
  for (std::size_t n = 0; n < dof_.size(); ++n)
    acc[static_cast<std::size_t>(dof_[n])] += field[n];
  for (std::size_t n = 0; n < dof_.size(); ++n) {
    const std::int64_t d = dof_[n];
    field[n] = acc[static_cast<std::size_t>(d)] /
               multiplicity_[static_cast<std::size_t>(d)];
  }
}

double assembly::continuity_gap(std::span<const double> field) const {
  SFP_REQUIRE(field.size() == dof_.size(), "field size mismatch");
  std::vector<double> lo(static_cast<std::size_t>(num_dofs_),
                         std::numeric_limits<double>::infinity());
  std::vector<double> hi(static_cast<std::size_t>(num_dofs_),
                         -std::numeric_limits<double>::infinity());
  for (std::size_t n = 0; n < dof_.size(); ++n) {
    const auto d = static_cast<std::size_t>(dof_[n]);
    lo[d] = std::min(lo[d], field[n]);
    hi[d] = std::max(hi[d], field[n]);
  }
  double gap = 0.0;
  for (std::size_t d = 0; d < lo.size(); ++d) gap = std::max(gap, hi[d] - lo[d]);
  return gap;
}

}  // namespace sfp::seam
