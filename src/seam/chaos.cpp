#include "seam/chaos.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <string>

#include "core/sfc_partition.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace sfp::seam {

const char* to_string(chaos_fault::kind k) {
  switch (k) {
    case chaos_fault::kind::drop: return "drop";
    case chaos_fault::kind::duplicate: return "duplicate";
    case chaos_fault::kind::corrupt: return "corrupt";
    case chaos_fault::kind::truncate: return "truncate";
    case chaos_fault::kind::reorder: return "reorder";
  }
  return "?";
}

namespace {

chaos_fault::kind kind_from_string(const std::string& name) {
  for (const auto k :
       {chaos_fault::kind::drop, chaos_fault::kind::duplicate,
        chaos_fault::kind::corrupt, chaos_fault::kind::truncate,
        chaos_fault::kind::reorder}) {
    if (name == to_string(k)) return k;
  }
  SFP_REQUIRE(false, "chaos schedule: unknown fault kind '" + name + "'");
  std::abort();  // unreachable: SFP_REQUIRE throws
}

runtime::stream_fault::kind stream_kind_from_string(const std::string& name) {
  for (const auto k :
       {runtime::stream_fault::kind::truncate,
        runtime::stream_fault::kind::split, runtime::stream_fault::kind::reset,
        runtime::stream_fault::kind::stall}) {
    if (name == runtime::to_string(k)) return k;
  }
  SFP_REQUIRE(false,
              "chaos schedule: unknown stream fault kind '" + name + "'");
  std::abort();  // unreachable: SFP_REQUIRE throws
}

}  // namespace

runtime::reliable_options chaos_reliable_defaults() {
  runtime::reliable_options r;
  // Retransmits must come from the schedule, not from scheduler jitter on
  // a loaded machine: a spurious retransmit is an extra matching send that
  // would shift which message a fault's `nth` lands on between runs.
  r.retransmit_timeout = std::chrono::microseconds(5000);
  r.max_backoff = std::chrono::microseconds(20000);
  r.recv_timeout = std::chrono::milliseconds(8000);
  return r;
}

chaos_schedule make_chaos_schedule(std::uint64_t seed, int nranks,
                                   int nfaults, std::int64_t max_nth) {
  SFP_REQUIRE(nranks >= 2, "chaos schedules need at least two ranks");
  SFP_REQUIRE(nfaults >= 0, "fault count must be non-negative");
  SFP_REQUIRE(max_nth >= 1, "max_nth must be >= 1");
  chaos_schedule schedule;
  schedule.seed = seed;
  // Decorrelate the schedule shape from the positional stream the injector
  // derives from the same seed.
  rng r(seed ^ 0xc4a7a511c4a7a511ull);
  schedule.faults.reserve(static_cast<std::size_t>(nfaults));
  for (int i = 0; i < nfaults; ++i) {
    chaos_fault f;
    f.what = static_cast<chaos_fault::kind>(r.below(5));
    f.src = static_cast<int>(r.below(static_cast<std::uint64_t>(nranks)));
    f.dst = static_cast<int>(r.below(static_cast<std::uint64_t>(nranks - 1)));
    if (f.dst >= f.src) ++f.dst;  // never self-addressed
    f.nth = static_cast<std::int64_t>(
        r.below(static_cast<std::uint64_t>(max_nth)));
    schedule.faults.push_back(f);
  }
  return schedule;
}

void add_stream_faults(chaos_schedule& schedule, int nranks, int nstream,
                       std::int64_t max_nth) {
  SFP_REQUIRE(nranks >= 2, "chaos schedules need at least two ranks");
  SFP_REQUIRE(nstream >= 0, "stream fault count must be non-negative");
  SFP_REQUIRE(max_nth >= 1, "max_nth must be >= 1");
  // A third rng stream, decorrelated from both the shape rng above and the
  // injector's positional stream.
  rng r(schedule.seed ^ 0x57f4ea151157f4eaull);
  schedule.stream_faults.reserve(schedule.stream_faults.size() +
                                 static_cast<std::size_t>(nstream));
  for (int i = 0; i < nstream; ++i) {
    runtime::stream_fault f;
    f.what = static_cast<runtime::stream_fault::kind>(r.below(4));
    f.src = static_cast<int>(r.below(static_cast<std::uint64_t>(nranks)));
    f.dst = static_cast<int>(r.below(static_cast<std::uint64_t>(nranks - 1)));
    if (f.dst >= f.src) ++f.dst;  // never self-addressed
    f.nth = static_cast<std::int64_t>(
        r.below(static_cast<std::uint64_t>(max_nth)));
    schedule.stream_faults.push_back(f);
  }
}

runtime::fault_plan to_fault_plan(const chaos_schedule& schedule,
                                  runtime::transport_backend backend) {
  runtime::fault_plan plan;
  plan.seed = schedule.seed;
  const auto push = [&](chaos_fault::kind what, int src, int dst,
                        std::int64_t nth) {
    runtime::fault_plan::message_fault mf;
    mf.src = src;
    mf.dst = dst;
    mf.tag = -1;  // reliable traffic shares one wire tag; match them all
    mf.fire_from = nth;
    mf.fire_count = 1;
    // Data frames only: a reliable wire message is a 6-double header plus
    // payload, so >= 7 doubles excludes the header-only ack/fence frames
    // whose send order depends on timing.
    mf.min_payload = runtime::wire::header_doubles + 1;
    switch (what) {
      case chaos_fault::kind::drop: mf.drop_probability = 1.0; break;
      case chaos_fault::kind::duplicate: mf.duplicate_probability = 1.0; break;
      case chaos_fault::kind::corrupt: mf.corrupt_probability = 1.0; break;
      case chaos_fault::kind::truncate: mf.truncate_probability = 1.0; break;
      case chaos_fault::kind::reorder: mf.reorder_probability = 1.0; break;
    }
    plan.message_faults.push_back(mf);
  };
  for (const chaos_fault& f : schedule.faults)
    push(f.what, f.src, f.dst, f.nth);
  if (backend == runtime::transport_backend::inproc) {
    // The in-process fabric has no byte stream, so lower each stream fault
    // to the message-level fault with the same delivery outcome: a
    // truncated frame arrives short (CRC rejects it), a reset loses the
    // frame outright, a split or stalled frame arrives whole but late.
    // The reliable layer must heal the same way on either backend.
    for (const runtime::stream_fault& f : schedule.stream_faults) {
      switch (f.what) {
        case runtime::stream_fault::kind::truncate:
          push(chaos_fault::kind::truncate, f.src, f.dst, f.nth);
          break;
        case runtime::stream_fault::kind::reset:
          push(chaos_fault::kind::drop, f.src, f.dst, f.nth);
          break;
        case runtime::stream_fault::kind::split:
        case runtime::stream_fault::kind::stall: {
          runtime::fault_plan::message_fault mf;
          mf.src = f.src;
          mf.dst = f.dst;
          mf.tag = -1;
          mf.fire_from = f.nth;
          mf.fire_count = 1;
          mf.min_payload = runtime::wire::header_doubles + 1;
          mf.delay_probability = 1.0;
          plan.message_faults.push_back(mf);
          break;
        }
      }
    }
  }
  return plan;
}

runtime::stream_fault_plan to_stream_plan(const chaos_schedule& schedule) {
  runtime::stream_fault_plan plan;
  plan.faults = schedule.stream_faults;
  return plan;
}

io::json_value chaos_schedule_to_json(const chaos_schedule& schedule) {
  io::json_value doc = io::json_object();
  doc.object["seed"] = io::json_string(std::to_string(schedule.seed));
  io::json_value faults = io::json_array();
  for (const chaos_fault& f : schedule.faults) {
    io::json_value entry = io::json_object();
    entry.object["kind"] = io::json_string(to_string(f.what));
    entry.object["src"] = io::json_number(f.src);
    entry.object["dst"] = io::json_number(f.dst);
    entry.object["nth"] = io::json_number(static_cast<double>(f.nth));
    faults.array.push_back(std::move(entry));
  }
  doc.object["faults"] = std::move(faults);
  if (!schedule.stream_faults.empty()) {
    io::json_value stream = io::json_array();
    for (const runtime::stream_fault& f : schedule.stream_faults) {
      io::json_value entry = io::json_object();
      entry.object["kind"] = io::json_string(runtime::to_string(f.what));
      entry.object["src"] = io::json_number(f.src);
      entry.object["dst"] = io::json_number(f.dst);
      entry.object["nth"] = io::json_number(static_cast<double>(f.nth));
      stream.array.push_back(std::move(entry));
    }
    doc.object["stream"] = std::move(stream);
  }
  return doc;
}

chaos_schedule chaos_schedule_from_json(const io::json_value& doc) {
  SFP_REQUIRE(doc.is_object(), "chaos schedule: top level must be an object");
  chaos_schedule schedule;
  if (doc.has("seed")) {
    const io::json_value& seed = doc.at("seed");
    if (seed.is_string()) {
      SFP_REQUIRE(!seed.string.empty() &&
                      seed.string.find_first_not_of("0123456789") ==
                          std::string::npos,
                  "chaos schedule: seed string must be a decimal uint64");
      schedule.seed = std::stoull(seed.string);
    } else {
      SFP_REQUIRE(seed.is_number() && seed.number >= 0,
                  "chaos schedule: seed must be a string or non-negative "
                  "number");
      schedule.seed = static_cast<std::uint64_t>(seed.number);
    }
  }
  SFP_REQUIRE(doc.has("faults") && doc.at("faults").is_array(),
              "chaos schedule: faults must be an array");
  for (const io::json_value& entry : doc.at("faults").array) {
    SFP_REQUIRE(entry.is_object(), "chaos schedule: fault must be an object");
    chaos_fault f;
    SFP_REQUIRE(entry.has("kind") && entry.at("kind").is_string(),
                "chaos schedule: fault kind must be a string");
    f.what = kind_from_string(entry.at("kind").string);
    SFP_REQUIRE(entry.has("src") && entry.at("src").is_number() &&
                    entry.at("src").number >= 0,
                "chaos schedule: src must be a rank");
    SFP_REQUIRE(entry.has("dst") && entry.at("dst").is_number() &&
                    entry.at("dst").number >= 0,
                "chaos schedule: dst must be a rank");
    f.src = static_cast<int>(entry.at("src").number);
    f.dst = static_cast<int>(entry.at("dst").number);
    SFP_REQUIRE(f.src != f.dst, "chaos schedule: src and dst must differ");
    SFP_REQUIRE(entry.has("nth") && entry.at("nth").is_number() &&
                    entry.at("nth").number >= 0,
                "chaos schedule: nth must be >= 0");
    f.nth = static_cast<std::int64_t>(entry.at("nth").number);
    schedule.faults.push_back(f);
  }
  if (doc.has("stream")) {
    SFP_REQUIRE(doc.at("stream").is_array(),
                "chaos schedule: stream must be an array");
    for (const io::json_value& entry : doc.at("stream").array) {
      SFP_REQUIRE(entry.is_object(),
                  "chaos schedule: stream fault must be an object");
      runtime::stream_fault f;
      SFP_REQUIRE(entry.has("kind") && entry.at("kind").is_string(),
                  "chaos schedule: stream fault kind must be a string");
      f.what = stream_kind_from_string(entry.at("kind").string);
      SFP_REQUIRE(entry.has("src") && entry.at("src").is_number() &&
                      entry.at("src").number >= 0,
                  "chaos schedule: src must be a rank");
      SFP_REQUIRE(entry.has("dst") && entry.at("dst").is_number() &&
                      entry.at("dst").number >= 0,
                  "chaos schedule: dst must be a rank");
      f.src = static_cast<int>(entry.at("src").number);
      f.dst = static_cast<int>(entry.at("dst").number);
      SFP_REQUIRE(f.src != f.dst, "chaos schedule: src and dst must differ");
      SFP_REQUIRE(entry.has("nth") && entry.at("nth").is_number() &&
                      entry.at("nth").number >= 0,
                  "chaos schedule: nth must be >= 0");
      f.nth = static_cast<std::int64_t>(entry.at("nth").number);
      schedule.stream_faults.push_back(f);
    }
  }
  return schedule;
}

chaos_harness::chaos_harness(const chaos_options& opts)
    : opts_(opts),
      mesh_(opts.ne),
      model_(mesh_, opts.np),
      curve_(core::build_cube_curve(mesh_)),
      part_(core::sfc_partition(curve_, opts.nranks)) {
  SFP_REQUIRE(opts.nranks >= 2, "chaos harness needs at least two ranks");
  SFP_REQUIRE(opts.nsteps >= 1, "chaos harness needs at least one step");
  model_.set_field([](mesh::vec3 p) {
    return std::exp(-6.0 *
                    ((p.x - 1) * (p.x - 1) + p.y * p.y + p.z * p.z));
  });
  dt_ = model_.cfl_dt(opts.cfl);
  baseline_ = run_distributed(model_, part_, dt_, opts.nsteps);
}

chaos_trial chaos_harness::run(const chaos_schedule& schedule) const {
  chaos_trial t;
  resilience_options ropts;
  ropts.faults = to_fault_plan(schedule, opts_.backend);
  ropts.timeout = opts_.timeout;
  ropts.max_recoveries = 1;
  ropts.reliable_transport = true;
  ropts.reliable = opts_.reliable;
  ropts.backend = opts_.backend;
  if (opts_.backend == runtime::transport_backend::socket)
    ropts.stream_faults = to_stream_plan(schedule);
  recovery_report rep;
  std::vector<double> result;
  try {
    result = run_distributed_resilient(model_, curve_, part_, dt_,
                                       opts_.nsteps, ropts, &rep);
  } catch (const std::exception& e) {
    t.failure = std::string("resilient run threw: ") + e.what();
    return t;
  }
  t.attempts = rep.attempts;
  t.reliable = rep.reliable;
  t.counters = rep.counters;
  t.socket = rep.socket;
  for (std::size_t i = 0; i < baseline_.size(); ++i)
    t.max_abs_diff =
        std::max(t.max_abs_diff, std::abs(result[i] - baseline_[i]));
  if (rep.attempts != 1) {
    std::ostringstream os;
    os << "transient faults escalated to a re-slice: attempts="
       << rep.attempts << " failed_rank=" << rep.failed_rank;
    t.failure = os.str();
  } else if (t.max_abs_diff > opts_.tolerance) {
    std::ostringstream os;
    os << "result diverged from the fault-free baseline: max|diff|="
       << t.max_abs_diff << " tolerance=" << opts_.tolerance;
    t.failure = os.str();
  } else {
    t.passed = true;
  }
  return t;
}

chaos_schedule shrink_failure(const chaos_harness& harness,
                              const chaos_schedule& failing) {
  const auto fails = [&](const std::vector<chaos_fault>& subset) {
    chaos_schedule candidate;
    candidate.seed = failing.seed;
    candidate.faults = subset;
    return !harness.run(candidate).passed;
  };
  if (!fails(failing.faults)) return failing;  // not reproducible: keep all

  // Classic ddmin over the fault list: try dropping ever-finer chunks,
  // keeping any reduction that still fails. Terminates at a 1-minimal
  // subset: removing any single remaining fault makes the trial pass.
  std::vector<chaos_fault> faults = failing.faults;
  std::size_t n = 2;
  while (faults.size() >= 2) {
    const std::size_t chunk = (faults.size() + n - 1) / n;
    bool reduced = false;
    for (std::size_t start = 0; start < faults.size(); start += chunk) {
      std::vector<chaos_fault> candidate;
      candidate.reserve(faults.size());
      for (std::size_t i = 0; i < faults.size(); ++i)
        if (i < start || i >= start + chunk) candidate.push_back(faults[i]);
      if (candidate.size() < faults.size() && fails(candidate)) {
        faults = std::move(candidate);
        n = std::max<std::size_t>(2, n - 1);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (n >= faults.size()) break;  // singles tried: 1-minimal
      n = std::min(n * 2, faults.size());
    }
  }
  chaos_schedule shrunk;
  shrunk.seed = failing.seed;
  shrunk.faults = std::move(faults);
  return shrunk;
}

io::json_value soak_failure_to_json(const soak_failure& f) {
  io::json_value doc = io::json_object();
  doc.object["failure"] = io::json_string(f.trial.failure);
  doc.object["attempts"] = io::json_number(f.trial.attempts);
  doc.object["max_abs_diff"] = io::json_number(f.trial.max_abs_diff);
  doc.object["schedule"] = chaos_schedule_to_json(f.schedule);
  doc.object["shrunk"] = chaos_schedule_to_json(f.shrunk);
  return doc;
}

soak_report run_chaos_soak(const chaos_harness& harness,
                           std::uint64_t base_seed, int trials, int nfaults,
                           bool shrink, int nstream) {
  SFP_REQUIRE(trials >= 1, "soak needs at least one trial");
  soak_report report;
  report.trials = trials;
  for (int i = 0; i < trials; ++i) {
    chaos_schedule schedule = make_chaos_schedule(
        base_seed + static_cast<std::uint64_t>(i),
        harness.options().nranks, nfaults);
    if (nstream > 0)
      add_stream_faults(schedule, harness.options().nranks, nstream);
    const chaos_trial trial = harness.run(schedule);
    report.reliable += trial.reliable;
    report.socket += trial.socket;
    if (trial.passed) continue;
    soak_failure f;
    f.schedule = schedule;
    f.shrunk = shrink ? shrink_failure(harness, schedule) : schedule;
    f.trial = trial;
    report.failures.push_back(std::move(f));
  }
  return report;
}

}  // namespace sfp::seam
