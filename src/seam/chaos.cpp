#include "seam/chaos.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <numeric>
#include <sstream>
#include <string>

#include "core/sfc_partition.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace sfp::seam {

const char* to_string(chaos_fault::kind k) {
  switch (k) {
    case chaos_fault::kind::drop: return "drop";
    case chaos_fault::kind::duplicate: return "duplicate";
    case chaos_fault::kind::corrupt: return "corrupt";
    case chaos_fault::kind::truncate: return "truncate";
    case chaos_fault::kind::reorder: return "reorder";
  }
  return "?";
}

namespace {

chaos_fault::kind kind_from_string(const std::string& name) {
  for (const auto k :
       {chaos_fault::kind::drop, chaos_fault::kind::duplicate,
        chaos_fault::kind::corrupt, chaos_fault::kind::truncate,
        chaos_fault::kind::reorder}) {
    if (name == to_string(k)) return k;
  }
  SFP_REQUIRE(false, "chaos schedule: unknown fault kind '" + name + "'");
  std::abort();  // unreachable: SFP_REQUIRE throws
}

runtime::stream_fault::kind stream_kind_from_string(const std::string& name) {
  for (const auto k :
       {runtime::stream_fault::kind::truncate,
        runtime::stream_fault::kind::split, runtime::stream_fault::kind::reset,
        runtime::stream_fault::kind::stall}) {
    if (name == runtime::to_string(k)) return k;
  }
  SFP_REQUIRE(false,
              "chaos schedule: unknown stream fault kind '" + name + "'");
  std::abort();  // unreachable: SFP_REQUIRE throws
}

}  // namespace

runtime::reliable_options chaos_reliable_defaults() {
  runtime::reliable_options r;
  // Retransmits must come from the schedule, not from scheduler jitter on
  // a loaded machine: a spurious retransmit is an extra matching send that
  // would shift which message a fault's `nth` lands on between runs.
  r.retransmit_timeout = std::chrono::microseconds(5000);
  r.max_backoff = std::chrono::microseconds(20000);
  r.recv_timeout = std::chrono::milliseconds(8000);
  return r;
}

chaos_schedule make_chaos_schedule(std::uint64_t seed, int nranks,
                                   int nfaults, std::int64_t max_nth) {
  SFP_REQUIRE(nranks >= 2, "chaos schedules need at least two ranks");
  SFP_REQUIRE(nfaults >= 0, "fault count must be non-negative");
  SFP_REQUIRE(max_nth >= 1, "max_nth must be >= 1");
  chaos_schedule schedule;
  schedule.seed = seed;
  // Decorrelate the schedule shape from the positional stream the injector
  // derives from the same seed.
  rng r(seed ^ 0xc4a7a511c4a7a511ull);
  schedule.faults.reserve(static_cast<std::size_t>(nfaults));
  for (int i = 0; i < nfaults; ++i) {
    chaos_fault f;
    f.what = static_cast<chaos_fault::kind>(r.below(5));
    f.src = static_cast<int>(r.below(static_cast<std::uint64_t>(nranks)));
    f.dst = static_cast<int>(r.below(static_cast<std::uint64_t>(nranks - 1)));
    if (f.dst >= f.src) ++f.dst;  // never self-addressed
    f.nth = static_cast<std::int64_t>(
        r.below(static_cast<std::uint64_t>(max_nth)));
    schedule.faults.push_back(f);
  }
  return schedule;
}

void add_kills(chaos_schedule& schedule, int nranks, int nkills,
               std::int64_t max_op) {
  SFP_REQUIRE(nranks >= 2, "chaos schedules need at least two ranks");
  SFP_REQUIRE(nkills >= 0, "kill count must be non-negative");
  SFP_REQUIRE(max_op >= 1, "max_op must be >= 1");
  // A fourth rng stream, decorrelated from the shape, positional and
  // stream-fault streams.
  rng r(schedule.seed ^ 0x6b111ed6b111ed00ull);
  schedule.kills.reserve(schedule.kills.size() +
                         static_cast<std::size_t>(nkills));
  for (int i = 0; i < nkills; ++i) {
    chaos_kill k;
    k.rank = static_cast<int>(r.below(static_cast<std::uint64_t>(nranks)));
    k.at_op =
        1 + static_cast<std::int64_t>(r.below(static_cast<std::uint64_t>(max_op)));
    schedule.kills.push_back(k);
  }
}

void add_stream_faults(chaos_schedule& schedule, int nranks, int nstream,
                       std::int64_t max_nth) {
  SFP_REQUIRE(nranks >= 2, "chaos schedules need at least two ranks");
  SFP_REQUIRE(nstream >= 0, "stream fault count must be non-negative");
  SFP_REQUIRE(max_nth >= 1, "max_nth must be >= 1");
  // A third rng stream, decorrelated from both the shape rng above and the
  // injector's positional stream.
  rng r(schedule.seed ^ 0x57f4ea151157f4eaull);
  schedule.stream_faults.reserve(schedule.stream_faults.size() +
                                 static_cast<std::size_t>(nstream));
  for (int i = 0; i < nstream; ++i) {
    runtime::stream_fault f;
    f.what = static_cast<runtime::stream_fault::kind>(r.below(4));
    f.src = static_cast<int>(r.below(static_cast<std::uint64_t>(nranks)));
    f.dst = static_cast<int>(r.below(static_cast<std::uint64_t>(nranks - 1)));
    if (f.dst >= f.src) ++f.dst;  // never self-addressed
    f.nth = static_cast<std::int64_t>(
        r.below(static_cast<std::uint64_t>(max_nth)));
    schedule.stream_faults.push_back(f);
  }
}

runtime::fault_plan to_fault_plan(const chaos_schedule& schedule,
                                  runtime::transport_backend backend) {
  runtime::fault_plan plan;
  plan.seed = schedule.seed;
  // Kills lower one-to-one on every backend: the per-rank op counter the
  // injector fires on counts the rank's own sends, independent of the wire
  // format underneath.
  for (const chaos_kill& k : schedule.kills)
    plan.kills.push_back({k.rank, k.at_op});
  const auto push = [&](chaos_fault::kind what, int src, int dst,
                        std::int64_t nth) {
    runtime::fault_plan::message_fault mf;
    mf.src = src;
    mf.dst = dst;
    mf.tag = -1;  // reliable traffic shares one wire tag; match them all
    mf.fire_from = nth;
    mf.fire_count = 1;
    // Data frames only: a reliable wire message is a 6-double header plus
    // payload, so >= 7 doubles excludes the header-only ack/fence frames
    // whose send order depends on timing.
    mf.min_payload = runtime::wire::header_doubles + 1;
    switch (what) {
      case chaos_fault::kind::drop: mf.drop_probability = 1.0; break;
      case chaos_fault::kind::duplicate: mf.duplicate_probability = 1.0; break;
      case chaos_fault::kind::corrupt: mf.corrupt_probability = 1.0; break;
      case chaos_fault::kind::truncate: mf.truncate_probability = 1.0; break;
      case chaos_fault::kind::reorder: mf.reorder_probability = 1.0; break;
    }
    plan.message_faults.push_back(mf);
  };
  for (const chaos_fault& f : schedule.faults)
    push(f.what, f.src, f.dst, f.nth);
  if (backend == runtime::transport_backend::inproc) {
    // The in-process fabric has no byte stream, so lower each stream fault
    // to the message-level fault with the same delivery outcome: a
    // truncated frame arrives short (CRC rejects it), a reset loses the
    // frame outright, a split or stalled frame arrives whole but late.
    // The reliable layer must heal the same way on either backend.
    for (const runtime::stream_fault& f : schedule.stream_faults) {
      switch (f.what) {
        case runtime::stream_fault::kind::truncate:
          push(chaos_fault::kind::truncate, f.src, f.dst, f.nth);
          break;
        case runtime::stream_fault::kind::reset:
          push(chaos_fault::kind::drop, f.src, f.dst, f.nth);
          break;
        case runtime::stream_fault::kind::split:
        case runtime::stream_fault::kind::stall: {
          runtime::fault_plan::message_fault mf;
          mf.src = f.src;
          mf.dst = f.dst;
          mf.tag = -1;
          mf.fire_from = f.nth;
          mf.fire_count = 1;
          mf.min_payload = runtime::wire::header_doubles + 1;
          mf.delay_probability = 1.0;
          plan.message_faults.push_back(mf);
          break;
        }
      }
    }
  }
  return plan;
}

runtime::stream_fault_plan to_stream_plan(const chaos_schedule& schedule) {
  runtime::stream_fault_plan plan;
  plan.faults = schedule.stream_faults;
  return plan;
}

io::json_value chaos_schedule_to_json(const chaos_schedule& schedule) {
  io::json_value doc = io::json_object();
  doc.object["seed"] = io::json_string(std::to_string(schedule.seed));
  io::json_value faults = io::json_array();
  for (const chaos_fault& f : schedule.faults) {
    io::json_value entry = io::json_object();
    entry.object["kind"] = io::json_string(to_string(f.what));
    entry.object["src"] = io::json_number(f.src);
    entry.object["dst"] = io::json_number(f.dst);
    entry.object["nth"] = io::json_number(static_cast<double>(f.nth));
    faults.array.push_back(std::move(entry));
  }
  doc.object["faults"] = std::move(faults);
  if (!schedule.kills.empty()) {
    io::json_value kills = io::json_array();
    for (const chaos_kill& k : schedule.kills) {
      io::json_value entry = io::json_object();
      entry.object["rank"] = io::json_number(k.rank);
      entry.object["at_op"] = io::json_number(static_cast<double>(k.at_op));
      kills.array.push_back(std::move(entry));
    }
    doc.object["kills"] = std::move(kills);
  }
  if (!schedule.stream_faults.empty()) {
    io::json_value stream = io::json_array();
    for (const runtime::stream_fault& f : schedule.stream_faults) {
      io::json_value entry = io::json_object();
      entry.object["kind"] = io::json_string(runtime::to_string(f.what));
      entry.object["src"] = io::json_number(f.src);
      entry.object["dst"] = io::json_number(f.dst);
      entry.object["nth"] = io::json_number(static_cast<double>(f.nth));
      stream.array.push_back(std::move(entry));
    }
    doc.object["stream"] = std::move(stream);
  }
  return doc;
}

chaos_schedule chaos_schedule_from_json(const io::json_value& doc) {
  SFP_REQUIRE(doc.is_object(), "chaos schedule: top level must be an object");
  chaos_schedule schedule;
  if (doc.has("seed")) {
    const io::json_value& seed = doc.at("seed");
    if (seed.is_string()) {
      SFP_REQUIRE(!seed.string.empty() &&
                      seed.string.find_first_not_of("0123456789") ==
                          std::string::npos,
                  "chaos schedule: seed string must be a decimal uint64");
      schedule.seed = std::stoull(seed.string);
    } else {
      SFP_REQUIRE(seed.is_number() && seed.number >= 0,
                  "chaos schedule: seed must be a string or non-negative "
                  "number");
      schedule.seed = static_cast<std::uint64_t>(seed.number);
    }
  }
  SFP_REQUIRE(doc.has("faults") && doc.at("faults").is_array(),
              "chaos schedule: faults must be an array");
  for (const io::json_value& entry : doc.at("faults").array) {
    SFP_REQUIRE(entry.is_object(), "chaos schedule: fault must be an object");
    chaos_fault f;
    SFP_REQUIRE(entry.has("kind") && entry.at("kind").is_string(),
                "chaos schedule: fault kind must be a string");
    f.what = kind_from_string(entry.at("kind").string);
    SFP_REQUIRE(entry.has("src") && entry.at("src").is_number() &&
                    entry.at("src").number >= 0,
                "chaos schedule: src must be a rank");
    SFP_REQUIRE(entry.has("dst") && entry.at("dst").is_number() &&
                    entry.at("dst").number >= 0,
                "chaos schedule: dst must be a rank");
    f.src = static_cast<int>(entry.at("src").number);
    f.dst = static_cast<int>(entry.at("dst").number);
    SFP_REQUIRE(f.src != f.dst, "chaos schedule: src and dst must differ");
    SFP_REQUIRE(entry.has("nth") && entry.at("nth").is_number() &&
                    entry.at("nth").number >= 0,
                "chaos schedule: nth must be >= 0");
    f.nth = static_cast<std::int64_t>(entry.at("nth").number);
    schedule.faults.push_back(f);
  }
  if (doc.has("kills")) {
    SFP_REQUIRE(doc.at("kills").is_array(),
                "chaos schedule: kills must be an array");
    for (const io::json_value& entry : doc.at("kills").array) {
      SFP_REQUIRE(entry.is_object(), "chaos schedule: kill must be an object");
      chaos_kill k;
      SFP_REQUIRE(entry.has("rank") && entry.at("rank").is_number() &&
                      entry.at("rank").number >= 0,
                  "chaos schedule: kill rank must be a rank");
      k.rank = static_cast<int>(entry.at("rank").number);
      SFP_REQUIRE(entry.has("at_op") && entry.at("at_op").is_number() &&
                      entry.at("at_op").number >= 1,
                  "chaos schedule: kill at_op must be >= 1");
      k.at_op = static_cast<std::int64_t>(entry.at("at_op").number);
      schedule.kills.push_back(k);
    }
  }
  if (doc.has("stream")) {
    SFP_REQUIRE(doc.at("stream").is_array(),
                "chaos schedule: stream must be an array");
    for (const io::json_value& entry : doc.at("stream").array) {
      SFP_REQUIRE(entry.is_object(),
                  "chaos schedule: stream fault must be an object");
      runtime::stream_fault f;
      SFP_REQUIRE(entry.has("kind") && entry.at("kind").is_string(),
                  "chaos schedule: stream fault kind must be a string");
      f.what = stream_kind_from_string(entry.at("kind").string);
      SFP_REQUIRE(entry.has("src") && entry.at("src").is_number() &&
                      entry.at("src").number >= 0,
                  "chaos schedule: src must be a rank");
      SFP_REQUIRE(entry.has("dst") && entry.at("dst").is_number() &&
                      entry.at("dst").number >= 0,
                  "chaos schedule: dst must be a rank");
      f.src = static_cast<int>(entry.at("src").number);
      f.dst = static_cast<int>(entry.at("dst").number);
      SFP_REQUIRE(f.src != f.dst, "chaos schedule: src and dst must differ");
      SFP_REQUIRE(entry.has("nth") && entry.at("nth").is_number() &&
                      entry.at("nth").number >= 0,
                  "chaos schedule: nth must be >= 0");
      f.nth = static_cast<std::int64_t>(entry.at("nth").number);
      schedule.stream_faults.push_back(f);
    }
  }
  return schedule;
}

chaos_harness::chaos_harness(const chaos_options& opts)
    : opts_(opts),
      mesh_(opts.ne),
      model_(mesh_, opts.np),
      curve_(core::build_cube_curve(mesh_)),
      part_(core::sfc_partition(curve_, opts.nranks)) {
  SFP_REQUIRE(opts.nranks >= 2, "chaos harness needs at least two ranks");
  SFP_REQUIRE(opts.nsteps >= 1, "chaos harness needs at least one step");
  model_.set_field([](mesh::vec3 p) {
    return std::exp(-6.0 *
                    ((p.x - 1) * (p.x - 1) + p.y * p.y + p.z * p.z));
  });
  dt_ = model_.cfl_dt(opts.cfl);
  baseline_ = run_distributed(model_, part_, dt_, opts.nsteps);
}

chaos_trial chaos_harness::run(const chaos_schedule& schedule) const {
  chaos_trial t;
  resilience_options ropts;
  ropts.faults = to_fault_plan(schedule, opts_.backend);
  ropts.timeout = opts_.timeout;
  ropts.max_recoveries = 1;
  ropts.reliable_transport = true;
  ropts.reliable = opts_.reliable;
  ropts.backend = opts_.backend;
  if (opts_.backend == runtime::transport_backend::socket)
    ropts.stream_faults = to_stream_plan(schedule);
  recovery_report rep;
  std::vector<double> result;
  try {
    result = run_distributed_resilient(model_, curve_, part_, dt_,
                                       opts_.nsteps, ropts, &rep);
  } catch (const std::exception& e) {
    t.failure = std::string("resilient run threw: ") + e.what();
    return t;
  }
  t.attempts = rep.attempts;
  t.reliable = rep.reliable;
  t.counters = rep.counters;
  t.socket = rep.socket;
  for (std::size_t i = 0; i < baseline_.size(); ++i)
    t.max_abs_diff =
        std::max(t.max_abs_diff, std::abs(result[i] - baseline_[i]));
  if (rep.attempts != 1) {
    std::ostringstream os;
    os << "transient faults escalated to a re-slice: attempts="
       << rep.attempts << " failed_rank=" << rep.failed_rank;
    t.failure = os.str();
  } else if (t.max_abs_diff > opts_.tolerance) {
    std::ostringstream os;
    os << "result diverged from the fault-free baseline: max|diff|="
       << t.max_abs_diff << " tolerance=" << opts_.tolerance;
    t.failure = os.str();
  } else {
    t.passed = true;
  }
  return t;
}

chaos_schedule shrink_failure(const chaos_harness& harness,
                              const chaos_schedule& failing) {
  const auto fails = [&](const std::vector<chaos_fault>& subset) {
    chaos_schedule candidate;
    candidate.seed = failing.seed;
    candidate.faults = subset;
    return !harness.run(candidate).passed;
  };
  if (!fails(failing.faults)) return failing;  // not reproducible: keep all

  // Classic ddmin over the fault list: try dropping ever-finer chunks,
  // keeping any reduction that still fails. Terminates at a 1-minimal
  // subset: removing any single remaining fault makes the trial pass.
  std::vector<chaos_fault> faults = failing.faults;
  std::size_t n = 2;
  while (faults.size() >= 2) {
    const std::size_t chunk = (faults.size() + n - 1) / n;
    bool reduced = false;
    for (std::size_t start = 0; start < faults.size(); start += chunk) {
      std::vector<chaos_fault> candidate;
      candidate.reserve(faults.size());
      for (std::size_t i = 0; i < faults.size(); ++i)
        if (i < start || i >= start + chunk) candidate.push_back(faults[i]);
      if (candidate.size() < faults.size() && fails(candidate)) {
        faults = std::move(candidate);
        n = std::max<std::size_t>(2, n - 1);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (n >= faults.size()) break;  // singles tried: 1-minimal
      n = std::min(n * 2, faults.size());
    }
  }
  chaos_schedule shrunk;
  shrunk.seed = failing.seed;
  shrunk.faults = std::move(faults);
  return shrunk;
}

io::json_value soak_failure_to_json(const soak_failure& f) {
  io::json_value doc = io::json_object();
  doc.object["failure"] = io::json_string(f.trial.failure);
  doc.object["attempts"] = io::json_number(f.trial.attempts);
  doc.object["max_abs_diff"] = io::json_number(f.trial.max_abs_diff);
  doc.object["schedule"] = chaos_schedule_to_json(f.schedule);
  doc.object["shrunk"] = chaos_schedule_to_json(f.shrunk);
  return doc;
}

soak_report run_chaos_soak(const chaos_harness& harness,
                           std::uint64_t base_seed, int trials, int nfaults,
                           bool shrink, int nstream) {
  SFP_REQUIRE(trials >= 1, "soak needs at least one trial");
  soak_report report;
  report.trials = trials;
  for (int i = 0; i < trials; ++i) {
    chaos_schedule schedule = make_chaos_schedule(
        base_seed + static_cast<std::uint64_t>(i),
        harness.options().nranks, nfaults);
    if (nstream > 0)
      add_stream_faults(schedule, harness.options().nranks, nstream);
    const chaos_trial trial = harness.run(schedule);
    report.reliable += trial.reliable;
    report.socket += trial.socket;
    if (trial.passed) continue;
    soak_failure f;
    f.schedule = schedule;
    f.shrunk = shrink ? shrink_failure(harness, schedule) : schedule;
    f.trial = trial;
    report.failures.push_back(std::move(f));
  }
  return report;
}

// ---------------------------------------------------------------------------
// Partition chaos.

runtime::reliable_options partition_chaos_reliable_defaults() {
  runtime::reliable_options r = chaos_reliable_defaults();
  // A kill is detected either definitely (retransmit exhaustion against a
  // silent peer) or tentatively (recv timeouts counted against the regroup
  // patience budget), and both paths wait out *real* silence — so the
  // detection budgets are tightened here to keep a 50-schedule soak inside
  // CI wall-clock. The retransmit timeout itself stays at the chaos
  // default: shrinking it invites jitter-induced retransmits that would
  // shift which message a pinned fault's `nth` lands on between runs.
  r.max_retransmits = 12;  // definite loss after ~200ms of peer silence
  r.recv_timeout = std::chrono::milliseconds(100);
  return r;
}

partition_chaos_harness::partition_chaos_harness(
    const partition_chaos_options& opts)
    : opts_(opts),
      mesh_(opts.ne),
      curve_(core::build_cube_curve(mesh_)),
      spec_(core::spec_of(curve_)),
      serial_(core::sfc_partition(curve_, opts.nparts)) {
  SFP_REQUIRE(opts.nranks >= 2,
              "partition chaos harness needs at least two ranks");
  SFP_REQUIRE(opts.nparts >= 2,
              "partition chaos harness needs at least two parts");
  SFP_REQUIRE(opts.nranks <= mesh_.num_elements(),
              "partition chaos harness: more ranks than elements");
}

partition_chaos_trial partition_chaos_harness::run(
    const chaos_schedule& schedule) const {
  partition_chaos_trial t;
  runtime::parallel_partition_run_options opts;
  opts.backend = opts_.backend;
  opts.faults = to_fault_plan(schedule, opts_.backend);
  if (opts_.backend == runtime::transport_backend::socket)
    opts.stream_faults = to_stream_plan(schedule);
  opts.reliable = opts_.reliable;
  opts.timeout = opts_.timeout;
  opts.regroup = opts_.regroup;
  opts.max_recoveries = opts_.max_recoveries;

  runtime::parallel_partition_report report;
  try {
    report = runtime::run_parallel_partition(mesh_, spec_, opts_.nparts, {},
                                             opts_.nranks, opts);
  } catch (const std::exception& e) {
    t.failure = std::string("partition run threw: ") + e.what();
    return t;
  }
  t.aborted = report.aborted;
  t.recoveries = report.recoveries;
  t.group_epoch = report.group_epoch;
  t.lost_ranks = report.lost_ranks;
  t.counters = report.counters;
  t.reliable = report.reliable;
  t.regroup = report.regroup;

  // The most ranks this schedule could take down: kills of out-of-range
  // ranks never fire, repeated kills of one rank never stack.
  std::vector<int> killable;
  for (const chaos_kill& k : schedule.kills)
    if (k.rank >= 0 && k.rank < opts_.nranks) killable.push_back(k.rank);
  std::sort(killable.begin(), killable.end());
  killable.erase(std::unique(killable.begin(), killable.end()),
                 killable.end());
  const int max_deaths = static_cast<int>(killable.size());
  const bool can_starve =
      opts_.nranks - max_deaths < opts_.regroup.min_members ||
      max_deaths > opts_.max_recoveries;

  if (report.aborted) {
    if (can_starve) {
      t.passed = true;  // clean give-up is the contract below quorum
    } else {
      t.failure = "aborted though the schedule leaves a quorum alive";
    }
    return t;
  }

  if (report.plan.num_parts != serial_.num_parts ||
      report.plan.part_of.size() != serial_.part_of.size()) {
    std::ostringstream os;
    os << "plan shape diverged from the serial slicer: num_parts="
       << report.plan.num_parts << " vs " << serial_.num_parts
       << ", elements=" << report.plan.part_of.size() << " vs "
       << serial_.part_of.size();
    t.failure = os.str();
    return t;
  }
  for (std::size_t e = 0; e < serial_.part_of.size(); ++e) {
    if (report.plan.part_of[e] != serial_.part_of[e]) {
      std::ostringstream os;
      os << "plan diverged from the serial slicer at element " << e << ": "
         << report.plan.part_of[e] << " vs " << serial_.part_of[e]
         << " (recoveries=" << report.recoveries << ")";
      t.failure = os.str();
      return t;
    }
  }
  if (report.boundaries.size() !=
      static_cast<std::size_t>(opts_.nparts) - 1) {
    t.failure = "boundaries are not nparts-1 entries";
    return t;
  }
  for (std::size_t i = 1; i < report.boundaries.size(); ++i) {
    if (report.boundaries[i] <= report.boundaries[i - 1]) {
      t.failure = "boundaries are not strictly increasing";
      return t;
    }
  }
  // If kills actually fired, the run must have gone through the regroup
  // ladder — unless nobody was lost at all, which is the late-kill case: a
  // corpse that died *after* depositing its block (e.g. during the final
  // barrier) still contributed a valid deposit and no re-execution was
  // needed.
  if (t.counters.injected_kills > 0 && t.recoveries == 0 &&
      !t.lost_ranks.empty()) {
    std::ostringstream os;
    os << "kills fired (" << t.counters.injected_kills << ") and "
       << t.lost_ranks.size()
       << " rank(s) were lost, yet the plan records no recovery";
    t.failure = os.str();
    return t;
  }
  t.passed = true;
  return t;
}

chaos_schedule shrink_partition_failure(const partition_chaos_harness& harness,
                                        const chaos_schedule& failing) {
  // ddmin over the *combined* fault + kill + stream-fault list: entries of
  // all three kinds compete for removal, so the reproducer is 1-minimal
  // across the whole schedule (a kill that only fails in concert with a
  // message fault keeps exactly that pair).
  const std::size_t nf = failing.faults.size();
  const std::size_t nk = failing.kills.size();
  const std::size_t ns = failing.stream_faults.size();
  const auto rebuild = [&](const std::vector<std::size_t>& keep) {
    chaos_schedule s;
    s.seed = failing.seed;
    for (const std::size_t i : keep) {
      if (i < nf) {
        s.faults.push_back(failing.faults[i]);
      } else if (i < nf + nk) {
        s.kills.push_back(failing.kills[i - nf]);
      } else {
        s.stream_faults.push_back(failing.stream_faults[i - nf - nk]);
      }
    }
    return s;
  };
  const auto fails = [&](const std::vector<std::size_t>& keep) {
    return !harness.run(rebuild(keep)).passed;
  };

  std::vector<std::size_t> items(nf + nk + ns);
  std::iota(items.begin(), items.end(), std::size_t{0});
  if (!fails(items)) return failing;  // not reproducible: keep all

  std::size_t n = 2;
  while (items.size() >= 2) {
    const std::size_t chunk = (items.size() + n - 1) / n;
    bool reduced = false;
    for (std::size_t start = 0; start < items.size(); start += chunk) {
      std::vector<std::size_t> candidate;
      candidate.reserve(items.size());
      for (std::size_t i = 0; i < items.size(); ++i)
        if (i < start || i >= start + chunk) candidate.push_back(items[i]);
      if (candidate.size() < items.size() && fails(candidate)) {
        items = std::move(candidate);
        n = std::max<std::size_t>(2, n - 1);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (n >= items.size()) break;  // singles tried: 1-minimal
      n = std::min(n * 2, items.size());
    }
  }
  return rebuild(items);
}

io::json_value partition_soak_failure_to_json(const partition_soak_failure& f) {
  io::json_value doc = io::json_object();
  doc.object["failure"] = io::json_string(f.trial.failure);
  doc.object["aborted"] = io::json_bool(f.trial.aborted);
  doc.object["recoveries"] = io::json_number(f.trial.recoveries);
  doc.object["group_epoch"] =
      io::json_number(static_cast<double>(f.trial.group_epoch));
  io::json_value lost = io::json_array();
  for (const int r : f.trial.lost_ranks)
    lost.array.push_back(io::json_number(r));
  doc.object["lost_ranks"] = std::move(lost);
  doc.object["schedule"] = chaos_schedule_to_json(f.schedule);
  doc.object["shrunk"] = chaos_schedule_to_json(f.shrunk);
  return doc;
}

partition_soak_report run_partition_chaos_soak(
    const partition_chaos_harness& harness, std::uint64_t base_seed,
    int trials, int nkills, int nfaults, bool shrink) {
  SFP_REQUIRE(trials >= 1, "soak needs at least one trial");
  partition_soak_report report;
  report.trials = trials;
  for (int i = 0; i < trials; ++i) {
    chaos_schedule schedule = make_chaos_schedule(
        base_seed + static_cast<std::uint64_t>(i),
        harness.options().nranks, nfaults);
    add_kills(schedule, harness.options().nranks, nkills);
    const partition_chaos_trial trial = harness.run(schedule);
    report.reliable += trial.reliable;
    report.regroup.stale_dropped += trial.regroup.stale_dropped;
    report.regroup.aborted_data_dropped += trial.regroup.aborted_data_dropped;
    report.regroup.reports_sent += trial.regroup.reports_sent;
    report.regroup.agreement_rounds += trial.regroup.agreement_rounds;
    if (trial.recoveries > 0) ++report.recovered_trials;
    if (trial.aborted) ++report.aborted_trials;
    if (trial.passed) continue;
    partition_soak_failure f;
    f.schedule = schedule;
    f.shrunk = shrink ? shrink_partition_failure(harness, schedule) : schedule;
    f.trial = trial;
    report.failures.push_back(std::move(f));
  }
  return report;
}

}  // namespace sfp::seam
