#pragma once
// Shallow-water equations on the cubed-sphere with spectral elements — the
// equation set SEAM itself descends from (paper reference [9]: Taylor,
// Tribbia & Iskandarani, "The spectral element method for the shallow water
// equations on the sphere", JCP 1997).
//
// Formulation: Cartesian-vector form on the unit sphere. The velocity u is
// a 3-vector constrained to the tangent plane; h is the fluid depth:
//
//   du/dt = -(u·∇)u - f (p̂ × u) - g ∇h,   followed by tangent projection
//   dh/dt = -∇·(h u)
//
// with f = 2Ω p_z the Coriolis parameter. Horizontal operators are evaluated
// per element through the gnomonic metric (precomputed tangent bases,
// inverse metric, area Jacobian), SSP-RK3 in time, C0 continuity restored by
// DSS averaging after every stage — the same compute/exchange structure as
// the advection core, with four prognostic fields instead of one.

#include <functional>
#include <span>
#include <vector>

#include "mesh/cubed_sphere.hpp"
#include "seam/assembly.hpp"
#include "seam/gll.hpp"

namespace sfp::seam {

struct swe_params {
  double gravity = 1.0;   ///< g
  double rotation = 1.0;  ///< planetary angular velocity Ω (about +z)
};

class shallow_water_model {
 public:
  shallow_water_model(const mesh::cubed_sphere& mesh, int np,
                      swe_params params = {});

  const gll_rule& rule() const { return rule_; }
  const assembly& dofs() const { return assembly_; }
  const swe_params& params() const { return params_; }

  /// Initialize depth and velocity from functions of the sphere position;
  /// the velocity is projected onto the tangent plane.
  void set_state(const std::function<double(mesh::vec3)>& depth,
                 const std::function<mesh::vec3(mesh::vec3)>& velocity);

  /// Williamson et al. (1992) test case 2: steady zonal geostrophic flow.
  /// u = u0 (ẑ × p),  g h = g h0 - (Ω u0 + u0²/2) p_z².
  /// An exact steady state of the continuous equations.
  void set_williamson2(double u0, double h0);

  std::span<const double> depth() const { return h_; }
  std::span<const double> velocity_x() const { return ux_; }
  std::span<const double> velocity_y() const { return uy_; }
  std::span<const double> velocity_z() const { return uz_; }

  /// Unit-sphere position of global node index k (field layout order).
  mesh::vec3 node_position(std::size_t k) const { return nodes_[k].pos; }

  /// Advance one SSP-RK3 step.
  void step(double dt);

  /// Stable timestep estimate from advective + gravity-wave speeds.
  double cfl_dt(double cfl = 0.3) const;

  // ---- per-element kernel (for the distributed runner) -------------------
  /// Scratch buffers sized for one element; one per thread.
  struct element_scratch {
    std::vector<double> uxi, ueta, fxi, feta, dq1, dq2, dhx, dhe, dux1, dux2,
        duy1, duy2, duz1, duz2;
  };
  element_scratch make_scratch() const;

  /// Evaluate the SWE tendency of element `elem` from the given state into
  /// the element's slice of the tendency arrays. Thread-safe: reads only
  /// precomputed geometry, writes only `elem`'s slice, uses caller scratch.
  void rhs_element(std::span<const double> h, std::span<const double> ux,
                   std::span<const double> uy, std::span<const double> uz,
                   std::span<double> rh, std::span<double> rx,
                   std::span<double> ry, std::span<double> rz, int elem,
                   element_scratch& scratch) const;

  /// Tangent-project the velocity at one node (by flat node index).
  void project_node(std::size_t k, std::vector<double>& ux,
                    std::vector<double>& uy, std::vector<double>& uz) const;

  // ---- diagnostics -------------------------------------------------------
  double mass() const;          ///< ∫ h dA (exactly conserved by flux form up
                                ///< to DSS/quadrature effects)
  double total_energy() const;  ///< ∫ (h|u|²/2 + g h²/2) dA
  /// L∞ error of depth against a reference function (steady-state tests).
  double depth_error(const std::function<double(mesh::vec3)>& reference) const;
  /// Largest |u·p̂| — tangency violation (should be ~0 after projection).
  double max_normal_velocity() const;
  /// Largest continuity gap across the four prognostic fields.
  double continuity_gap() const;

 private:
  struct node_data {
    mesh::vec3 pos;      // unit sphere position
    mesh::vec3 t_xi;     // tangent basis
    mesh::vec3 t_eta;
    double gi11, gi12, gi22;  // inverse metric
    double jac;               // |t_xi × t_eta|
    double coriolis;          // 2 Ω p_z
  };

  void compute_rhs(std::span<const double> h, std::span<const double> ux,
                   std::span<const double> uy, std::span<const double> uz);
  void project_and_dss(std::vector<double>& h, std::vector<double>& ux,
                       std::vector<double>& uy, std::vector<double>& uz);

  int np_;
  swe_params params_;
  gll_rule rule_;
  assembly assembly_;
  std::vector<node_data> nodes_;

  std::vector<double> h_, ux_, uy_, uz_;
  // RK scratch: stage states and tendencies.
  std::vector<double> rh_, rx_, ry_, rz_;
  std::vector<double> s1h_, s1x_, s1y_, s1z_;
  std::vector<double> s2h_, s2x_, s2y_, s2z_;
};

}  // namespace sfp::seam
