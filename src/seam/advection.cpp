#include "seam/advection.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace sfp::seam {

namespace {

/// Un-normalized cube-surface position and its (a, b) face-coordinate
/// tangents for node (xi, eta) of an element.
struct cube_point {
  mesh::vec3 P;   // on the cube surface
  mesh::vec3 ta;  // dp/da of the *sphere* point (a = face coordinate)
  mesh::vec3 tb;  // dp/db
  mesh::vec3 p;   // normalized (on the sphere)
};

cube_point eval_cube_point(const mesh::cubed_sphere& mesh, int elem,
                           double xi, double eta) {
  const mesh::element_ref r = mesh.element_of(elem);
  const auto f = mesh::cubed_sphere::frame_of_face(r.face);
  const int ne = mesh.ne();
  // Abstract face coordinates, then the mesh's projection mapping (identity
  // for equidistant, tan(·π/4) for equiangular) with its chain-rule factor.
  const double a_raw = (2.0 * (r.i + 0.5 * (xi + 1.0)) - ne) / ne;
  const double b_raw = (2.0 * (r.j + 0.5 * (eta + 1.0)) - ne) / ne;
  const double a = mesh.map_face_coord(a_raw);
  const double b = mesh.map_face_coord(b_raw);
  const double da = mesh.map_face_coord_deriv(a_raw);
  const double db = mesh.map_face_coord_deriv(b_raw);
  cube_point out;
  out.P = f.center + a * f.u + b * f.v;
  const double n = mesh::norm(out.P);
  out.p = (1.0 / n) * out.P;
  // d/da_raw of P/|P|: map'(a)·[u/|P| - P (u·P)/|P|^3].
  const double inv_n = 1.0 / n;
  const double inv_n3 = inv_n * inv_n * inv_n;
  out.ta = da * (inv_n * f.u - (mesh::dot(f.u, out.P) * inv_n3) * out.P);
  out.tb = db * (inv_n * f.v - (mesh::dot(f.v, out.P) * inv_n3) * out.P);
  return out;
}

}  // namespace

node_geometry make_rotation_geometry(const mesh::cubed_sphere& mesh,
                                     const gll_rule& rule, double omega,
                                     mesh::vec3 axis) {
  const int np = rule.np();
  const int nelem = mesh.num_elements();
  const std::size_t n =
      static_cast<std::size_t>(nelem) * static_cast<std::size_t>(np) *
      static_cast<std::size_t>(np);
  node_geometry g;
  g.position.resize(n);
  g.v_xi.resize(n);
  g.v_eta.resize(n);
  g.jacobian.resize(n);

  const double dadxi = 1.0 / mesh.ne();  // a = ... + xi/Ne (+const), per unit xi

  for (int e = 0; e < nelem; ++e) {
    for (int j = 0; j < np; ++j) {
      for (int i = 0; i < np; ++i) {
        const std::size_t idx =
            (static_cast<std::size_t>(e) * np + static_cast<std::size_t>(j)) *
                np +
            static_cast<std::size_t>(i);
        const cube_point cp =
            eval_cube_point(mesh, e, rule.nodes[static_cast<std::size_t>(i)],
                            rule.nodes[static_cast<std::size_t>(j)]);
        g.position[idx] = cp.p;
        const mesh::vec3 t_xi = dadxi * cp.ta;
        const mesh::vec3 t_eta = dadxi * cp.tb;
        const mesh::vec3 vel = omega * mesh::cross(axis, cp.p);
        // Solve the 2x2 metric system G [v_xi; v_eta] = [vel·t_xi; vel·t_eta].
        const double g11 = mesh::dot(t_xi, t_xi);
        const double g12 = mesh::dot(t_xi, t_eta);
        const double g22 = mesh::dot(t_eta, t_eta);
        const double det = g11 * g22 - g12 * g12;
        SFP_REQUIRE(det > 0, "degenerate element metric");
        const double r1 = mesh::dot(vel, t_xi);
        const double r2 = mesh::dot(vel, t_eta);
        g.v_xi[idx] = (g22 * r1 - g12 * r2) / det;
        g.v_eta[idx] = (g11 * r2 - g12 * r1) / det;
        g.jacobian[idx] = mesh::norm(mesh::cross(t_xi, t_eta));
      }
    }
  }
  return g;
}

advection_model::advection_model(const mesh::cubed_sphere& mesh, int np,
                                 double omega, mesh::vec3 axis)
    : np_(np),
      rule_(make_gll(np)),
      assembly_(mesh, np),
      geometry_(make_rotation_geometry(mesh, rule_, omega, axis)),
      field_(static_cast<std::size_t>(assembly_.field_size()), 0.0),
      stage1_(field_.size()),
      stage2_(field_.size()),
      rhs_(field_.size()) {}

void advection_model::set_field(const std::function<double(mesh::vec3)>& f) {
  for (std::size_t n = 0; n < field_.size(); ++n)
    field_[n] = f(geometry_.position[n]);
  // Shared nodes get identical values from a well-defined f, but average
  // anyway so roundoff differences cannot seed discontinuities.
  assembly_.dss_average(field_);
}

void advection_model::tendency_element(std::span<const double> q,
                                       std::span<double> out, int elem) const {
  SFP_REQUIRE(q.size() == field_.size() && out.size() == field_.size(),
              "field size mismatch");
  const int np = np_;
  const double* D = rule_.diff.data();
  const std::size_t per_elem =
      static_cast<std::size_t>(np) * static_cast<std::size_t>(np);
  const std::size_t e = static_cast<std::size_t>(elem);
  const double* qe = q.data() + e * per_elem;
  const double* vx = geometry_.v_xi.data() + e * per_elem;
  const double* vy = geometry_.v_eta.data() + e * per_elem;
  double* oe = out.data() + e * per_elem;
  for (int j = 0; j < np; ++j) {
    for (int i = 0; i < np; ++i) {
      double dqdxi = 0.0, dqdeta = 0.0;
      for (int m = 0; m < np; ++m) {
        dqdxi += D[i * np + m] * qe[j * np + m];
        dqdeta += D[j * np + m] * qe[m * np + i];
      }
      const std::size_t idx = static_cast<std::size_t>(j * np + i);
      oe[idx] = -(vx[idx] * dqdxi + vy[idx] * dqdeta);
    }
  }
}

void advection_model::tendency(std::span<const double> q,
                               std::span<double> out) const {
  const std::size_t per_elem =
      static_cast<std::size_t>(np_) * static_cast<std::size_t>(np_);
  const int nelem = static_cast<int>(field_.size() / per_elem);
  for (int e = 0; e < nelem; ++e) tendency_element(q, out, e);
}

void advection_model::step(double dt) {
  SFP_REQUIRE(dt > 0, "timestep must be positive");
  const std::size_t n = field_.size();
  // SSP-RK3 (Shu–Osher), DSS after every stage.
  tendency(field_, rhs_);
  for (std::size_t k = 0; k < n; ++k) stage1_[k] = field_[k] + dt * rhs_[k];
  assembly_.dss_average(stage1_);

  tendency(stage1_, rhs_);
  for (std::size_t k = 0; k < n; ++k)
    stage2_[k] = 0.75 * field_[k] + 0.25 * (stage1_[k] + dt * rhs_[k]);
  assembly_.dss_average(stage2_);

  tendency(stage2_, rhs_);
  for (std::size_t k = 0; k < n; ++k)
    field_[k] = field_[k] / 3.0 + (2.0 / 3.0) * (stage2_[k] + dt * rhs_[k]);
  assembly_.dss_average(field_);
}

double advection_model::cfl_dt(double cfl) const {
  SFP_REQUIRE(cfl > 0, "CFL number must be positive");
  double min_gap = 2.0;
  for (std::size_t i = 1; i < rule_.nodes.size(); ++i)
    min_gap = std::min(min_gap, rule_.nodes[i] - rule_.nodes[i - 1]);
  double vmax = 0.0;
  for (std::size_t k = 0; k < geometry_.v_xi.size(); ++k)
    vmax = std::max(vmax,
                    std::max(std::abs(geometry_.v_xi[k]),
                             std::abs(geometry_.v_eta[k])));
  SFP_REQUIRE(vmax > 0, "flow is everywhere zero");
  return cfl * min_gap / vmax;
}

double advection_model::mass() const {
  double total = 0.0;
  const std::size_t per_elem =
      static_cast<std::size_t>(np_) * static_cast<std::size_t>(np_);
  const std::size_t nelem = field_.size() / per_elem;
  for (std::size_t e = 0; e < nelem; ++e) {
    for (int j = 0; j < np_; ++j) {
      for (int i = 0; i < np_; ++i) {
        const std::size_t idx = e * per_elem + static_cast<std::size_t>(j * np_ + i);
        total += rule_.weights[static_cast<std::size_t>(i)] *
                 rule_.weights[static_cast<std::size_t>(j)] *
                 geometry_.jacobian[idx] * field_[idx];
      }
    }
  }
  return total;
}

double advection_model::max_abs() const {
  double m = 0.0;
  for (const double v : field_) m = std::max(m, std::abs(v));
  return m;
}

mesh::vec3 advection_model::centroid() const {
  mesh::vec3 acc{0, 0, 0};
  double total = 0.0;
  const std::size_t per_elem =
      static_cast<std::size_t>(np_) * static_cast<std::size_t>(np_);
  const std::size_t nelem = field_.size() / per_elem;
  for (std::size_t e = 0; e < nelem; ++e) {
    for (int j = 0; j < np_; ++j) {
      for (int i = 0; i < np_; ++i) {
        const std::size_t idx = e * per_elem + static_cast<std::size_t>(j * np_ + i);
        const double w = rule_.weights[static_cast<std::size_t>(i)] *
                         rule_.weights[static_cast<std::size_t>(j)] *
                         geometry_.jacobian[idx] * field_[idx];
        acc = acc + w * geometry_.position[idx];
        total += w;
      }
    }
  }
  SFP_REQUIRE(std::abs(total) > 1e-300, "field has no mass");
  return (1.0 / total) * acc;
}

}  // namespace sfp::seam
