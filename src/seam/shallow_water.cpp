#include "seam/shallow_water.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace sfp::seam {

namespace {

/// Differentiate along xi (rows) within one element's np×np slab.
void deriv_xi(const double* D, const double* q, double* dq, int np) {
  for (int j = 0; j < np; ++j) {
    for (int i = 0; i < np; ++i) {
      double acc = 0;
      for (int m = 0; m < np; ++m) acc += D[i * np + m] * q[j * np + m];
      dq[j * np + i] = acc;
    }
  }
}

/// Differentiate along eta (columns).
void deriv_eta(const double* D, const double* q, double* dq, int np) {
  for (int j = 0; j < np; ++j) {
    for (int i = 0; i < np; ++i) {
      double acc = 0;
      for (int m = 0; m < np; ++m) acc += D[j * np + m] * q[m * np + i];
      dq[j * np + i] = acc;
    }
  }
}

}  // namespace

shallow_water_model::shallow_water_model(const mesh::cubed_sphere& mesh,
                                         int np, swe_params params)
    : np_(np),
      params_(params),
      rule_(make_gll(np)),
      assembly_(mesh, np) {
  SFP_REQUIRE(params_.gravity > 0, "gravity must be positive");
  const auto n = static_cast<std::size_t>(assembly_.field_size());
  nodes_.resize(n);
  for (auto* field : {&h_, &ux_, &uy_, &uz_, &rh_, &rx_, &ry_, &rz_, &s1h_,
                      &s1x_, &s1y_, &s1z_, &s2h_, &s2x_, &s2y_, &s2z_})
    field->assign(n, 0.0);

  // Precompute per-node geometry (same construction as the advection core,
  // but keeping the tangent basis and inverse metric for the full operator
  // set).
  const double dadxi = 1.0 / mesh.ne();
  for (int e = 0; e < mesh.num_elements(); ++e) {
    const mesh::element_ref r = mesh.element_of(e);
    const auto f = mesh::cubed_sphere::frame_of_face(r.face);
    for (int j = 0; j < np_; ++j) {
      for (int i = 0; i < np_; ++i) {
        const std::size_t idx =
            (static_cast<std::size_t>(e) * np_ + static_cast<std::size_t>(j)) *
                np_ +
            static_cast<std::size_t>(i);
        const double a_raw =
            (2.0 * (r.i + 0.5 * (rule_.nodes[static_cast<std::size_t>(i)] + 1.0)) -
             mesh.ne()) /
            mesh.ne();
        const double b_raw =
            (2.0 * (r.j + 0.5 * (rule_.nodes[static_cast<std::size_t>(j)] + 1.0)) -
             mesh.ne()) /
            mesh.ne();
        const double a = mesh.map_face_coord(a_raw);
        const double b = mesh.map_face_coord(b_raw);
        const mesh::vec3 P = f.center + a * f.u + b * f.v;
        const double norm_p = mesh::norm(P);
        const double inv_n = 1.0 / norm_p;
        const double inv_n3 = inv_n * inv_n * inv_n;
        node_data& nd = nodes_[idx];
        nd.pos = inv_n * P;
        const mesh::vec3 ta = inv_n * f.u - (mesh::dot(f.u, P) * inv_n3) * P;
        const mesh::vec3 tb = inv_n * f.v - (mesh::dot(f.v, P) * inv_n3) * P;
        nd.t_xi = (dadxi * mesh.map_face_coord_deriv(a_raw)) * ta;
        nd.t_eta = (dadxi * mesh.map_face_coord_deriv(b_raw)) * tb;
        const double g11 = mesh::dot(nd.t_xi, nd.t_xi);
        const double g12 = mesh::dot(nd.t_xi, nd.t_eta);
        const double g22 = mesh::dot(nd.t_eta, nd.t_eta);
        const double det = g11 * g22 - g12 * g12;
        SFP_REQUIRE(det > 0, "degenerate element metric");
        nd.gi11 = g22 / det;
        nd.gi12 = -g12 / det;
        nd.gi22 = g11 / det;
        nd.jac = mesh::norm(mesh::cross(nd.t_xi, nd.t_eta));
        nd.coriolis = 2.0 * params_.rotation * nd.pos.z;
      }
    }
  }
}

void shallow_water_model::set_state(
    const std::function<double(mesh::vec3)>& depth,
    const std::function<mesh::vec3(mesh::vec3)>& velocity) {
  for (std::size_t k = 0; k < nodes_.size(); ++k) {
    const mesh::vec3 p = nodes_[k].pos;
    h_[k] = depth(p);
    mesh::vec3 u = velocity(p);
    u = u - mesh::dot(u, p) * p;  // tangent projection
    ux_[k] = u.x;
    uy_[k] = u.y;
    uz_[k] = u.z;
  }
  project_and_dss(h_, ux_, uy_, uz_);
}

void shallow_water_model::set_williamson2(double u0, double h0) {
  const double g = params_.gravity;
  const double omega = params_.rotation;
  set_state(
      [=](mesh::vec3 p) {
        return h0 - (omega * u0 + 0.5 * u0 * u0) * p.z * p.z / g;
      },
      [=](mesh::vec3 p) {
        return mesh::vec3{-u0 * p.y, u0 * p.x, 0.0};  // u0 (ẑ × p)
      });
}

shallow_water_model::element_scratch shallow_water_model::make_scratch() const {
  const std::size_t per_elem =
      static_cast<std::size_t>(np_) * static_cast<std::size_t>(np_);
  element_scratch s;
  for (auto* v : {&s.uxi, &s.ueta, &s.fxi, &s.feta, &s.dq1, &s.dq2, &s.dhx,
                  &s.dhe, &s.dux1, &s.dux2, &s.duy1, &s.duy2, &s.duz1,
                  &s.duz2})
    v->assign(per_elem, 0.0);
  return s;
}

void shallow_water_model::rhs_element(
    std::span<const double> h, std::span<const double> ux,
    std::span<const double> uy, std::span<const double> uz,
    std::span<double> rh, std::span<double> rx, std::span<double> ry,
    std::span<double> rz, int elem, element_scratch& s) const {
  const int np = np_;
  const std::size_t per_elem =
      static_cast<std::size_t>(np) * static_cast<std::size_t>(np);
  const std::size_t base = static_cast<std::size_t>(elem) * per_elem;
  const double* D = rule_.diff.data();
  const double g = params_.gravity;

  // Contravariant velocity and mass fluxes at each node.
  for (std::size_t k = 0; k < per_elem; ++k) {
    const node_data& nd = nodes_[base + k];
    const mesh::vec3 u{ux[base + k], uy[base + k], uz[base + k]};
    const double c1 = mesh::dot(u, nd.t_xi);
    const double c2 = mesh::dot(u, nd.t_eta);
    s.uxi[k] = nd.gi11 * c1 + nd.gi12 * c2;
    s.ueta[k] = nd.gi12 * c1 + nd.gi22 * c2;
    s.fxi[k] = nd.jac * h[base + k] * s.uxi[k];
    s.feta[k] = nd.jac * h[base + k] * s.ueta[k];
  }
  // Directional derivatives.
  deriv_xi(D, s.fxi.data(), s.dq1.data(), np);
  deriv_eta(D, s.feta.data(), s.dq2.data(), np);
  deriv_xi(D, h.data() + base, s.dhx.data(), np);
  deriv_eta(D, h.data() + base, s.dhe.data(), np);
  deriv_xi(D, ux.data() + base, s.dux1.data(), np);
  deriv_eta(D, ux.data() + base, s.dux2.data(), np);
  deriv_xi(D, uy.data() + base, s.duy1.data(), np);
  deriv_eta(D, uy.data() + base, s.duy2.data(), np);
  deriv_xi(D, uz.data() + base, s.duz1.data(), np);
  deriv_eta(D, uz.data() + base, s.duz2.data(), np);

  for (std::size_t k = 0; k < per_elem; ++k) {
    const node_data& nd = nodes_[base + k];
    // Continuity: dh/dt = -(1/J) [∂(J h u^ξ)/∂ξ + ∂(J h u^η)/∂η].
    rh[base + k] = -(s.dq1[k] + s.dq2[k]) / nd.jac;
    // Momentum advection (per Cartesian component).
    const double ax = s.uxi[k] * s.dux1[k] + s.ueta[k] * s.dux2[k];
    const double ay = s.uxi[k] * s.duy1[k] + s.ueta[k] * s.duy2[k];
    const double az = s.uxi[k] * s.duz1[k] + s.ueta[k] * s.duz2[k];
    // Pressure gradient: g ∇h via the contravariant basis.
    const mesh::vec3 txi_up = nd.gi11 * nd.t_xi + nd.gi12 * nd.t_eta;
    const mesh::vec3 teta_up = nd.gi12 * nd.t_xi + nd.gi22 * nd.t_eta;
    const mesh::vec3 grad_h = s.dhx[k] * txi_up + s.dhe[k] * teta_up;
    // Coriolis: f (p̂ × u).
    const mesh::vec3 u{ux[base + k], uy[base + k], uz[base + k]};
    const mesh::vec3 cor = nd.coriolis * mesh::cross(nd.pos, u);
    rx[base + k] = -ax - cor.x - g * grad_h.x;
    ry[base + k] = -ay - cor.y - g * grad_h.y;
    rz[base + k] = -az - cor.z - g * grad_h.z;
  }
}

void shallow_water_model::project_node(std::size_t k, std::vector<double>& ux,
                                       std::vector<double>& uy,
                                       std::vector<double>& uz) const {
  const mesh::vec3 p = nodes_[k].pos;
  const double un = ux[k] * p.x + uy[k] * p.y + uz[k] * p.z;
  ux[k] -= un * p.x;
  uy[k] -= un * p.y;
  uz[k] -= un * p.z;
}

void shallow_water_model::compute_rhs(std::span<const double> h,
                                      std::span<const double> ux,
                                      std::span<const double> uy,
                                      std::span<const double> uz) {
  const std::size_t per_elem =
      static_cast<std::size_t>(np_) * static_cast<std::size_t>(np_);
  const int nelem = static_cast<int>(h_.size() / per_elem);
  element_scratch scratch = make_scratch();
  for (int e = 0; e < nelem; ++e)
    rhs_element(h, ux, uy, uz, rh_, rx_, ry_, rz_, e, scratch);
}

void shallow_water_model::project_and_dss(std::vector<double>& h,
                                          std::vector<double>& ux,
                                          std::vector<double>& uy,
                                          std::vector<double>& uz) {
  for (std::size_t k = 0; k < nodes_.size(); ++k) {
    const mesh::vec3 p = nodes_[k].pos;
    const double un = ux[k] * p.x + uy[k] * p.y + uz[k] * p.z;
    ux[k] -= un * p.x;
    uy[k] -= un * p.y;
    uz[k] -= un * p.z;
  }
  assembly_.dss_average(h);
  assembly_.dss_average(ux);
  assembly_.dss_average(uy);
  assembly_.dss_average(uz);
}

void shallow_water_model::step(double dt) {
  SFP_REQUIRE(dt > 0, "timestep must be positive");
  const std::size_t n = h_.size();

  compute_rhs(h_, ux_, uy_, uz_);
  for (std::size_t k = 0; k < n; ++k) {
    s1h_[k] = h_[k] + dt * rh_[k];
    s1x_[k] = ux_[k] + dt * rx_[k];
    s1y_[k] = uy_[k] + dt * ry_[k];
    s1z_[k] = uz_[k] + dt * rz_[k];
  }
  project_and_dss(s1h_, s1x_, s1y_, s1z_);

  compute_rhs(s1h_, s1x_, s1y_, s1z_);
  for (std::size_t k = 0; k < n; ++k) {
    s2h_[k] = 0.75 * h_[k] + 0.25 * (s1h_[k] + dt * rh_[k]);
    s2x_[k] = 0.75 * ux_[k] + 0.25 * (s1x_[k] + dt * rx_[k]);
    s2y_[k] = 0.75 * uy_[k] + 0.25 * (s1y_[k] + dt * ry_[k]);
    s2z_[k] = 0.75 * uz_[k] + 0.25 * (s1z_[k] + dt * rz_[k]);
  }
  project_and_dss(s2h_, s2x_, s2y_, s2z_);

  compute_rhs(s2h_, s2x_, s2y_, s2z_);
  for (std::size_t k = 0; k < n; ++k) {
    h_[k] = h_[k] / 3.0 + (2.0 / 3.0) * (s2h_[k] + dt * rh_[k]);
    ux_[k] = ux_[k] / 3.0 + (2.0 / 3.0) * (s2x_[k] + dt * rx_[k]);
    uy_[k] = uy_[k] / 3.0 + (2.0 / 3.0) * (s2y_[k] + dt * ry_[k]);
    uz_[k] = uz_[k] / 3.0 + (2.0 / 3.0) * (s2z_[k] + dt * rz_[k]);
  }
  project_and_dss(h_, ux_, uy_, uz_);
}

double shallow_water_model::cfl_dt(double cfl) const {
  SFP_REQUIRE(cfl > 0, "CFL number must be positive");
  double min_gap = 2.0;
  for (std::size_t i = 1; i < rule_.nodes.size(); ++i)
    min_gap = std::min(min_gap, rule_.nodes[i] - rule_.nodes[i - 1]);
  double h_max = 0;
  for (const double h : h_) h_max = std::max(h_max, h);
  const double c = std::sqrt(params_.gravity * std::max(h_max, 1e-12));
  double speed = 1e-12;
  for (std::size_t k = 0; k < nodes_.size(); ++k) {
    const node_data& nd = nodes_[k];
    const mesh::vec3 u{ux_[k], uy_[k], uz_[k]};
    const double c1 = mesh::dot(u, nd.t_xi);
    const double c2 = mesh::dot(u, nd.t_eta);
    const double uxi = std::abs(nd.gi11 * c1 + nd.gi12 * c2);
    const double ueta = std::abs(nd.gi12 * c1 + nd.gi22 * c2);
    // Gravity waves travel at c in physical space; convert to reference
    // speed with the contravariant metric scale.
    speed = std::max(speed, uxi + c * std::sqrt(nd.gi11));
    speed = std::max(speed, ueta + c * std::sqrt(nd.gi22));
  }
  return cfl * min_gap / speed;
}

double shallow_water_model::mass() const {
  double total = 0;
  const std::size_t per_elem =
      static_cast<std::size_t>(np_) * static_cast<std::size_t>(np_);
  for (std::size_t k = 0; k < h_.size(); ++k) {
    const int i = static_cast<int>(k % static_cast<std::size_t>(np_));
    const int j = static_cast<int>((k / static_cast<std::size_t>(np_)) %
                                   static_cast<std::size_t>(np_));
    (void)per_elem;
    total += rule_.weights[static_cast<std::size_t>(i)] *
             rule_.weights[static_cast<std::size_t>(j)] * nodes_[k].jac *
             h_[k];
  }
  return total;
}

double shallow_water_model::total_energy() const {
  double total = 0;
  for (std::size_t k = 0; k < h_.size(); ++k) {
    const int i = static_cast<int>(k % static_cast<std::size_t>(np_));
    const int j = static_cast<int>((k / static_cast<std::size_t>(np_)) %
                                   static_cast<std::size_t>(np_));
    const double u2 = ux_[k] * ux_[k] + uy_[k] * uy_[k] + uz_[k] * uz_[k];
    const double density =
        0.5 * h_[k] * u2 + 0.5 * params_.gravity * h_[k] * h_[k];
    total += rule_.weights[static_cast<std::size_t>(i)] *
             rule_.weights[static_cast<std::size_t>(j)] * nodes_[k].jac *
             density;
  }
  return total;
}

double shallow_water_model::depth_error(
    const std::function<double(mesh::vec3)>& reference) const {
  double err = 0;
  for (std::size_t k = 0; k < h_.size(); ++k)
    err = std::max(err, std::abs(h_[k] - reference(nodes_[k].pos)));
  return err;
}

double shallow_water_model::max_normal_velocity() const {
  double worst = 0;
  for (std::size_t k = 0; k < h_.size(); ++k) {
    const mesh::vec3 p = nodes_[k].pos;
    worst = std::max(worst,
                     std::abs(ux_[k] * p.x + uy_[k] * p.y + uz_[k] * p.z));
  }
  return worst;
}

double shallow_water_model::continuity_gap() const {
  double gap = assembly_.continuity_gap(h_);
  gap = std::max(gap, assembly_.continuity_gap(ux_));
  gap = std::max(gap, assembly_.continuity_gap(uy_));
  gap = std::max(gap, assembly_.continuity_gap(uz_));
  return gap;
}

}  // namespace sfp::seam
