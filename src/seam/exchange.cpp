#include "seam/exchange.hpp"

#include <algorithm>
#include <map>
#include <string>
#include <unordered_map>

#include "obs/trace.hpp"
#include "util/require.hpp"

namespace sfp::seam {

exchange_plan exchange_plan::build(const assembly& dofs,
                                   const partition::partition& part) {
  const int np = dofs.np();
  const int nelem = dofs.num_elements();
  SFP_REQUIRE(part.part_of.size() == static_cast<std::size_t>(nelem),
              "partition must label every element");
  SFP_REQUIRE(part.num_parts >= 1, "need at least one rank");

  exchange_plan plan;
  plan.ranks.resize(static_cast<std::size_t>(part.num_parts));
  for (int e = 0; e < nelem; ++e) {
    const graph::vid p = part.part_of[static_cast<std::size_t>(e)];
    SFP_REQUIRE(p >= 0 && p < part.num_parts, "part label out of range");
    plan.ranks[static_cast<std::size_t>(p)].owned.push_back(e);
  }
  for (const auto& rp : plan.ranks)
    SFP_REQUIRE(!rp.owned.empty(), "every rank must own an element");

  // Which ranks touch each dof.
  std::unordered_map<std::int64_t, std::vector<int>> dof_ranks;
  dof_ranks.reserve(static_cast<std::size_t>(dofs.num_dofs()));
  for (int e = 0; e < nelem; ++e) {
    const int p = part.part_of[static_cast<std::size_t>(e)];
    for (int j = 0; j < np; ++j)
      for (int i = 0; i < np; ++i) {
        auto& ranks = dof_ranks[dofs.dof_of(e, i, j)];
        if (std::find(ranks.begin(), ranks.end(), p) == ranks.end())
          ranks.push_back(p);
      }
  }

  for (std::size_t self = 0; self < plan.ranks.size(); ++self) {
    rank_exchange_plan& rp = plan.ranks[self];
    for (const int e : rp.owned)
      for (int j = 0; j < np; ++j)
        for (int i = 0; i < np; ++i)
          rp.touched_dofs.push_back(dofs.dof_of(e, i, j));
    std::sort(rp.touched_dofs.begin(), rp.touched_dofs.end());
    rp.touched_dofs.erase(
        std::unique(rp.touched_dofs.begin(), rp.touched_dofs.end()),
        rp.touched_dofs.end());

    std::unordered_map<std::int64_t, std::int32_t> local_of;
    local_of.reserve(rp.touched_dofs.size());
    for (std::size_t k = 0; k < rp.touched_dofs.size(); ++k)
      local_of[rp.touched_dofs[k]] = static_cast<std::int32_t>(k);

    rp.inv_multiplicity.resize(rp.touched_dofs.size());
    for (std::size_t k = 0; k < rp.touched_dofs.size(); ++k)
      rp.inv_multiplicity[k] = 1.0 / dofs.multiplicity(rp.touched_dofs[k]);

    for (const int e : rp.owned) {
      for (int j = 0; j < np; ++j)
        for (int i = 0; i < np; ++i) {
          rp.owned_nodes.push_back(
              (static_cast<std::size_t>(e) * np + static_cast<std::size_t>(j)) *
                  np +
              static_cast<std::size_t>(i));
          rp.node_dof_local.push_back(local_of.at(dofs.dof_of(e, i, j)));
        }
    }

    // Peer lists in ascending global-dof order (both sides build the same
    // order, so packed vectors line up).
    std::map<int, std::vector<std::int32_t>> by_peer;
    for (std::size_t k = 0; k < rp.touched_dofs.size(); ++k) {
      for (const int q : dof_ranks.at(rp.touched_dofs[k])) {
        if (q != static_cast<int>(self))
          by_peer[q].push_back(static_cast<std::int32_t>(k));
      }
    }
    for (auto& [q, list] : by_peer) rp.peers.push_back({q, std::move(list)});
  }
  return plan;
}

std::int64_t exchange_plan::total_exchange_volume() const {
  std::int64_t total = 0;
  for (const auto& rp : ranks)
    for (const auto& peer : rp.peers)
      total += static_cast<std::int64_t>(peer.dof_local.size());
  return total;
}

int exchange_plan::max_peers() const {
  std::size_t most = 0;
  for (const auto& rp : ranks) most = std::max(most, rp.peers.size());
  return static_cast<int>(most);
}

halo_exchanger::halo_exchanger(const rank_exchange_plan& plan,
                               runtime::communicator& comm,
                               runtime::reliable_channel* channel)
    : halo_exchanger(plan, comm) {
  reliable_ = channel;
}

halo_exchanger::halo_exchanger(const rank_exchange_plan& plan,
                               runtime::communicator& comm)
    : halo_exchanger(plan, comm.rank()) {
  comm_ = &comm;
}

halo_exchanger::halo_exchanger(const rank_exchange_plan& plan, int rank,
                               runtime::reliable_channel& channel)
    : halo_exchanger(plan, rank) {
  reliable_ = &channel;
}

halo_exchanger::halo_exchanger(const rank_exchange_plan& plan, int rank)
    : plan_(&plan) {
  acc_.resize(plan.touched_dofs.size());
  fresh_.resize(plan.touched_dofs.size());
  // Per-neighbour wire-volume counters, only while a session is observing:
  // each (rank, peer) pair is one registry entry, so an unobserved run must
  // not create them.
  if (obs::trace::enabled()) {
    obs::registry& reg = obs::registry::global();
    const std::string prefix =
        "seam.halo.doubles.rank" + std::to_string(rank) + ".peer";
    peer_doubles_.reserve(plan.peers.size());
    for (const auto& peer : plan.peers)
      peer_doubles_.push_back(
          &reg.get_counter(prefix + std::to_string(peer.rank)));
  }
}

std::pair<std::int64_t, std::int64_t> halo_exchanger::dss_average(
    std::span<double> field, int tag) {
  const rank_exchange_plan& plan = *plan_;
  std::int64_t messages = 0, doubles_sent = 0;
  {
    SFP_TRACE_SCOPE_CAT("halo.pack", "seam");
    std::fill(acc_.begin(), acc_.end(), 0.0);
    for (std::size_t k = 0; k < plan.owned_nodes.size(); ++k)
      acc_[static_cast<std::size_t>(plan.node_dof_local[k])] +=
          field[plan.owned_nodes[k]];

    for (std::size_t p = 0; p < plan.peers.size(); ++p) {
      const auto& peer = plan.peers[p];
      packed_.resize(peer.dof_local.size());
      for (std::size_t k = 0; k < peer.dof_local.size(); ++k)
        packed_[k] = acc_[static_cast<std::size_t>(peer.dof_local[k])];
      if (reliable_)
        reliable_->send(peer.rank, tag, packed_);
      else
        comm_->send(peer.rank, tag, packed_);
      ++messages;
      doubles_sent += static_cast<std::int64_t>(packed_.size());
      if (!peer_doubles_.empty())
        peer_doubles_[p]->add(static_cast<std::int64_t>(packed_.size()));
    }
  }
  {
    SFP_TRACE_SCOPE_CAT("halo.recv", "seam");
    fresh_ = acc_;
    for (const auto& peer : plan.peers) {
      const std::vector<double> incoming = reliable_
                                               ? reliable_->recv(peer.rank, tag)
                                               : comm_->recv(peer.rank, tag);
      SFP_REQUIRE(incoming.size() == peer.dof_local.size(),
                  "halo exchange size mismatch");
      for (std::size_t k = 0; k < incoming.size(); ++k)
        fresh_[static_cast<std::size_t>(peer.dof_local[k])] += incoming[k];
    }
  }
  if (reliable_) {
    // Settle the fabric before anyone can reach a raw, non-pumping
    // collective: every send acked, then a pumping barrier proving every
    // rank got that far (see reliable_channel::fence).
    SFP_TRACE_SCOPE_CAT("halo.settle", "seam");
    reliable_->flush();
    reliable_->fence();
  }
  {
    SFP_TRACE_SCOPE_CAT("halo.unpack", "seam");
    for (std::size_t k = 0; k < plan.owned_nodes.size(); ++k) {
      const auto d = static_cast<std::size_t>(plan.node_dof_local[k]);
      field[plan.owned_nodes[k]] = fresh_[d] * plan.inv_multiplicity[d];
    }
  }
  return {messages, doubles_sent};
}

}  // namespace sfp::seam
