#pragma once
// Global degree-of-freedom numbering and direct stiffness summation (DSS)
// for C0 spectral elements on the cubed-sphere.
//
// Each element carries an np×np grid of GLL nodes; nodes on element
// boundaries are geometrically shared — with the neighbour across each edge
// (respecting the edge's orientation reversal across cube edges) and with
// the 2-3 other elements around each corner (3 faces meet at cube vertices).
// The assembly assigns one global id per geometric node, which is exactly
// the communication structure SEAM exchanges every timestep and the basis of
// the element adjacency weights used for partitioning.

#include <cstdint>
#include <span>
#include <vector>

#include "mesh/cubed_sphere.hpp"

namespace sfp::seam {

class assembly {
 public:
  /// Build the global numbering for `mesh` with np×np nodes per element.
  assembly(const mesh::cubed_sphere& mesh, int np);

  int np() const { return np_; }
  int num_elements() const { return num_elements_; }
  std::int64_t num_dofs() const { return num_dofs_; }
  std::int64_t nodes_per_element() const {
    return static_cast<std::int64_t>(np_) * np_;
  }
  std::int64_t field_size() const {
    return nodes_per_element() * num_elements_;
  }

  /// Global dof of local node (i, j) of `elem`; i runs along the element's
  /// local x, j along local y, both in [0, np).
  std::int64_t dof_of(int elem, int i, int j) const {
    return dof_[flat(elem, i, j)];
  }

  /// Number of element-local nodes mapping to this dof (1 interior, 2 edge,
  /// 3-4 corner).
  int multiplicity(std::int64_t dof) const {
    return multiplicity_[static_cast<std::size_t>(dof)];
  }

  /// DSS with averaging: replaces every shared node's value by the mean of
  /// all its element-local copies. Projects any field onto C0.
  /// `field` is laid out field[elem*np*np + j*np + i].
  void dss_average(std::span<double> field) const;

  /// DSS with summation: every shared node receives the sum of its copies
  /// (the assembly operation for weak-form operators).
  void dss_sum(std::span<double> field) const;

  /// Maximum disagreement between copies of the same dof — 0 for a C0 field.
  double continuity_gap(std::span<const double> field) const;

 private:
  std::size_t flat(int elem, int i, int j) const {
    return (static_cast<std::size_t>(elem) * static_cast<std::size_t>(np_) +
            static_cast<std::size_t>(j)) *
               static_cast<std::size_t>(np_) +
           static_cast<std::size_t>(i);
  }

  int np_;
  int num_elements_;
  std::int64_t num_dofs_ = 0;
  std::vector<std::int64_t> dof_;     // per local node
  std::vector<int> multiplicity_;     // per dof
};

}  // namespace sfp::seam
