#include "core/validate.hpp"

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

namespace sfp::core {

namespace {

template <typename... Parts>
std::string format(const Parts&... parts) {
  std::ostringstream os;
  (os << ... << parts);
  return os.str();
}

}  // namespace

diagnostic validate_plan(const partition::partition& p,
                         std::span<const int> order,
                         std::span<const graph::weight> weights,
                         double balance_slack) {
  const auto k = order.size();
  if (p.num_parts < 1)
    return diagnostic::fail("plan.label-range",
                            format("num_parts is ", p.num_parts));
  if (p.part_of.size() != k)
    return diagnostic::fail(
        "plan.size", format("partition covers ", p.part_of.size(),
                            " elements, traversal has ", k));
  if (!weights.empty() && weights.size() != k)
    return diagnostic::fail(
        "plan.size", format("weights cover ", weights.size(),
                            " elements, traversal has ", k));

  // Ownership: the traversal must visit every element exactly once, so
  // every element is owned by exactly the part its curve position maps to.
  std::vector<bool> seen(k, false);
  for (std::size_t i = 0; i < k; ++i) {
    const int e = order[i];
    if (e < 0 || static_cast<std::size_t>(e) >= k)
      return diagnostic::fail(
          "plan.ownership",
          format("traversal position ", i, " names element ", e,
                 " outside [0, ", k, ")"),
          static_cast<std::int64_t>(i));
    if (seen[static_cast<std::size_t>(e)])
      return diagnostic::fail(
          "plan.ownership",
          format("element ", e, " appears twice in the traversal"), e);
    seen[static_cast<std::size_t>(e)] = true;
  }

  for (std::size_t e = 0; e < k; ++e) {
    const graph::vid label = p.part_of[e];
    if (label < 0 || label >= p.num_parts)
      return diagnostic::fail(
          "plan.label-range",
          format("element ", e, " has label ", label, " outside [0, ",
                 p.num_parts, ")"),
          static_cast<std::int64_t>(e));
  }

  // Contiguity: along the curve, each part's elements must form exactly one
  // run (labels may appear in any order — recovery and remap permute them —
  // but a part must never restart after ending).
  const auto np = static_cast<std::size_t>(p.num_parts);
  std::vector<char> run_closed(np, 0);
  std::vector<std::int64_t> count(np, 0);
  graph::vid prev = -1;
  for (std::size_t i = 0; i < k; ++i) {
    const auto label = static_cast<std::size_t>(
        p.part_of[static_cast<std::size_t>(order[i])]);
    ++count[label];
    if (static_cast<graph::vid>(label) != prev) {
      if (run_closed[label])
        return diagnostic::fail(
            "plan.segment-contiguity",
            format("part ", label, " restarts at curve position ", i,
                   " after an earlier segment ended"),
            static_cast<std::int64_t>(i));
      if (prev >= 0) run_closed[static_cast<std::size_t>(prev)] = 1;
      prev = static_cast<graph::vid>(label);
    }
  }

  for (std::size_t s = 0; s < np; ++s)
    if (count[s] == 0)
      return diagnostic::fail("plan.part-empty",
                              format("part ", s, " owns no elements"),
                              static_cast<std::int64_t>(s));

  // Weighted-segment bound (skipped entirely at slack <= 0, for plans —
  // like mid-recovery states — whose balance is best-effort). For unit
  // weights at slack 1 the midpoint rule is exact: every part holds ⌊K/n⌋
  // or ⌈K/n⌉ elements.
  if (balance_slack <= 0.0) {
    return diagnostic::pass();
  }
  if (weights.empty() && balance_slack <= 1.0) {
    const auto lo = static_cast<std::int64_t>(k / np);
    const auto hi = static_cast<std::int64_t>((k + np - 1) / np);
    for (std::size_t s = 0; s < np; ++s)
      if (count[s] < lo || count[s] > hi)
        return diagnostic::fail(
            "plan.balance",
            format("part ", s, " owns ", count[s], " elements, want ", lo,
                   "..", hi),
            static_cast<std::int64_t>(s));
  } else {
    graph::weight total = 0, wmax = 0;
    std::vector<graph::weight> part_w(np, 0);
    for (std::size_t e = 0; e < k; ++e) {
      const graph::weight w = weights.empty() ? 1 : weights[e];
      if (w <= 0)
        return diagnostic::fail(
            "plan.balance",
            format("element ", e, " has non-positive weight ", w),
            static_cast<std::int64_t>(e));
      total += w;
      wmax = std::max(wmax, w);
      part_w[static_cast<std::size_t>(p.part_of[e])] += w;
    }
    const double ideal = static_cast<double>(total) / static_cast<double>(np);
    const double limit =
        balance_slack * (ideal + static_cast<double>(wmax));
    for (std::size_t s = 0; s < np; ++s)
      if (static_cast<double>(part_w[s]) > limit)
        return diagnostic::fail(
            "plan.balance",
            format("part ", s, " weighs ", part_w[s],
                   ", above the segment bound ", limit, " (ideal ", ideal,
                   ", w_max ", wmax, ", slack ", balance_slack, ")"),
            static_cast<std::int64_t>(s));
  }

  return diagnostic::pass();
}

diagnostic validate_plan(const partition::partition& p,
                         const cube_curve& curve,
                         std::span<const graph::weight> weights,
                         double balance_slack) {
  return validate_plan(p, curve.order, weights, balance_slack);
}

}  // namespace sfp::core
