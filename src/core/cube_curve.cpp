#include "core/cube_curve.hpp"

#include <algorithm>
#include <optional>
#include <sstream>

#include "obs/obs.hpp"
#include "util/require.hpp"

namespace sfp::core {

namespace {

using sfc::cell;
using sfc::dihedral;

constexpr int kOpposite[6] = {2, 3, 0, 1, 5, 4};

/// Edge-neighbour of `e` lying on `target_face`, or -1. Corner cells have at
/// most one edge neighbour per foreign face, so the result is unique.
int neighbor_on_face(const mesh::cubed_sphere& mesh, int e, int target_face) {
  for (int edge = 0; edge < 4; ++edge) {
    const int nbr = mesh.edge_neighbor(e, edge);
    if (mesh.element_of(nbr).face == target_face) return nbr;
  }
  return -1;
}

struct search_ctx {
  const mesh::cubed_sphere* mesh;
  int ne;
  cell entry_base{0, 0};
  cell exit_base{0, 0};
  std::array<int, 6> face_order{};
  std::array<dihedral, 6> orient{};  // indexed by position in face_order
  int first_entry_elem = -1;
};

/// Recursively orient faces `pos..5`; `exit_elem` is the last element of the
/// previously oriented face. Returns true on success; prefers (via
/// `want_closed`) solutions whose final element neighbours the first.
bool orient_faces(search_ctx& ctx, int pos, int exit_elem, bool want_closed) {
  if (pos == 6) {
    if (!want_closed) return true;
    return neighbor_on_face(*ctx.mesh, exit_elem, ctx.face_order[0]) ==
           ctx.first_entry_elem;
  }
  const int face = ctx.face_order[static_cast<std::size_t>(pos)];
  const int req_elem = neighbor_on_face(*ctx.mesh, exit_elem, face);
  if (req_elem < 0) return false;
  const mesh::element_ref req = ctx.mesh->element_of(req_elem);
  for (const dihedral t : sfc::all_dihedrals) {
    const cell entry = sfc::apply(t, ctx.entry_base, ctx.ne);
    if (entry.x != req.i || entry.y != req.j) continue;
    const cell ex = sfc::apply(t, ctx.exit_base, ctx.ne);
    const int new_exit = ctx.mesh->element_id(face, ex.x, ex.y);
    ctx.orient[static_cast<std::size_t>(pos)] = t;
    if (orient_faces(ctx, pos + 1, new_exit, want_closed)) return true;
  }
  return false;
}

/// Try every Hamiltonian face sequence starting at face 0 and every starting
/// orientation; fill `out` on success. `tried` counts candidate face
/// sequences actually descended into (observability for the search cost).
bool search_stitching(const mesh::cubed_sphere& mesh, int ne, cell entry_base,
                      cell exit_base, bool want_closed, search_ctx& out,
                      std::int64_t& tried) {
  std::array<int, 5> rest = {1, 2, 3, 4, 5};
  std::sort(rest.begin(), rest.end());
  do {
    // Consecutive faces must be adjacent (not opposite); for closed curves
    // the last face must also neighbour face 0.
    bool ok = kOpposite[0] != rest[0];
    for (std::size_t k = 0; ok && k + 1 < rest.size(); ++k)
      ok = kOpposite[static_cast<std::size_t>(rest[k])] != rest[k + 1];
    if (want_closed && kOpposite[static_cast<std::size_t>(rest[4])] == 0)
      ok = false;
    if (!ok) continue;
    ++tried;

    search_ctx ctx;
    ctx.mesh = &mesh;
    ctx.ne = ne;
    ctx.entry_base = entry_base;
    ctx.exit_base = exit_base;
    ctx.face_order = {0, rest[0], rest[1], rest[2], rest[3], rest[4]};
    for (const dihedral t0 : sfc::all_dihedrals) {
      ctx.orient[0] = t0;
      const cell entry0 = sfc::apply(t0, entry_base, ne);
      const cell exit0 = sfc::apply(t0, exit_base, ne);
      ctx.first_entry_elem = mesh.element_id(0, entry0.x, entry0.y);
      const int exit_elem = mesh.element_id(0, exit0.x, exit0.y);
      if (orient_faces(ctx, 1, exit_elem, want_closed)) {
        out = ctx;
        return true;
      }
    }
  } while (std::next_permutation(rest.begin(), rest.end()));
  return false;
}

}  // namespace

cube_curve_spec spec_of(const cube_curve& curve) {
  cube_curve_spec spec;
  spec.face_schedule = curve.face_schedule;
  spec.face_order = curve.face_order;
  spec.orientation = curve.orientation;
  spec.closed = curve.closed;
  return spec;
}

cube_curve_spec build_cube_curve_spec(const mesh::cubed_sphere& mesh,
                                      const sfc::schedule& face_schedule) {
  const int ne = mesh.ne();
  SFP_REQUIRE(sfc::side_of(face_schedule) == ne,
              "face schedule side must equal mesh Ne");
  // Every generated face curve enters at (0,0) and exits at (side-1, 0) —
  // the shared frame convention (see sfc/curve.hpp) — so the stitch search
  // does not need the materialized curve at all.
  const cell entry_base{0, 0};
  const cell exit_base{ne - 1, 0};

  SFP_OBS_TIMED_SCOPE("core.stitch");
  search_ctx found;
  bool closed = true;
  std::int64_t tried = 0;
  if (!search_stitching(mesh, ne, entry_base, exit_base, /*want_closed=*/true,
                        found, tried)) {
    closed = false;
    const bool ok = search_stitching(mesh, ne, entry_base, exit_base,
                                     /*want_closed=*/false, found, tried);
    SFP_REQUIRE(ok, "no cube stitching exists — face curve generator broken");
  }
  obs::registry::global().get_counter("core.stitch.sequences_tried").add(tried);
  obs::registry::global()
      .get_counter(closed ? "core.stitch.closed" : "core.stitch.open")
      .inc();

  cube_curve_spec out;
  out.face_schedule = face_schedule;
  out.face_order = found.face_order;
  out.closed = closed;
  for (int pos = 0; pos < 6; ++pos) {
    out.orientation[static_cast<std::size_t>(
        found.face_order[static_cast<std::size_t>(pos)])] =
        found.orient[static_cast<std::size_t>(pos)];
  }
  return out;
}

cube_curve_spec build_cube_curve_spec(const mesh::cubed_sphere& mesh,
                                      sfc::nesting_order order) {
  if (mesh.ne() == 1) return build_cube_curve_spec(mesh, sfc::schedule{});
  const auto s = sfc::schedule_for(mesh.ne(), order);
  SFP_REQUIRE(s.has_value(),
              "Ne must be of the form 2^n * 3^m for SFC partitioning "
              "(the paper's restriction on problem size)");
  return build_cube_curve_spec(mesh, *s);
}

std::int64_t curve_position_of(const cube_curve_spec& spec,
                               const mesh::cubed_sphere& mesh, int element) {
  const int ne = mesh.ne();
  SFP_REQUIRE(element >= 0 && element < mesh.num_elements(),
              "element id out of range");
  const mesh::element_ref ref = mesh.element_of(element);
  const auto face = static_cast<std::size_t>(ref.face);
  // The face's block offset in the visit order.
  std::int64_t block = -1;
  for (int pos = 0; pos < 6; ++pos)
    if (spec.face_order[static_cast<std::size_t>(pos)] == ref.face) {
      block = pos;
      break;
    }
  SFP_ASSERT(block >= 0, "face missing from the stitched face order");
  // Undo the face's orientation, then point-query the base curve.
  const cell canonical = sfc::apply(sfc::inverse(spec.orientation[face]),
                                    cell{ref.i, ref.j}, ne);
  const std::int64_t within =
      sfc::curve_position(spec.face_schedule, canonical);
  return block * static_cast<std::int64_t>(ne) * ne + within;
}

cube_curve build_cube_curve(const mesh::cubed_sphere& mesh,
                            const sfc::schedule& face_schedule) {
  const int ne = mesh.ne();
  const cube_curve_spec spec = build_cube_curve_spec(mesh, face_schedule);
  const std::vector<cell> base = sfc::generate(face_schedule);

  cube_curve out;
  out.face_schedule = spec.face_schedule;
  out.face_order = spec.face_order;
  out.orientation = spec.orientation;
  out.closed = spec.closed;
  out.order.reserve(static_cast<std::size_t>(mesh.num_elements()));
  for (int pos = 0; pos < 6; ++pos) {
    const int face = spec.face_order[static_cast<std::size_t>(pos)];
    const dihedral t = spec.orientation[static_cast<std::size_t>(face)];
    for (const cell c : base) {
      const cell m = sfc::apply(t, c, ne);
      out.order.push_back(mesh.element_id(face, m.x, m.y));
    }
  }
#if SFP_AUDIT_ENABLED
  // Audit tier: re-verify the stitched traversal against the mesh's own
  // neighbour relation (every element exactly once, consecutive elements
  // surface-adjacent) — the invariant the slicing balance argument rests on.
  std::string audit_err;
  SFP_AUDIT(verify_cube_curve(mesh, out.order, &audit_err),
            "stitched cube curve failed contiguity audit: " + audit_err);
#endif
  return out;
}

cube_curve build_cube_curve(const mesh::cubed_sphere& mesh,
                            sfc::nesting_order order) {
  if (mesh.ne() == 1) return build_cube_curve(mesh, sfc::schedule{});
  const auto s = sfc::schedule_for(mesh.ne(), order);
  SFP_REQUIRE(s.has_value(),
              "Ne must be of the form 2^n * 3^m for SFC partitioning "
              "(the paper's restriction on problem size)");
  return build_cube_curve(mesh, *s);
}

cube_curve build_cube_curve_extended(const mesh::cubed_sphere& mesh) {
  if (mesh.ne() == 1) return build_cube_curve(mesh, sfc::schedule{});
  const auto s = sfc::extended_schedule_for(mesh.ne());
  SFP_REQUIRE(s.has_value(),
              "Ne must be of the form 2^n * 3^m * 5^p for extended SFC "
              "partitioning");
  return build_cube_curve(mesh, *s);
}

bool verify_cube_curve(const mesh::cubed_sphere& mesh,
                       const std::vector<int>& order, std::string* error) {
  const auto fail = [error](const std::string& msg) {
    if (error) *error = msg;
    return false;
  };
  const auto k = static_cast<std::size_t>(mesh.num_elements());
  if (order.size() != k) return fail("curve does not list every element");
  std::vector<bool> seen(k, false);
  for (const int e : order) {
    if (e < 0 || static_cast<std::size_t>(e) >= k)
      return fail("element id out of range");
    if (seen[static_cast<std::size_t>(e)])
      return fail("element visited twice");
    seen[static_cast<std::size_t>(e)] = true;
  }
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    bool adjacent = false;
    for (int edge = 0; edge < 4; ++edge)
      adjacent |= mesh.edge_neighbor(order[i], edge) == order[i + 1];
    if (!adjacent) {
      std::ostringstream os;
      os << "elements " << order[i] << " and " << order[i + 1]
         << " (positions " << i << ',' << i + 1 << ") are not edge-adjacent";
      return fail(os.str());
    }
  }
  if (error) error->clear();
  return true;
}

}  // namespace sfp::core
