#include "core/escalation.hpp"

namespace sfp::core {

escalation_decision decide_escalation(failure_kind kind, int thrower,
                                      int peer, int attempt,
                                      int max_recoveries, int nranks) {
  escalation_decision d;
  switch (kind) {
    case failure_kind::rank_killed:
    case failure_kind::comm_timeout:
      d.victim = thrower;
      break;
    case failure_kind::peer_unreachable:
      d.victim = peer;
      break;
    case failure_kind::unknown:
      return d;  // not a fabric fault: always rethrow
  }
  d.recover = d.victim >= 0 && d.victim < nranks && nranks > 1 &&
              attempt < max_recoveries;
  if (!d.recover) d.victim = -1;
  return d;
}

escalation_decision decide_regroup(int victim, int survivors, int quorum,
                                   int world_size, int attempt,
                                   int max_recoveries) {
  escalation_decision d;
  d.victim = victim;
  d.recover = d.victim >= 0 && d.victim < world_size &&
              survivors >= quorum && survivors >= 1 &&
              attempt < max_recoveries;
  if (!d.recover) d.victim = -1;
  return d;
}

}  // namespace sfp::core
