#include "core/rebalance.hpp"

#include <algorithm>
#include <map>
#include <tuple>
#include <vector>

#include "core/validate.hpp"
#include "util/contract.hpp"

namespace sfp::core {

void remap_to_maximize_overlap(const partition::partition& reference,
                               partition::partition& target) {
  SFP_REQUIRE(reference.part_of.size() == target.part_of.size(),
              "partitions must cover the same element set");
  SFP_REQUIRE(target.num_parts >= 1, "target partition must have parts");
  const int k = target.num_parts;

  // Overlap counts: (new part, old part) -> #elements.
  std::map<std::pair<graph::vid, graph::vid>, std::int64_t> overlap;
  for (std::size_t v = 0; v < target.part_of.size(); ++v)
    ++overlap[{target.part_of[v], reference.part_of[v]}];

  // Greedy maximum-overlap assignment: largest overlaps claim labels first.
  std::vector<std::tuple<std::int64_t, graph::vid, graph::vid>> edges;
  edges.reserve(overlap.size());
  for (const auto& [key, count] : overlap)
    edges.push_back({count, key.first, key.second});
  std::sort(edges.begin(), edges.end(), [](const auto& a, const auto& b) {
    if (std::get<0>(a) != std::get<0>(b)) return std::get<0>(a) > std::get<0>(b);
    return std::tie(std::get<1>(a), std::get<2>(a)) <
           std::tie(std::get<1>(b), std::get<2>(b));  // deterministic ties
  });

  // Only labels valid for `target` can be claimed; when shrinking, the
  // reference labels >= k are simply unavailable.
  std::vector<graph::vid> new_label(static_cast<std::size_t>(k), -1);
  std::vector<bool> taken(static_cast<std::size_t>(k), false);
  for (const auto& [count, np, op] : edges) {
    (void)count;
    if (op >= k) continue;
    if (new_label[static_cast<std::size_t>(np)] != -1 ||
        taken[static_cast<std::size_t>(op)])
      continue;
    new_label[static_cast<std::size_t>(np)] = op;
    taken[static_cast<std::size_t>(op)] = true;
  }
  // Parts with no overlap at all get the leftover labels.
  graph::vid spare = 0;
  for (graph::vid np = 0; np < k; ++np) {
    if (new_label[static_cast<std::size_t>(np)] != -1) continue;
    while (taken[static_cast<std::size_t>(spare)]) ++spare;
    new_label[static_cast<std::size_t>(np)] = spare;
    taken[static_cast<std::size_t>(spare)] = true;
  }
  for (auto& label : target.part_of)
    label = new_label[static_cast<std::size_t>(label)];
}

migration_stats migration_between(const partition::partition& from,
                                  const partition::partition& to,
                                  std::span<const graph::weight> weights) {
  SFP_REQUIRE(from.part_of.size() == to.part_of.size(),
              "partitions must cover the same element set");
  SFP_REQUIRE(!from.part_of.empty(), "partitions must not be empty");
  SFP_REQUIRE(weights.empty() || weights.size() == from.part_of.size(),
              "weights must be empty or one per element");
  migration_stats stats;
  for (std::size_t v = 0; v < from.part_of.size(); ++v) {
    if (from.part_of[v] != to.part_of[v]) {
      ++stats.moved_elements;
      stats.moved_weight += weights.empty() ? 1 : weights[v];
    }
  }
  stats.moved_fraction = static_cast<double>(stats.moved_elements) /
                         static_cast<double>(from.part_of.size());
  return stats;
}

partition::partition rebalance(const cube_curve& curve,
                               const partition::partition& current,
                               std::span<const graph::weight> new_weights,
                               int nparts, migration_stats* stats) {
  SFP_REQUIRE(current.part_of.size() == curve.order.size(),
              "current partition must cover the curve's elements");
  partition::partition next = sfc_partition(curve, nparts, new_weights);
  remap_to_maximize_overlap(current, next);
  // Audit tier: remapping permutes whole labels, so the re-sliced plan must
  // still be a structurally valid, balanced slicing of the same curve.
  SFP_AUDIT_DIAG(validate_plan(next, curve, new_weights));
  if (stats) *stats = migration_between(current, next, new_weights);
  return next;
}

recovery_plan plan_recovery(const cube_curve& curve,
                            const partition::partition& current, int failed,
                            std::span<const graph::weight> weights) {
  const std::size_t n = curve.order.size();
  SFP_REQUIRE(current.part_of.size() == n,
              "current partition must cover the curve's elements");
  SFP_REQUIRE(current.num_parts >= 2, "recovery needs a surviving part");
  SFP_REQUIRE(failed >= 0 && failed < current.num_parts,
              "failed part out of range");
  SFP_REQUIRE(weights.empty() || weights.size() == n,
              "weights must be empty or one per element");

  // Pre-failure owner of each curve position.
  std::vector<graph::vid> owner(n);
  for (std::size_t i = 0; i < n; ++i)
    owner[i] = current.part_of[static_cast<std::size_t>(curve.order[i])];
  const auto weight_at = [&](std::size_t i) -> graph::weight {
    return weights.empty()
               ? 1
               : weights[static_cast<std::size_t>(curve.order[i])];
  };

  // Absorb each maximal run of failed-owned positions into the parts
  // adjacent on the curve, splitting at the run's weight midpoint. Only
  // these positions — the failed part itself — change owner.
  recovery_plan plan;
  plan.migration.moved_elements = 0;
  plan.migration.moved_weight = 0;
  std::vector<graph::vid> healed = owner;
  std::size_t i = 0;
  bool any_survivor = false;
  while (i < n) {
    if (owner[i] != failed) {
      any_survivor = true;
      ++i;
      continue;
    }
    std::size_t j = i;
    graph::weight run_weight = 0;
    while (j < n && owner[j] == failed) run_weight += weight_at(j), ++j;
    const graph::vid left = i > 0 ? owner[i - 1] : graph::vid{-1};
    const graph::vid right = j < n ? owner[j] : graph::vid{-1};
    SFP_REQUIRE(left != -1 || right != -1,
                "failed part must not own the whole curve");
    graph::weight prefix = 0;
    for (std::size_t p = i; p < j; ++p) {
      prefix += weight_at(p);
      const bool go_left =
          right == -1 || (left != -1 && 2 * prefix <= run_weight + 1);
      healed[p] = go_left ? left : right;
      ++plan.migration.moved_elements;
      plan.migration.moved_weight += weight_at(p);
    }
    i = j;
  }
  SFP_REQUIRE(any_survivor, "failed part must not own the whole curve");
  plan.migration.moved_fraction =
      static_cast<double>(plan.migration.moved_elements) /
      static_cast<double>(n);

  // Compact labels: surviving part l keeps its elements on the same
  // physical process, renumbered to l - (l > failed).
  plan.survivor_of.reserve(static_cast<std::size_t>(current.num_parts - 1));
  for (graph::vid l = 0; l < current.num_parts; ++l)
    if (l != failed) plan.survivor_of.push_back(l);
  plan.part.num_parts = current.num_parts - 1;
  plan.part.part_of.assign(n, 0);
  for (std::size_t p = 0; p < n; ++p) {
    const graph::vid l = healed[p];
    plan.part.part_of[static_cast<std::size_t>(curve.order[p])] =
        l - (l > failed ? 1 : 0);
  }
  // Audit tier: recovery must keep ownership and segment contiguity intact.
  // Balance is best-effort here (absorbers legitimately run hot), so the
  // structural audit runs with the balance bound disabled.
  SFP_AUDIT_DIAG(validate_plan(plan.part, curve, weights,
                               /*balance_slack=*/0.0));
  return plan;
}

}  // namespace sfp::core
