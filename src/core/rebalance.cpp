#include "core/rebalance.hpp"

#include <algorithm>
#include <map>
#include <tuple>
#include <vector>

#include "util/require.hpp"

namespace sfp::core {

void remap_to_maximize_overlap(const partition::partition& reference,
                               partition::partition& target) {
  SFP_REQUIRE(reference.part_of.size() == target.part_of.size(),
              "partitions must cover the same element set");
  SFP_REQUIRE(reference.num_parts == target.num_parts,
              "remapping requires equal part counts");
  const int k = target.num_parts;

  // Overlap counts: (new part, old part) -> #elements.
  std::map<std::pair<graph::vid, graph::vid>, std::int64_t> overlap;
  for (std::size_t v = 0; v < target.part_of.size(); ++v)
    ++overlap[{target.part_of[v], reference.part_of[v]}];

  // Greedy maximum-overlap assignment: largest overlaps claim labels first.
  std::vector<std::tuple<std::int64_t, graph::vid, graph::vid>> edges;
  edges.reserve(overlap.size());
  for (const auto& [key, count] : overlap)
    edges.push_back({count, key.first, key.second});
  std::sort(edges.begin(), edges.end(), [](const auto& a, const auto& b) {
    if (std::get<0>(a) != std::get<0>(b)) return std::get<0>(a) > std::get<0>(b);
    return std::tie(std::get<1>(a), std::get<2>(a)) <
           std::tie(std::get<1>(b), std::get<2>(b));  // deterministic ties
  });

  std::vector<graph::vid> new_label(static_cast<std::size_t>(k), -1);
  std::vector<bool> taken(static_cast<std::size_t>(k), false);
  for (const auto& [count, np, op] : edges) {
    (void)count;
    if (new_label[static_cast<std::size_t>(np)] != -1 ||
        taken[static_cast<std::size_t>(op)])
      continue;
    new_label[static_cast<std::size_t>(np)] = op;
    taken[static_cast<std::size_t>(op)] = true;
  }
  // Parts with no overlap at all get the leftover labels.
  graph::vid spare = 0;
  for (graph::vid np = 0; np < k; ++np) {
    if (new_label[static_cast<std::size_t>(np)] != -1) continue;
    while (taken[static_cast<std::size_t>(spare)]) ++spare;
    new_label[static_cast<std::size_t>(np)] = spare;
    taken[static_cast<std::size_t>(spare)] = true;
  }
  for (auto& label : target.part_of)
    label = new_label[static_cast<std::size_t>(label)];
}

migration_stats migration_between(const partition::partition& from,
                                  const partition::partition& to,
                                  std::span<const graph::weight> weights) {
  SFP_REQUIRE(from.part_of.size() == to.part_of.size(),
              "partitions must cover the same element set");
  SFP_REQUIRE(!from.part_of.empty(), "partitions must not be empty");
  SFP_REQUIRE(weights.empty() || weights.size() == from.part_of.size(),
              "weights must be empty or one per element");
  migration_stats stats;
  for (std::size_t v = 0; v < from.part_of.size(); ++v) {
    if (from.part_of[v] != to.part_of[v]) {
      ++stats.moved_elements;
      stats.moved_weight += weights.empty() ? 1 : weights[v];
    }
  }
  stats.moved_fraction = static_cast<double>(stats.moved_elements) /
                         static_cast<double>(from.part_of.size());
  return stats;
}

partition::partition rebalance(const cube_curve& curve,
                               const partition::partition& current,
                               std::span<const graph::weight> new_weights,
                               int nparts, migration_stats* stats) {
  SFP_REQUIRE(current.part_of.size() == curve.order.size(),
              "current partition must cover the curve's elements");
  partition::partition next = sfc_partition(curve, nparts, new_weights);
  if (nparts == current.num_parts) remap_to_maximize_overlap(current, next);
  if (stats) *stats = migration_between(current, next, new_weights);
  return next;
}

}  // namespace sfp::core
