#include "core/sfc_partition.hpp"

#include <algorithm>

#include "core/validate.hpp"
#include "obs/obs.hpp"
#include "util/contract.hpp"
#include "util/safe_int.hpp"

namespace sfp::core {

partition::partition partition_from_order(std::span<const int> order,
                                          std::span<const graph::weight> weights,
                                          int nparts) {
  SFP_TRACE_SCOPE_CAT("core.sfc_partition", "core");
  {
    // Cheap always-on accounting (one relaxed add; handle resolved once) —
    // this runs inside bench hot loops, so no timed scope here.
    static obs::counter& calls =
        obs::registry::global().get_counter("core.sfc_partition.calls");
    calls.inc();
  }
  SFP_REQUIRE(!order.empty(), "cannot partition an empty order");
  SFP_REQUIRE(nparts >= 1, "need at least one part");
  SFP_REQUIRE(static_cast<std::size_t>(nparts) <= order.size(),
              "more parts than vertices");
  SFP_REQUIRE(weights.empty() || weights.size() == order.size(),
              "weights must be empty or one per vertex");

  graph::weight total = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const graph::weight w =
        weights.empty() ? 1 : weights[static_cast<std::size_t>(order[i])];
    SFP_REQUIRE(w > 0, "vertex weights must be positive");
    total += w;
  }

  partition::partition p;
  p.num_parts = nparts;
  p.part_of.assign(order.size(), 0);

  // Midpoint rule along the curve: element covering weight interval
  // [before, before+w) goes to floor((before + w/2) * nparts / total).
  graph::weight before = 0;
  std::vector<graph::vid> label_at(order.size());  // by curve position
  for (std::size_t i = 0; i < order.size(); ++i) {
    const graph::weight w =
        weights.empty() ? 1 : weights[static_cast<std::size_t>(order[i])];
    // 2*midpoint*nparts / (2*total) in integer arithmetic.
    const auto num = checked_mul(checked_add(checked_add(before, before), w),
                                 nparts);
    auto label = static_cast<graph::vid>(num / (2 * total));
    label = std::min<graph::vid>(label, nparts - 1);
    label_at[i] = label;
    before += w;
  }

  // Repair: the midpoint rule can skip a part when one heavy vertex spans
  // several ideal segments. Clamp each label into
  //   [max(prev, nparts - (n - i)),  min(prev + 1, nparts - 1)]
  // — never decreasing, never jumping by more than one (which would skip a
  // part), and never falling so far behind that the remaining positions
  // cannot cover the remaining parts. The interval is always non-empty by
  // induction (prev >= nparts - (n - i) - 1), and with unit weights the
  // clamp never fires, so exact equal-count slicing is preserved.
  graph::vid prev = 0;  // label_at[0] is forced to 0 by the bounds below
  const auto n = static_cast<graph::vid>(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    const auto pos = static_cast<graph::vid>(i);
    const graph::vid lo =
        std::max(prev, static_cast<graph::vid>(nparts) - (n - pos));
    const graph::vid hi = std::min<graph::vid>(
        (i == 0) ? 0 : prev + 1, static_cast<graph::vid>(nparts) - 1);
    label_at[i] = std::clamp(label_at[i], std::min(lo, hi), hi);
    prev = label_at[i];
  }

  for (std::size_t i = 0; i < order.size(); ++i)
    p.part_of[static_cast<std::size_t>(order[i])] = label_at[i];
  // Audit tier: the sliced plan must own every element exactly once, in
  // contiguous curve segments, within the weighted-segment bound.
  SFP_AUDIT_DIAG(validate_plan(p, order, weights));
  return p;
}

partition::partition partition_from_order(std::span<const int> order,
                                          int nparts) {
  return partition_from_order(order, {}, nparts);
}

partition::partition sfc_partition(const mesh::cubed_sphere& mesh, int nparts,
                                   sfc::nesting_order order) {
  const cube_curve curve = build_cube_curve(mesh, order);
  return sfc_partition(curve, nparts);
}

partition::partition sfc_partition(const cube_curve& curve, int nparts,
                                   std::span<const graph::weight> weights) {
  return partition_from_order(curve.order, weights, nparts);
}

bool sfc_supports(int ne) { return ne == 1 || sfc::is_sfc_compatible(ne); }

bool sfc_supports_extended(int ne) {
  return ne == 1 || sfc::is_sfc_compatible_extended(ne);
}

std::vector<int> equal_load_nprocs(int ne) {
  SFP_REQUIRE(ne >= 1, "Ne must be positive");
  const int k = 6 * ne * ne;
  std::vector<int> out;
  for (int p = 1; p <= k; ++p)
    if (k % p == 0) out.push_back(p);
  return out;
}

}  // namespace sfp::core
