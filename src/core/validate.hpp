#pragma once
// Deep validation of curve-sliced partition plans — the invariants the
// paper's load-balance argument rests on, as a structured diagnostic.
//
// Invariant slugs are stable:
//
//   plan.size                partition size != traversal length
//   plan.label-range         a label is outside [0, num_parts)
//   plan.ownership           order is not a permutation / an element is not
//                            owned exactly once
//   plan.part-empty          a part received no elements
//   plan.segment-contiguity  a part's elements are not one contiguous curve
//                            segment
//   plan.balance             a part exceeds the weighted-segment bound
//                            slack · (W/nparts + w_max) — or, for unit
//                            weights at slack 1, exact ⌊K/n⌋/⌈K/n⌉ balance

#include <span>

#include "core/cube_curve.hpp"
#include "partition/partition.hpp"  // lint: layering-ok — partition::partition is the shared result type core produces; type-only edge, no mgp machinery
#include "util/contract.hpp"

namespace sfp::core {

/// Audit a plan against the traversal it was sliced from. `weights` is per
/// element id (empty = unit weights). `balance_slack` scales the per-part
/// weight bound; pass 1.0 for freshly sliced plans and 1.5 for recovery
/// plans, whose absorbing neighbours legitimately run up to 1.5x load; a
/// slack <= 0 skips the balance check entirely (structure-only audit).
/// O(K).
diagnostic validate_plan(const partition::partition& p,
                         std::span<const int> order,
                         std::span<const graph::weight> weights = {},
                         double balance_slack = 1.0);

/// Convenience overload against a stitched cube curve.
diagnostic validate_plan(const partition::partition& p,
                         const cube_curve& curve,
                         std::span<const graph::weight> weights = {},
                         double balance_slack = 1.0);

}  // namespace sfp::core
