#pragma once
// Stitching the six per-face curves into a single continuous space-filling
// curve over the whole cubed-sphere (paper Section 3, Figure 6).
//
// A face curve (our convention) enters at one corner cell and exits at an
// adjacent corner cell, so each face can act as a "corner turn" or a
// "pass-through" between its neighbours. The stitcher walks a Hamiltonian
// cycle over the cube's face-adjacency graph and picks one of the eight
// dihedral orientations per face so that every face's exit element is
// surface-adjacent — across the shared cube edge — to the next face's entry
// element. The search is validated against the mesh's own neighbour
// relation, so a returned stitching is correct by construction; closed
// stitchings (the curve re-enters the first face at its entry cell) are
// preferred when they exist.

#include <array>
#include <cstdint>
#include <vector>

#include "mesh/cubed_sphere.hpp"
#include "sfc/curve.hpp"
#include "sfc/transform.hpp"

namespace sfp::core {

/// The stitched curve's metadata without the materialized traversal: the
/// per-face schedule plus the face cycle and orientations the stitch search
/// chose. Together with sfc::curve_position this determines any element's
/// position along the global curve in O(1) memory — the shared "schedule"
/// every rank of the distributed partitioner derives its SFC keys from.
struct cube_curve_spec {
  sfc::schedule face_schedule;              ///< per-face refinement schedule
  std::array<int, 6> face_order{};          ///< faces in visit order
  std::array<sfc::dihedral, 6> orientation{};  ///< per face (indexed by face id)
  bool closed = false;  ///< last element is surface-adjacent to the first
};

/// A continuous traversal of all K = 6·Ne² elements of the cubed-sphere.
struct cube_curve {
  sfc::schedule face_schedule;              ///< per-face refinement schedule
  std::array<int, 6> face_order{};          ///< faces in visit order
  std::array<sfc::dihedral, 6> orientation{};  ///< per face (indexed by face id)
  bool closed = false;  ///< last element is surface-adjacent to the first
  std::vector<int> order;  ///< element ids in traversal order, size K
};

/// The metadata view of an already-built curve.
cube_curve_spec spec_of(const cube_curve& curve);

/// Run the stitch search only — same face cycle, orientations and closure
/// as build_cube_curve, but without materializing the O(K) order. The
/// search touches only corner elements, so this is cheap enough for every
/// rank of a distributed run to call independently and deterministically.
cube_curve_spec build_cube_curve_spec(const mesh::cubed_sphere& mesh,
                                      const sfc::schedule& face_schedule);
cube_curve_spec build_cube_curve_spec(
    const mesh::cubed_sphere& mesh,
    sfc::nesting_order order = sfc::nesting_order::peano_first);

/// Position of one element along the curve `spec` describes (its SFC key):
/// the face's block offset in the visit order plus the in-face point query
/// through the face's inverse orientation. O(schedule depth) per element;
/// agrees with the materialized curve:
///   curve_position_of(spec_of(c), mesh, c.order[i]) == i.
std::int64_t curve_position_of(const cube_curve_spec& spec,
                               const mesh::cubed_sphere& mesh, int element);

/// Build the global curve for `mesh` using `face_schedule` (whose side must
/// equal mesh.ne()). Throws sfp::contract_error if Ne is not SFC-compatible
/// or if no stitching exists (the latter would indicate a broken generator —
/// the constructive search over all face cycles and orientations is
/// exhaustive).
cube_curve build_cube_curve(const mesh::cubed_sphere& mesh,
                            const sfc::schedule& face_schedule);

/// Convenience: derive the schedule from mesh.ne() with the given nesting
/// order (paper default: m-Peano refinements first).
cube_curve build_cube_curve(
    const mesh::cubed_sphere& mesh,
    sfc::nesting_order order = sfc::nesting_order::peano_first);

/// Extension beyond the paper: admit 5-fold "Cinco" levels too, covering
/// Ne = 2^n·3^m·5^p (e.g. Ne = 10, 15, 20, 30 — the factor set NCAR's HOMME
/// eventually supported). Falls back to the paper's schedule when Ne has no
/// factor of 5.
cube_curve build_cube_curve_extended(const mesh::cubed_sphere& mesh);

/// Check that `order` is a continuous traversal: every element exactly once,
/// consecutive elements surface-adjacent (sharing an edge). Returns true and
/// leaves `error` empty on success.
bool verify_cube_curve(const mesh::cubed_sphere& mesh,
                       const std::vector<int>& order, std::string* error);

}  // namespace sfp::core
