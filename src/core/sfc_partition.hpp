#pragma once
// The SFC partitioning algorithm (paper Section 3): slice the global
// cubed-sphere curve into Nproc contiguous, (weight-)balanced segments.

#include <span>
#include <vector>

#include "core/cube_curve.hpp"
#include "mesh/cubed_sphere.hpp"
#include "partition/partition.hpp"  // lint: layering-ok — partition::partition is the shared result type core produces; type-only edge, no mgp machinery

namespace sfp::core {

/// Slice a traversal order into `nparts` contiguous segments balanced by the
/// given per-vertex weights (the paper's "subdivided into equal sized
/// segments"). Uses the midpoint rule: a vertex whose weight interval's
/// midpoint falls in the p-th fraction of total weight goes to part p; for
/// unit weights and nparts | K this yields exactly K/nparts per part. A
/// repair pass guarantees no part is empty whenever nparts <= #vertices.
partition::partition partition_from_order(std::span<const int> order,
                                          std::span<const graph::weight> weights,
                                          int nparts);

/// Equal-count slicing (unit weights).
partition::partition partition_from_order(std::span<const int> order,
                                          int nparts);

/// Full SFC partitioning of the cubed-sphere: build (or reuse) the global
/// curve and slice it. Requires mesh.ne() to be 2^n·3^m.
partition::partition sfc_partition(
    const mesh::cubed_sphere& mesh, int nparts,
    sfc::nesting_order order = sfc::nesting_order::peano_first);

/// As above with an already-built curve (avoids re-stitching in sweeps) and
/// optional per-element weights (empty span = unit weights).
partition::partition sfc_partition(const cube_curve& curve, int nparts,
                                   std::span<const graph::weight> weights = {});

/// The paper's restriction: the SFC approach requires Ne = 2^n·3^m. Nproc is
/// unrestricted, but perfect balance (LB = 0) needs Nproc to divide K.
bool sfc_supports(int ne);

/// Extended factor set with the synthesized Cinco generator: Ne = 2^n·3^m·5^p.
bool sfc_supports_extended(int ne);

/// All processor counts that divide K = 6·Ne² (the counts the paper's
/// experiments use so that "an equal number of spectral elements are
/// allocated to each processor"), in increasing order.
std::vector<int> equal_load_nprocs(int ne);

}  // namespace sfp::core
