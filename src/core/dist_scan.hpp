#pragma once
// Distributed-scan primitive: the tiny message-passing surface and the
// integer-exact collectives the parallel partitioner is written against.
//
// Layering: core sits below runtime, so the distributed algorithms cannot
// see runtime::transport. Instead core defines this minimal peer interface
// (dependency inversion) and runtime provides the adapter that carries it
// over a reliable channel on any transport backend — in-process mailboxes
// or loopback TCP — without the algorithm changing a line
// (runtime/partition_fabric.hpp).
//
// All collectives are deterministic and integer-exact: payloads are int64
// words, reductions are rank-ordered sums gathered at rank 0 and broadcast
// back, so every rank computes bit-identical results regardless of thread
// scheduling or backend. That determinism is what lets the parallel slicer
// promise bit-identical plans to the serial one.

#include <cstdint>
#include <span>
#include <vector>

namespace sfp::core {

/// One rank's view of the peer group: ordered, reliable, blocking delivery
/// of int64 records between ranks. Implementations heal transport faults
/// underneath (see runtime/reliable.hpp); by the time a message surfaces
/// here it is exactly-once and in order per (src, dst) stream.
class peer_comm {
 public:
  virtual ~peer_comm();
  peer_comm(const peer_comm&) = delete;
  peer_comm& operator=(const peer_comm&) = delete;

  virtual int rank() const = 0;
  virtual int size() const = 0;

  /// Queue `words` for delivery to `dst`. Asynchronous; the matching recv
  /// on the peer returns exactly this payload.
  virtual void send(int dst, std::span<const std::int64_t> words) = 0;

  /// Block until the next message from `src` arrives and return it.
  virtual std::vector<std::int64_t> recv(int src) = 0;

 protected:
  peer_comm() = default;
};

/// The one-rank group: rank 0 of 1, no peers. Lets every distributed
/// algorithm in this module run serially (unit tests, P=1 bench points)
/// with the identical code path. send/recv are contract errors.
class solo_comm final : public peer_comm {
 public:
  solo_comm() = default;
  int rank() const override { return 0; }
  int size() const override { return 1; }
  void send(int dst, std::span<const std::int64_t> words) override;
  std::vector<std::int64_t> recv(int src) override;
};

/// Sum of every rank's `value`, identical on all ranks. Rank-ordered
/// gather + broadcast: exact for int64 (associativity is free).
std::int64_t allreduce_sum(peer_comm& comm, std::int64_t value);

/// Elementwise-summed vector reduction, in place, identical on all ranks.
/// Every rank must pass the same number of words.
void allreduce_sum(peer_comm& comm, std::span<std::int64_t> inout);

/// Exclusive weighted scan across ranks: rank r receives the sum of every
/// lower rank's `value` (rank 0 receives 0) — the prefix offset a rank's
/// local weight total occupies in the global cumulative order.
std::int64_t exscan_sum(peer_comm& comm, std::int64_t value);

/// Concatenation of every rank's `words` in rank order, identical on all
/// ranks. Ranks may contribute different lengths, including zero — the
/// empty-rank case (K < P) contributes nothing and still participates.
std::vector<std::int64_t> allgather_concat(peer_comm& comm,
                                           std::span<const std::int64_t> words);

}  // namespace sfp::core
