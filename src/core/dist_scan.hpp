#pragma once
// Distributed-scan primitive: the tiny message-passing surface and the
// integer-exact collectives the parallel partitioner is written against.
//
// Layering: core sits below runtime, so the distributed algorithms cannot
// see runtime::transport. Instead core defines this minimal peer interface
// (dependency inversion) and runtime provides the adapter that carries it
// over a reliable channel on any transport backend — in-process mailboxes
// or loopback TCP — without the algorithm changing a line
// (runtime/partition_fabric.hpp).
//
// All collectives are deterministic and integer-exact: payloads are int64
// words, reductions are rank-ordered sums gathered at rank 0 and broadcast
// back, so every rank computes bit-identical results regardless of thread
// scheduling or backend. That determinism is what lets the parallel slicer
// promise bit-identical plans to the serial one.

#include <cstdint>
#include <map>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace sfp::core {

/// One rank's view of the peer group: ordered, reliable, blocking delivery
/// of int64 records between ranks. Implementations heal transport faults
/// underneath (see runtime/reliable.hpp); by the time a message surfaces
/// here it is exactly-once and in order per (src, dst) stream.
class peer_comm {
 public:
  virtual ~peer_comm();
  peer_comm(const peer_comm&) = delete;
  peer_comm& operator=(const peer_comm&) = delete;

  virtual int rank() const = 0;
  virtual int size() const = 0;

  /// Queue `words` for delivery to `dst`. Asynchronous; the matching recv
  /// on the peer returns exactly this payload.
  virtual void send(int dst, std::span<const std::int64_t> words) = 0;

  /// Block until the next message from `src` arrives and return it.
  /// Fault-tolerant implementations throw peer_lost instead of hanging when
  /// a peer stays silent past their detection budget.
  virtual std::vector<std::int64_t> recv(int src) = 0;

  /// Hint that `peer` is presumed dead: release any delivery state held for
  /// it (unacknowledged sends, parked frames) so its corpse stops tripping
  /// the transport's failure machinery. Default: nothing to release.
  virtual void forget_peer(int peer) { (void)peer; }

 protected:
  peer_comm() = default;
};

/// The one-rank group: rank 0 of 1, no peers. Lets every distributed
/// algorithm in this module run serially (unit tests, P=1 bench points)
/// with the identical code path. send/recv are contract errors.
class solo_comm final : public peer_comm {
 public:
  solo_comm() = default;
  int rank() const override { return 0; }
  int size() const override { return 1; }
  void send(int dst, std::span<const std::int64_t> words) override;
  std::vector<std::int64_t> recv(int src) override;
};

/// Sum of every rank's `value`, identical on all ranks. Rank-ordered
/// gather + broadcast: exact for int64 (associativity is free).
std::int64_t allreduce_sum(peer_comm& comm, std::int64_t value);

/// Elementwise-summed vector reduction, in place, identical on all ranks.
/// Every rank must pass the same number of words.
void allreduce_sum(peer_comm& comm, std::span<std::int64_t> inout);

/// Exclusive weighted scan across ranks: rank r receives the sum of every
/// lower rank's `value` (rank 0 receives 0) — the prefix offset a rank's
/// local weight total occupies in the global cumulative order.
std::int64_t exscan_sum(peer_comm& comm, std::int64_t value);

/// Concatenation of every rank's `words` in rank order, identical on all
/// ranks. Ranks may contribute different lengths, including zero — the
/// empty-rank case (K < P) contributes nothing and still participates.
std::vector<std::int64_t> allgather_concat(peer_comm& comm,
                                           std::span<const std::int64_t> words);

// ---------------------------------------------------------------------------
// Survivor regroup: group reconfiguration over peer_comm.
//
// The collectives above are strictly rank-0-rooted stars, which makes a
// deterministic agreement round cheap: the root can reach every leaf and
// every leaf talks only to the root, so a death is always detected by a rank
// that can coordinate (the root) or by ranks that all converge on the same
// successor (the lowest surviving rank). regroup_comm layers that protocol
// over any peer_comm: it frames every payload with a (group epoch, kind)
// prefix, drops stale-epoch frames — mirroring the socket transport's
// reconnect epoch handshake — and on a peer_lost runs the agreement round,
// bumps the epoch, and throws group_reconfigured so the caller can restart
// its collective algorithm from scratch over the shrunken group.
//
// Assumptions (documented in docs/parallel_partition.md): fail-stop ranks
// (a dead rank is silent forever, never Byzantine) and accurate suspicion —
// the base comm's detection timeout, times the patience budget here, must
// exceed the longest genuine silent gap of a live peer. A false suspicion
// degrades to eviction of a live rank (and possibly quorum abort), never to
// a hang or a wrong plan.

/// Thrown by a fault-tolerant peer_comm when `peer` is presumed dead.
/// `definite` distinguishes delivery-level proof (retransmit budget
/// exhausted on traffic addressed to the peer) from a bare recv timeout,
/// which regroup_comm retries against its patience budget first.
class peer_lost : public std::runtime_error {
 public:
  peer_lost(int peer, bool definite);
  int peer() const { return peer_; }
  bool definite() const { return definite_; }

 private:
  int peer_;
  bool definite_;
};

/// Thrown when the surviving group can no longer carry the computation:
/// fewer than regroup_options::min_members survivors, every peer suspected
/// dead, or this rank was evicted from the group by the coordinator.
class quorum_lost : public std::runtime_error {
 public:
  explicit quorum_lost(const std::string& why);
};

/// One rank's view of the surviving group. Members are world ranks (the
/// numbering of the original, full group), ascending; the epoch counts
/// reconfigurations and stamps every frame so stragglers from a previous
/// group incarnation are dropped on receipt.
struct group_view {
  std::uint64_t epoch = 0;
  std::vector<int> members;
};

/// Thrown out of regroup_comm operations after a successful agreement
/// round: the group has a new epoch and member list, and the caller must
/// restart its collective computation from scratch over it. Deterministic
/// restart preserves result parity when every input is a pure function of
/// the problem spec (see parallel_partition.hpp).
class group_reconfigured : public std::runtime_error {
 public:
  group_reconfigured(group_view view, int victim, int old_size);
  const group_view& view() const { return view_; }
  /// Lowest world rank dropped by this reconfiguration (for escalation).
  int victim() const { return victim_; }
  /// Member count before the reconfiguration (for escalation policy).
  int old_size() const { return old_size_; }

 private:
  group_view view_;
  int victim_;
  int old_size_;
};

/// Tuning for the regroup layer.
struct regroup_options {
  /// Minimum surviving group size; below it quorum_lost is thrown.
  int min_members = 2;
  /// How many consecutive base-comm recv timeouts a data wait tolerates
  /// before suspecting the peer dead. 0 = auto: group size + 3, so a peer
  /// that is merely slow (e.g. itself waiting out a corpse) is not
  /// mistaken for one. Definite losses bypass the budget entirely.
  int patience_rounds = 0;
};

/// Robustness accounting for one regroup_comm.
struct regroup_stats {
  std::int64_t stale_dropped = 0;    ///< frames from a previous group epoch
  std::int64_t aborted_data_dropped = 0;  ///< same-epoch frames of a phase a regroup interrupted
  std::int64_t reports_sent = 0;     ///< follower suspicion reports
  std::int64_t agreement_rounds = 0; ///< coordinator-candidate walks entered
};

/// Group-reconfiguration layer over a base peer_comm. Presents *dense*
/// survivor indexing: rank()/size() and the dst/src arguments of
/// send()/recv() are indices into view().members, so dense rank 0 is always
/// the lowest surviving world rank — rank-0 succession falls out of the
/// rank-0-rooted collectives above with no change to them.
class regroup_comm final : public peer_comm {
 public:
  /// `base` speaks world ranks over the full original group and must
  /// outlive this object. Detection relies on base.recv throwing peer_lost
  /// after a bounded wait; a base comm that waits forever disables regroup.
  explicit regroup_comm(peer_comm& base, regroup_options opts = {});

  int rank() const override;  ///< dense index of this rank among survivors
  int size() const override;  ///< survivor count
  void send(int dst, std::span<const std::int64_t> words) override;
  std::vector<std::int64_t> recv(int src) override;
  void forget_peer(int peer) override;

  const group_view& view() const { return view_; }
  const regroup_stats& stats() const { return stats_; }
  /// True while no rank has been dropped (epoch 0, full membership).
  bool group_intact() const;
  /// Reconfigurations this rank has adopted.
  int recoveries() const { return recoveries_; }

  /// Rooted pumping barrier over the current view. Unlike a fixed-topology
  /// fence over the full original group, this stays correct after deaths;
  /// deaths during the barrier regroup exactly like data-phase deaths.
  void barrier();

  /// External death report (e.g. a delivery failure surfaced outside
  /// recv): enters the agreement round immediately, throwing
  /// group_reconfigured or quorum_lost. Returns normally only when the
  /// peer is already outside the group (a stale corpse signal) — the
  /// base comm is told to forget it and the caller may carry on.
  void notify_peer_lost(int world_peer);

 private:
  /// Wire kinds inside the [epoch, kind] frame prefix.
  enum : std::int64_t {
    frame_data = 1,
    frame_report = 2,
    frame_newgroup = 3,
    frame_barrier = 4,
  };

  int world_of(int dense) const;
  int dense_of_self() const;
  int patience() const;
  bool is_member(int world_rank) const;

  /// Blocking framed receive from a *world* rank: filters stale epochs,
  /// stashes suspicion reports, adopts NEWGROUP frames (throwing
  /// group_reconfigured), and converts silence past the patience budget
  /// into an agreement round. Returns the frame including its prefix.
  /// With regroup_on_silence=false (used while an agreement round is
  /// already underway) exhausted patience throws peer_lost to the caller
  /// instead of recursing into begin_regroup.
  std::vector<std::int64_t> recv_framed(int world_src, std::int64_t want,
                                        int patience_rounds,
                                        bool regroup_on_silence = true);

  [[noreturn]] void begin_regroup(int first_suspect);
  [[noreturn]] void coordinate(std::vector<int> suspects);
  /// Install `next` (minted locally or received) and unwind the caller.
  /// The victim reported on group_reconfigured is computed here as the
  /// lowest member of the outgoing view absent from `next`.
  [[noreturn]] void adopt_and_throw(group_view next);
  void send_report(int world_dst, const std::vector<int>& suspects);
  void send_newgroup(int world_dst, const group_view& v);
  void suspect(std::vector<int>& suspects, int world_rank) const;

  peer_comm* base_;
  regroup_options opts_;
  group_view view_;
  int self_world_;
  int recoveries_ = 0;
  regroup_stats stats_;
  /// Latest suspicion report per world src: (epoch, members, suspects).
  struct stashed_report {
    std::uint64_t epoch = 0;
    std::vector<int> members;
    std::vector<int> suspects;
  };
  std::map<int, stashed_report> pending_reports_;
};

}  // namespace sfp::core
