#include "core/parallel_partition.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "obs/obs.hpp"
#include "util/contract.hpp"
#include "util/safe_int.hpp"

namespace sfp::core {

namespace {

/// Local exclusive-prefix view of this rank's (key, weight) pairs, sorted
/// by key: weight_below(x) answers "how much of my weight sits at keys
/// < x" in O(log) — the quantity the histogram probes sum across ranks.
struct sorted_block {
  std::vector<std::int64_t> keys;         ///< ascending
  std::vector<graph::weight> weights;     ///< matching keys
  std::vector<graph::weight> prefix;      ///< size keys.size()+1, prefix[i] = Σ weights[0..i)

  graph::weight weight_below(std::int64_t x) const {
    const auto it = std::lower_bound(keys.begin(), keys.end(), x);
    return prefix[static_cast<std::size_t>(it - keys.begin())];
  }
};

/// One splitter's bracket during refinement: raw cut r_p is known to lie
/// in [lo, hi], with s_at_lo = S(lo) already established (S(0) = 0).
struct bracket {
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  graph::weight s_at_lo = 0;
};

/// The integer-exact dichotomy that brackets the serial midpoint rule's
/// cut — the first position i with M(i)·nparts >= 2·p·total, where
/// M(i) = 2·S(i)+w(i) — using only prefix sums at probe positions:
///
///   S(x)·nparts >= p·total  =>  M(x) >= 2·S(x) puts x itself at or above
///                               the threshold, so the cut is <= x;
///   S(x)·nparts <  p·total  =>  every i < x has M(i) = S(i)+S(i+1)
///                               <= 2·S(x), strictly below, so the cut
///                               is >= x.
///
/// Exactly one side holds at every probe, so each probe narrows its
/// bracket; both directions are valid for any non-negative weights (the
/// individual w(x) stays unknown until the exact pass).
bool cut_is_at_or_before(graph::weight s_at_probe, int nparts,
                         std::int64_t p, graph::weight total) {
  return checked_mul(s_at_probe, nparts) >= checked_mul(p, total);
}

}  // namespace

std::int64_t element_block_begin(std::int64_t num_elements, int num_ranks,
                                 int rank) {
  SFP_REQUIRE(num_ranks >= 1, "need at least one rank");
  SFP_REQUIRE(rank >= 0 && rank <= num_ranks, "rank out of range");
  SFP_REQUIRE(num_elements >= 0, "element count must be non-negative");
  const std::int64_t base = num_elements / num_ranks;
  const std::int64_t extra = num_elements % num_ranks;
  return base * rank + std::min<std::int64_t>(rank, extra);
}

std::vector<std::int64_t> repair_boundaries(std::span<const std::int64_t> raw,
                                            std::int64_t num_elements,
                                            int nparts) {
  SFP_REQUIRE(nparts >= 1, "need at least one part");
  SFP_REQUIRE(raw.size() == static_cast<std::size_t>(nparts) - 1,
              "one raw cut per interior part boundary");
  SFP_REQUIRE(nparts <= num_elements, "more parts than elements");
  std::vector<std::int64_t> b(raw.size());
  std::int64_t prev = 0;  // b_0: part 0 always starts the curve
  for (std::int64_t p = 1; p < nparts; ++p) {
    const std::int64_t forced = num_elements - nparts + p;
    const std::int64_t want =
        std::max(raw[static_cast<std::size_t>(p - 1)], prev + 1);
    prev = std::min(want, forced);
    b[static_cast<std::size_t>(p - 1)] = prev;
  }
  return b;
}

std::vector<std::int64_t> find_raw_splitters(
    peer_comm& comm, std::span<const std::int64_t> sorted_keys,
    std::span<const graph::weight> sorted_weights, std::int64_t num_elements,
    graph::weight total_weight, int nparts,
    const parallel_partition_options& opts,
    parallel_partition_stats* stats) {
  SFP_TRACE_SCOPE_CAT("core.parallel_partition.splitters", "core");
  SFP_REQUIRE(nparts >= 1, "need at least one part");
  SFP_REQUIRE(sorted_keys.size() == sorted_weights.size(),
              "one weight per key");
  SFP_REQUIRE(opts.histogram_fanout >= 2, "histogram fanout must be >= 2");
  SFP_REQUIRE(opts.window_elements >= 1, "window must hold >= 1 element");
  SFP_REQUIRE(total_weight >= 0, "total weight must be non-negative");

  const std::int64_t n = num_elements;
  std::vector<std::int64_t> result(static_cast<std::size_t>(nparts) - 1, n);
  if (nparts == 1) return result;

  sorted_block block;
  block.keys.assign(sorted_keys.begin(), sorted_keys.end());
  block.weights.assign(sorted_weights.begin(), sorted_weights.end());
  block.prefix.resize(block.keys.size() + 1);
  block.prefix[0] = 0;
  for (std::size_t i = 0; i < block.keys.size(); ++i) {
    SFP_REQUIRE(i == 0 || block.keys[i] > block.keys[i - 1],
                "local keys must be sorted and distinct");
    block.prefix[i + 1] = block.prefix[i] + block.weights[i];
  }

  // Every rank holds the same bracket state and narrows it from the same
  // globally-reduced prefix sums, so the refinement runs in lockstep with
  // no coordination beyond the reductions themselves.
  std::vector<bracket> brackets(static_cast<std::size_t>(nparts) - 1);
  for (auto& br : brackets) br.hi = n;  // n = "no qualifying position"

  const auto width_of = [](const bracket& br) { return br.hi - br.lo; };
  const std::int64_t window = opts.window_elements;
  int rounds = 0;
  std::int64_t probes_total = 0;

  for (;;) {
    // Collect this round's probe positions over all still-wide brackets.
    std::vector<std::int64_t> probes;
    for (const bracket& br : brackets) {
      if (width_of(br) <= window) continue;
      const std::int64_t width = width_of(br);
      for (int j = 1; j < opts.histogram_fanout; ++j) {
        const std::int64_t x =
            br.lo + (width * j) / opts.histogram_fanout;
        if (x > br.lo && x < br.hi) probes.push_back(x);
      }
    }
    std::sort(probes.begin(), probes.end());
    probes.erase(std::unique(probes.begin(), probes.end()), probes.end());
    if (probes.empty()) break;

    // One vector reduction gives S at every probe on every rank.
    std::vector<std::int64_t> sums(probes.size());
    for (std::size_t i = 0; i < probes.size(); ++i)
      sums[i] = block.weight_below(probes[i]);
    allreduce_sum(comm, sums);
    ++rounds;
    probes_total += static_cast<std::int64_t>(probes.size());

    for (std::size_t pi = 0; pi < brackets.size(); ++pi) {
      bracket& br = brackets[pi];
      if (width_of(br) <= window) continue;
      const std::int64_t p = static_cast<std::int64_t>(pi) + 1;
      for (std::size_t i = 0; i < probes.size(); ++i) {
        const std::int64_t x = probes[i];
        if (x <= br.lo || x >= br.hi) continue;
        if (cut_is_at_or_before(sums[i], nparts, p, total_weight)) {
          br.hi = x;
        } else {
          br.lo = x;
          br.s_at_lo = sums[i];
        }
      }
    }
    SFP_ASSERT(rounds <= 64, "histogram refinement failed to converge");
  }

  // Exact pass: the surviving candidate positions are few, so exchange the
  // actual (key, weight) records inside every bracket and replay the
  // serial threshold scan on them. Brackets can overlap, so gather over
  // the merged ranges once.
  std::vector<std::pair<std::int64_t, std::int64_t>> ranges;
  for (const bracket& br : brackets) {
    const std::int64_t first = br.lo;
    const std::int64_t last = std::min(br.hi, n - 1);  // n is a sentinel
    if (first <= last) ranges.emplace_back(first, last + 1);
  }
  std::sort(ranges.begin(), ranges.end());
  std::vector<std::pair<std::int64_t, std::int64_t>> merged;
  for (const auto& r : ranges) {
    if (!merged.empty() && r.first <= merged.back().second)
      merged.back().second = std::max(merged.back().second, r.second);
    else
      merged.push_back(r);
  }

  std::vector<std::int64_t> mine;  // flattened (key, weight) records
  for (const auto& [first, last] : merged) {
    const auto begin_it =
        std::lower_bound(block.keys.begin(), block.keys.end(), first);
    const auto end_it =
        std::lower_bound(block.keys.begin(), block.keys.end(), last);
    for (auto it = begin_it; it != end_it; ++it) {
      const auto i = static_cast<std::size_t>(it - block.keys.begin());
      mine.push_back(block.keys[i]);
      mine.push_back(block.weights[i]);
    }
  }
  std::vector<std::int64_t> records = allgather_concat(comm, mine);
  SFP_ASSERT(records.size() % 2 == 0, "window records must be pairs");
  std::vector<std::pair<std::int64_t, graph::weight>> window_elems;
  window_elems.reserve(records.size() / 2);
  for (std::size_t i = 0; i < records.size(); i += 2)
    window_elems.emplace_back(records[i], records[i + 1]);
  std::sort(window_elems.begin(), window_elems.end());

  for (std::size_t pi = 0; pi < brackets.size(); ++pi) {
    const bracket& br = brackets[pi];
    const std::int64_t p = static_cast<std::int64_t>(pi) + 1;
    std::int64_t cut = n;
    graph::weight running = br.s_at_lo;
    auto it = std::lower_bound(
        window_elems.begin(), window_elems.end(),
        std::make_pair(br.lo, std::numeric_limits<graph::weight>::min()));
    for (std::int64_t pos = br.lo; pos <= std::min(br.hi, n - 1);
         ++pos, ++it) {
      SFP_ASSERT(it != window_elems.end() && it->first == pos,
                 "window must cover every position in the bracket");
      const graph::weight w = it->second;
      const graph::weight mid2 = checked_add(checked_add(running, running), w);
      if (checked_mul(mid2, nparts) >= checked_mul(2 * p, total_weight)) {
        cut = pos;
        break;
      }
      running += w;
    }
    result[pi] = cut;
  }

  if (stats) {
    stats->rounds += rounds;
    stats->probes_evaluated += probes_total;
    stats->window_records += static_cast<std::int64_t>(window_elems.size());
  }
  {
    static obs::counter& probe_counter = obs::registry::global().get_counter(
        "core.parallel_partition.probes");
    probe_counter.add(probes_total);
  }
  return result;
}

local_partition parallel_partition_rank(
    const mesh::cubed_sphere& mesh, const cube_curve_spec& spec, int nparts,
    std::span<const graph::weight> local_weights, peer_comm& comm,
    const parallel_partition_options& opts,
    parallel_partition_stats* stats) {
  SFP_TRACE_SCOPE_CAT("core.parallel_partition", "core");
  {
    static obs::counter& calls = obs::registry::global().get_counter(
        "core.parallel_partition.rank_calls");
    calls.inc();
  }
  const auto k = static_cast<std::int64_t>(mesh.num_elements());
  SFP_REQUIRE(nparts >= 1, "need at least one part");
  SFP_REQUIRE(nparts <= k, "more parts than elements");
  SFP_REQUIRE(sfc::side_of(spec.face_schedule) == mesh.ne(),
              "curve spec side must equal mesh Ne");

  local_partition out;
  out.begin = element_block_begin(k, comm.size(), comm.rank());
  out.end = element_block_begin(k, comm.size(), comm.rank() + 1);
  const auto m = static_cast<std::size_t>(out.end - out.begin);
  SFP_REQUIRE(local_weights.empty() || local_weights.size() == m,
              "weights must be empty or one per owned element");

  // Phase 1: local SFC keys, straight from the shared spec — no global
  // traversal is ever materialized.
  std::vector<std::int64_t> keys(m);
  {
    SFP_TRACE_SCOPE_CAT("core.parallel_partition.keys", "core");
    for (std::size_t i = 0; i < m; ++i)
      keys[i] = curve_position_of(spec, mesh,
                                  static_cast<int>(out.begin) +
                                      static_cast<int>(i));
  }

  // Phase 2: sort the block by key and reduce the weight totals.
  std::vector<std::size_t> by_key(m);
  for (std::size_t i = 0; i < m; ++i) by_key[i] = i;
  std::sort(by_key.begin(), by_key.end(),
            [&](std::size_t a, std::size_t b) { return keys[a] < keys[b]; });
  std::vector<std::int64_t> sorted_keys(m);
  std::vector<graph::weight> sorted_weights(m);
  graph::weight local_total = 0;
  for (std::size_t i = 0; i < m; ++i) {
    const graph::weight w =
        local_weights.empty() ? 1 : local_weights[by_key[i]];
    SFP_REQUIRE(w > 0, "vertex weights must be positive");
    sorted_keys[i] = keys[by_key[i]];
    sorted_weights[i] = w;
    local_total += w;
  }
  const graph::weight total = allreduce_sum(comm, local_total);

  // Phase 3: weighted split points by distributed histogram refinement,
  // then the serial repair recurrence replayed on every rank.
  const std::vector<std::int64_t> raw =
      find_raw_splitters(comm, sorted_keys, sorted_weights, k, total, nparts,
                         opts, stats);
  out.boundaries = repair_boundaries(raw, k, nparts);

  // Phase 4: label the owned block against the shared boundaries.
  {
    SFP_TRACE_SCOPE_CAT("core.parallel_partition.label", "core");
    out.labels.resize(m);
    for (std::size_t i = 0; i < m; ++i) {
      const auto it = std::upper_bound(out.boundaries.begin(),
                                       out.boundaries.end(), keys[i]);
      out.labels[i] =
          static_cast<graph::vid>(it - out.boundaries.begin());
    }
  }
  if (stats) stats->local_elements += static_cast<std::int64_t>(m);
  return out;
}

}  // namespace sfp::core
