#pragma once
// Failure-escalation policy: the ladder between "a message went missing"
// and "re-slice the curve over the survivors".
//
// The runtime heals transient message faults in place (checksum + ack +
// retransmit, see runtime/reliable.hpp). When that machinery gives up it
// surfaces a typed failure; this policy decides — from the failure kind
// alone, with no knowledge of the transport — whether another recovery
// attempt is worthwhile and which rank the recovery should treat as dead:
//
//   rank_killed       -> the thrower is the corpse; recover around it.
//   peer_unreachable  -> the *peer* is presumed dead (the thrower is the
//                        healthy side that exhausted its retransmit
//                        budget); recover around the peer.
//   comm_timeout      -> a raw blocking call starved; the thrower is the
//                        rank we know least about, treat it as failed (the
//                        pre-reliable behaviour, kept for raw transports).
//   unknown           -> a logic error, not a fabric fault: never recover.
//
// Kept in core (below the runtime in the layering) so the policy is a pure
// function over plain data — the seam maps exception types to failure_kind.

namespace sfp::core {

/// How an attempt of a distributed run died, transport-agnostically.
enum class failure_kind {
  rank_killed,       ///< simulated process death inside the thrower
  comm_timeout,      ///< raw blocking call exceeded its deadline
  peer_unreachable,  ///< reliable transport exhausted retransmits to a peer
  unknown,           ///< anything else (model assertion, logic error, ...)
};

/// Outcome of the policy: whether to run another attempt, and which rank
/// the curve re-slice should drop if so.
struct escalation_decision {
  bool recover = false;
  int victim = -1;  ///< pre-failure rank id to recover around
};

/// Decide the next rung of the ladder. `thrower` is the rank whose
/// exception aborted the world, `peer` the remote side named by a
/// peer_unreachable failure (-1 otherwise). `attempt` counts completed
/// attempts (0 = the first run just failed); recovery is allowed while
/// attempt < max_recoveries and at least 2 ranks remain.
escalation_decision decide_escalation(failure_kind kind, int thrower,
                                      int peer, int attempt,
                                      int max_recoveries, int nranks);

/// The survivor-regroup rung of the ladder (retransmit → peer-dead →
/// regroup → abort): after a group reconfiguration dropped `victim` (a
/// rank id of the *original* `world_size` group), decide whether the
/// `survivors` should deterministically re-execute. Recovery is allowed
/// while the victim is a real world rank, the survivors still hold
/// `quorum`, and `attempt` < `max_recoveries` reconfigurations have been
/// absorbed. Pure, like decide_escalation.
escalation_decision decide_regroup(int victim, int survivors, int quorum,
                                   int world_size, int attempt,
                                   int max_recoveries);

}  // namespace sfp::core
