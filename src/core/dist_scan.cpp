#include "core/dist_scan.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

#include "util/contract.hpp"

namespace sfp::core {

peer_comm::~peer_comm() = default;

void solo_comm::send(int dst, std::span<const std::int64_t> words) {
  (void)words;
  SFP_REQUIRE(false, "solo_comm has no peers to send to");
  (void)dst;
}

std::vector<std::int64_t> solo_comm::recv(int src) {
  SFP_REQUIRE(false, "solo_comm has no peers to receive from");
  (void)src;
  return {};
}

namespace {

/// Rank-ordered gather to rank 0, elementwise sum there, broadcast back.
/// Every rank leaves with the identical sum vector in `inout`. The flat
/// fan-in/fan-out is O(P) messages of `inout.size()` words — the group
/// sizes this library runs (virtual ranks on one node) never make the
/// log-tree variant worth its extra schedule complexity.
void reduce_bcast(peer_comm& comm, std::span<std::int64_t> inout) {
  const int p = comm.size();
  if (p == 1) return;
  if (comm.rank() == 0) {
    for (int src = 1; src < p; ++src) {
      const std::vector<std::int64_t> part = comm.recv(src);  // lint: blocking-ok — peer_comm::recv is bounded by the implementation's detection budget (peer_lost / regroup), never an unbounded wait
      SFP_REQUIRE(part.size() == inout.size(),
                  "allreduce contributions must have equal length");
      for (std::size_t i = 0; i < inout.size(); ++i) inout[i] += part[i];
    }
    for (int dst = 1; dst < p; ++dst) comm.send(dst, inout);
  } else {
    comm.send(0, inout);
    const std::vector<std::int64_t> total = comm.recv(0);  // lint: blocking-ok — peer_comm::recv is bounded by the implementation's detection budget (peer_lost / regroup), never an unbounded wait
    SFP_ASSERT(total.size() == inout.size(),
               "allreduce result length mismatch");
    for (std::size_t i = 0; i < inout.size(); ++i) inout[i] = total[i];
  }
}

}  // namespace

std::int64_t allreduce_sum(peer_comm& comm, std::int64_t value) {
  std::int64_t slot[1] = {value};
  reduce_bcast(comm, slot);
  return slot[0];
}

void allreduce_sum(peer_comm& comm, std::span<std::int64_t> inout) {
  reduce_bcast(comm, inout);
}

std::int64_t exscan_sum(peer_comm& comm, std::int64_t value) {
  const int p = comm.size();
  if (p == 1) return 0;
  // Gather per-rank values at rank 0, prefix-sum there, send each rank its
  // exclusive offset. One word each way per rank.
  if (comm.rank() == 0) {
    std::int64_t running = value;
    std::vector<std::int64_t> offsets(static_cast<std::size_t>(p), 0);
    for (int src = 1; src < p; ++src) {
      const std::vector<std::int64_t> part = comm.recv(src);  // lint: blocking-ok — peer_comm::recv is bounded by the implementation's detection budget (peer_lost / regroup), never an unbounded wait
      SFP_REQUIRE(part.size() == 1, "exscan contribution must be one word");
      offsets[static_cast<std::size_t>(src)] = running;
      running += part[0];
    }
    for (int dst = 1; dst < p; ++dst) {
      const std::int64_t one[1] = {offsets[static_cast<std::size_t>(dst)]};
      comm.send(dst, one);
    }
    return 0;
  }
  const std::int64_t one[1] = {value};
  comm.send(0, one);
  const std::vector<std::int64_t> offset = comm.recv(0);  // lint: blocking-ok — peer_comm::recv is bounded by the implementation's detection budget (peer_lost / regroup), never an unbounded wait
  SFP_ASSERT(offset.size() == 1, "exscan result must be one word");
  return offset[0];
}

std::vector<std::int64_t> allgather_concat(
    peer_comm& comm, std::span<const std::int64_t> words) {
  const int p = comm.size();
  std::vector<std::int64_t> all(words.begin(), words.end());
  if (p == 1) return all;
  if (comm.rank() == 0) {
    for (int src = 1; src < p; ++src) {
      const std::vector<std::int64_t> part = comm.recv(src);  // lint: blocking-ok — peer_comm::recv is bounded by the implementation's detection budget (peer_lost / regroup), never an unbounded wait
      all.insert(all.end(), part.begin(), part.end());
    }
    for (int dst = 1; dst < p; ++dst) comm.send(dst, all);
    return all;
  }
  comm.send(0, words);
  return comm.recv(0);  // lint: blocking-ok — peer_comm::recv is bounded by the implementation's detection budget (peer_lost / regroup), never an unbounded wait
}

// ---------------------------------------------------------------------------
// Survivor regroup.

peer_lost::peer_lost(int peer, bool definite)
    : std::runtime_error("peer " + std::to_string(peer) +
                         (definite ? " unreachable (delivery failure)"
                                   : " silent past the detection budget")),
      peer_(peer),
      definite_(definite) {}

quorum_lost::quorum_lost(const std::string& why)
    : std::runtime_error("quorum lost: " + why) {}

group_reconfigured::group_reconfigured(group_view view, int victim,
                                       int old_size)
    : std::runtime_error("group reconfigured to epoch " +
                         std::to_string(view.epoch) + " with " +
                         std::to_string(view.members.size()) +
                         " survivor(s) after losing rank " +
                         std::to_string(victim)),
      view_(std::move(view)),
      victim_(victim),
      old_size_(old_size) {}

regroup_comm::regroup_comm(peer_comm& base, regroup_options opts)
    : base_(&base), opts_(opts), self_world_(base.rank()) {
  SFP_REQUIRE(opts_.min_members >= 1, "regroup quorum must be at least 1");
  SFP_REQUIRE(opts_.patience_rounds >= 0,
              "regroup patience cannot be negative");
  view_.epoch = 0;
  view_.members.resize(static_cast<std::size_t>(base.size()));
  std::iota(view_.members.begin(), view_.members.end(), 0);
}

int regroup_comm::rank() const { return dense_of_self(); }

int regroup_comm::size() const {
  return static_cast<int>(view_.members.size());
}

bool regroup_comm::group_intact() const { return view_.epoch == 0; }

int regroup_comm::world_of(int dense) const {
  SFP_REQUIRE(dense >= 0 && dense < size(), "dense rank out of range");
  return view_.members[static_cast<std::size_t>(dense)];
}

int regroup_comm::dense_of_self() const {
  const auto it = std::lower_bound(view_.members.begin(), view_.members.end(),
                                   self_world_);
  SFP_ASSERT(it != view_.members.end() && *it == self_world_,
             "rank evicted from its own group view");
  return static_cast<int>(it - view_.members.begin());
}

int regroup_comm::patience() const {
  // Auto scale: a live peer may itself be waiting out a corpse before it
  // talks to us, so the data budget must cover one full detection window
  // per group member plus slack. Measured in base-recv timeout rounds —
  // core stays clock-free; wall time is the runtime adapter's knob.
  return opts_.patience_rounds > 0 ? opts_.patience_rounds : size() + 3;
}

bool regroup_comm::is_member(int world_rank) const {
  return std::binary_search(view_.members.begin(), view_.members.end(),
                            world_rank);
}

void regroup_comm::suspect(std::vector<int>& suspects, int world_rank) const {
  if (world_rank == self_world_ || !is_member(world_rank)) return;
  if (std::find(suspects.begin(), suspects.end(), world_rank) !=
      suspects.end())
    return;
  suspects.push_back(world_rank);
  std::sort(suspects.begin(), suspects.end());
}

void regroup_comm::send(int dst, std::span<const std::int64_t> words) {
  std::vector<std::int64_t> frame;
  frame.reserve(words.size() + 2);
  frame.push_back(static_cast<std::int64_t>(view_.epoch));
  frame.push_back(frame_data);
  frame.insert(frame.end(), words.begin(), words.end());
  base_->send(world_of(dst), frame);
}

std::vector<std::int64_t> regroup_comm::recv(int src) {
  // Root-directed waits get two full detection windows of slack: in the
  // star topology the root may itself be silently waiting out a dead leaf
  // (one whole patience window) before it can serve anyone, so a leaf
  // budgeting only one window races the root's own detection and falsely
  // suspects a live root — the one suspicion that can split the group.
  const int world_src = world_of(src);
  const int rounds = world_src == view_.members.front()
                         ? 2 * patience() + 2
                         : patience();
  std::vector<std::int64_t> frame =
      recv_framed(world_src, frame_data, rounds);
  frame.erase(frame.begin(), frame.begin() + 2);
  return frame;
}

void regroup_comm::forget_peer(int peer) { base_->forget_peer(world_of(peer)); }

void regroup_comm::send_report(int world_dst,
                               const std::vector<int>& suspects) {
  std::vector<std::int64_t> frame;
  frame.reserve(3 + view_.members.size() + suspects.size());
  frame.push_back(static_cast<std::int64_t>(view_.epoch));
  frame.push_back(frame_report);
  frame.push_back(static_cast<std::int64_t>(view_.members.size()));
  for (const int m : view_.members) frame.push_back(m);
  for (const int s : suspects) frame.push_back(s);
  base_->send(world_dst, frame);
  ++stats_.reports_sent;
}

void regroup_comm::send_newgroup(int world_dst, const group_view& v) {
  std::vector<std::int64_t> frame;
  frame.reserve(2 + v.members.size());
  frame.push_back(static_cast<std::int64_t>(v.epoch));
  frame.push_back(frame_newgroup);
  for (const int m : v.members) frame.push_back(m);
  base_->send(world_dst, frame);
}

std::vector<std::int64_t> regroup_comm::recv_framed(int world_src,
                                                    std::int64_t want,
                                                    int patience_rounds,
                                                    bool regroup_on_silence) {
  int quiet = 0;
  for (;;) {
    std::vector<std::int64_t> frame;
    try {
      frame = base_->recv(world_src);  // lint: blocking-ok — base recv throws peer_lost after its detection budget; silence is counted against the patience budget here, never waited out unboundedly
    } catch (const peer_lost& lost) {
      if (lost.definite()) {
        // Delivery-level proof of death. A corpse already evicted can keep
        // tripping the transport until its queues drain; scrub and go on.
        if (lost.peer() == self_world_ || !is_member(lost.peer())) {
          base_->forget_peer(lost.peer());
          continue;
        }
        if (!regroup_on_silence) throw;
        begin_regroup(lost.peer());
      }
      if (++quiet <= patience_rounds) continue;
      if (!regroup_on_silence) throw peer_lost(world_src, false);
      begin_regroup(world_src);
    }
    quiet = 0;
    SFP_ASSERT(frame.size() >= 2, "regroup frame lacks its (epoch, kind) prefix");
    const auto epoch = static_cast<std::uint64_t>(frame[0]);
    const std::int64_t kind = frame[1];

    if (kind == frame_newgroup) {
      if (epoch <= view_.epoch) {
        // Already adopted (possibly via a report resync); duplicate mint.
        ++stats_.stale_dropped;
        continue;
      }
      group_view next;
      next.epoch = epoch;
      for (std::size_t i = 2; i < frame.size(); ++i)
        next.members.push_back(static_cast<int>(frame[i]));
      adopt_and_throw(std::move(next));
    }

    if (kind == frame_report) {
      SFP_ASSERT(frame.size() >= 3, "suspicion report lacks its member count");
      const auto nmem = static_cast<std::size_t>(frame[2]);
      SFP_ASSERT(frame.size() >= 3 + nmem, "suspicion report truncated");
      stashed_report rep;
      rep.epoch = epoch;
      for (std::size_t i = 3; i < 3 + nmem; ++i)
        rep.members.push_back(static_cast<int>(frame[i]));
      for (std::size_t i = 3 + nmem; i < frame.size(); ++i)
        rep.suspects.push_back(static_cast<int>(frame[i]));
      if (epoch > view_.epoch) {
        // The sender already lives in a newer group: a NEWGROUP we missed
        // (e.g. its minter died mid-broadcast). Its embedded view is the
        // group we belong to now — or proof that we no longer do.
        group_view next;
        next.epoch = epoch;
        next.members = std::move(rep.members);
        adopt_and_throw(std::move(next));
      }
      if (epoch < view_.epoch) ++stats_.stale_dropped;
      auto& slot = pending_reports_[world_src];
      if (rep.epoch >= slot.epoch) slot = std::move(rep);
      // A collector accepts any report — a sender still walking an older
      // epoch is nonetheless alive and naming real corpses.
      if (want == frame_report) return frame;
      if (regroup_on_silence && epoch == view_.epoch) {
        // Overheard suspicion during a data wait: if the union of all
        // current-epoch reports makes this rank the lowest unsuspected
        // member, every reporter is waiting on us to coordinate. If the
        // *sender* is that lowest member, it is a coordinator candidate
        // prodding us for a roll-call report — reply so its collect does
        // not have to falsely suspect a healthy rank that simply had
        // nothing to say.
        std::vector<int> suspects;
        for (const auto& [src, stash] : pending_reports_)
          if (stash.epoch == view_.epoch)
            for (const int s : stash.suspects) suspect(suspects, s);
        if (!suspects.empty()) {
          int lowest = -1;
          for (const int m : view_.members) {
            if (std::find(suspects.begin(), suspects.end(), m) ==
                suspects.end()) {
              lowest = m;
              break;
            }
          }
          if (lowest == world_src) send_report(world_src, suspects);
          if (lowest == self_world_) coordinate(std::move(suspects));
        }
      }
      continue;
    }

    SFP_ASSERT(kind == frame_data || kind == frame_barrier,
               "unknown regroup frame kind");
    if (epoch < view_.epoch) {
      ++stats_.stale_dropped;
      continue;
    }
    // Future-epoch payloads are impossible: the minter's NEWGROUP precedes
    // its own new-epoch payloads on this FIFO stream, and every other rank
    // reaches a new epoch only after the minter did.
    SFP_ASSERT(epoch == view_.epoch, "payload frame from a future group epoch");
    if (kind != want) {
      ++stats_.aborted_data_dropped;
      continue;
    }
    return frame;
  }
}

void regroup_comm::begin_regroup(int first_suspect) {
  std::vector<int> suspects;
  suspect(suspects, first_suspect);
  for (const auto& [src, rep] : pending_reports_)
    for (const int s : rep.suspects) suspect(suspects, s);
  SFP_ASSERT(!suspects.empty(), "regroup entered with no suspect");
  // Candidate walk: aim the report at the lowest unsuspected member; if it
  // stays silent too, suspect it and walk upward. Self as candidate means
  // this rank coordinates.
  for (;;) {
    int cand = -1;
    for (const int m : view_.members) {
      if (std::find(suspects.begin(), suspects.end(), m) == suspects.end()) {
        cand = m;
        break;
      }
    }
    if (cand < 0) throw quorum_lost("every group member suspected dead");
    // Copy, not move: coordinate only resolves by unwinding, but the walk
    // below reads the suspect list again on every CFG path through here.
    if (cand == self_world_) coordinate(suspects);
    send_report(cand, suspects);
    // The candidate may be serially collecting reports from the whole
    // group before it mints, so the NEWGROUP wait gets the largest budget:
    // one collect window per member plus a data window of slack.
    const int newgroup_patience =
        size() * (2 * patience() + 4) + patience();
    try {
      (void)recv_framed(cand, frame_newgroup, newgroup_patience,
                        /*regroup_on_silence=*/false);
      SFP_ASSERT(false, "newgroup wait resolves only by unwinding");
    } catch (const peer_lost& lost) {
      if (lost.definite()) {
        // Scrub the proven-dead peer's channel state, or its exhausted
        // retransmit queue keeps re-throwing on every recv and the walk
        // would spin (re-suspecting an already-suspected rank is a no-op).
        base_->forget_peer(lost.peer());
      }
      suspect(suspects, lost.definite() ? lost.peer() : cand);
    }
  }
}

void regroup_comm::coordinate(std::vector<int> suspects) {
  ++stats_.agreement_rounds;
  for (const auto& [src, rep] : pending_reports_)
    for (const int s : rep.suspects) suspect(suspects, s);
  const auto suspected = [&suspects](int m) {
    return std::find(suspects.begin(), suspects.end(), m) != suspects.end();
  };
  if (view_.members.front() != self_world_) {
    // New coordinator (the incumbent root is among the suspects): collect a
    // report from every unsuspected member so nobody is left behind in the
    // old epoch. The incumbent root skips this — in the rank-0-rooted
    // star, leaves cannot detect a leaf death, so their reports would
    // never come and waiting for them would deadlock the recovery.
    //
    // Prod every unsuspected member first. A member that has not noticed
    // anything wrong (a leaf whose root just died mid-collective, say)
    // would otherwise never volunteer a report and the collect below would
    // falsely suspect it; on receiving our prod it replies with its own
    // report (see recv_framed).
    const std::vector<int> roll = view_.members;
    for (const int m : roll)
      if (m != self_world_ && !suspected(m)) send_report(m, suspects);
    for (const int m : roll) {
      while (m != self_world_ && !suspected(m)) {
        try {
          // The collect window must outlast the longest wait a healthy
          // member can sit in obliviously: base recv is source-filtered,
          // so a leaf parked on the dead root's stream cannot see our prod
          // until its own root budget (2*patience()+2) lapses and it
          // reports on its own initiative. Budget one full root window
          // plus slack, or that live leaf gets falsely evicted.
          const std::vector<std::int64_t> frame =
              recv_framed(m, frame_report, 2 * patience() + 4,
                          /*regroup_on_silence=*/false);
          const auto nmem = static_cast<std::size_t>(frame[2]);
          for (std::size_t i = 3 + nmem; i < frame.size(); ++i)
            suspect(suspects, static_cast<int>(frame[i]));
          break;
        } catch (const peer_lost& lost) {
          // A definite loss may name a third rank; keep waiting on m until
          // it reports or is itself suspected. Scrub definite corpses so
          // their exhausted retransmit queues cannot re-throw forever.
          if (lost.definite()) base_->forget_peer(lost.peer());
          suspect(suspects, lost.definite() ? lost.peer() : m);
        }
      }
    }
  }
  group_view next;
  next.epoch = view_.epoch + 1;
  for (const int m : view_.members)
    if (!suspected(m)) next.members.push_back(m);
  SFP_ASSERT(std::binary_search(next.members.begin(), next.members.end(),
                                self_world_),
             "coordinator dropped itself from the minted view");
  // Broadcast to every *old* member, survivors and evicted alike, even
  // when the survivors are below quorum: everybody learns the final view
  // and aborts cleanly instead of timing out one by one. In particular a
  // falsely-suspected rank that is actually alive sees itself evicted and
  // terminates via quorum_lost at once, rather than minting a colliding
  // epoch of its own (split brain). Sends to real corpses are best-effort;
  // adopt_and_throw scrubs their channel state right after.
  for (const int m : view_.members)
    if (m != self_world_) send_newgroup(m, next);
  adopt_and_throw(std::move(next));
}

void regroup_comm::adopt_and_throw(group_view next) {
  SFP_ASSERT(next.epoch > view_.epoch, "group epoch must advance on adoption");
  SFP_ASSERT(!next.members.empty(), "adopted group view has no members");
  int victim = -1;
  for (const int m : view_.members) {
    if (std::binary_search(next.members.begin(), next.members.end(), m))
      continue;
    if (victim < 0) victim = m;
    // Evicted ranks are dead to us either way: stop their queued traffic
    // from tripping the failure machinery inside the new epoch.
    base_->forget_peer(m);
  }
  const int old_size = size();
  view_ = std::move(next);
  pending_reports_.clear();
  ++recoveries_;
  if (!std::binary_search(view_.members.begin(), view_.members.end(),
                          self_world_))
    throw quorum_lost("evicted from the surviving group");
  if (size() < opts_.min_members)
    throw quorum_lost("survivors below quorum (" + std::to_string(size()) +
                      " < " + std::to_string(opts_.min_members) + ")");
  throw group_reconfigured(view_, victim, old_size);
}

void regroup_comm::barrier() {
  const int p = size();
  if (p <= 1) return;
  const auto epoch_word = static_cast<std::int64_t>(view_.epoch);
  if (dense_of_self() == 0) {
    for (int d = 1; d < p; ++d)
      (void)recv_framed(world_of(d), frame_barrier, patience());  // lint: blocking-ok — framed recv converts silence past the patience budget into a regroup; a death during the barrier unwinds instead of hanging
    for (int d = 1; d < p; ++d) {
      const std::int64_t release[3] = {epoch_word, frame_barrier, 1};
      base_->send(world_of(d), release);
    }
    return;
  }
  const std::int64_t arrive[3] = {epoch_word, frame_barrier, 0};
  base_->send(world_of(0), arrive);
  // Same doubled budget as data recv: the root releases only after every
  // arrival, and one of those waits may be a full corpse-detection window.
  (void)recv_framed(world_of(0), frame_barrier, 2 * patience() + 2);  // lint: blocking-ok — framed recv converts silence past the patience budget into a regroup; a death during the barrier unwinds instead of hanging
}

void regroup_comm::notify_peer_lost(int world_peer) {
  base_->forget_peer(world_peer);
  if (world_peer == self_world_ || !is_member(world_peer)) return;
  begin_regroup(world_peer);
}

}  // namespace sfp::core
