#include "core/dist_scan.hpp"

#include "util/contract.hpp"

namespace sfp::core {

peer_comm::~peer_comm() = default;

void solo_comm::send(int dst, std::span<const std::int64_t> words) {
  (void)words;
  SFP_REQUIRE(false, "solo_comm has no peers to send to");
  (void)dst;
}

std::vector<std::int64_t> solo_comm::recv(int src) {
  SFP_REQUIRE(false, "solo_comm has no peers to receive from");
  (void)src;
  return {};
}

namespace {

/// Rank-ordered gather to rank 0, elementwise sum there, broadcast back.
/// Every rank leaves with the identical sum vector in `inout`. The flat
/// fan-in/fan-out is O(P) messages of `inout.size()` words — the group
/// sizes this library runs (virtual ranks on one node) never make the
/// log-tree variant worth its extra schedule complexity.
void reduce_bcast(peer_comm& comm, std::span<std::int64_t> inout) {
  const int p = comm.size();
  if (p == 1) return;
  if (comm.rank() == 0) {
    for (int src = 1; src < p; ++src) {
      const std::vector<std::int64_t> part = comm.recv(src);
      SFP_REQUIRE(part.size() == inout.size(),
                  "allreduce contributions must have equal length");
      for (std::size_t i = 0; i < inout.size(); ++i) inout[i] += part[i];
    }
    for (int dst = 1; dst < p; ++dst) comm.send(dst, inout);
  } else {
    comm.send(0, inout);
    const std::vector<std::int64_t> total = comm.recv(0);
    SFP_ASSERT(total.size() == inout.size(),
               "allreduce result length mismatch");
    for (std::size_t i = 0; i < inout.size(); ++i) inout[i] = total[i];
  }
}

}  // namespace

std::int64_t allreduce_sum(peer_comm& comm, std::int64_t value) {
  std::int64_t slot[1] = {value};
  reduce_bcast(comm, slot);
  return slot[0];
}

void allreduce_sum(peer_comm& comm, std::span<std::int64_t> inout) {
  reduce_bcast(comm, inout);
}

std::int64_t exscan_sum(peer_comm& comm, std::int64_t value) {
  const int p = comm.size();
  if (p == 1) return 0;
  // Gather per-rank values at rank 0, prefix-sum there, send each rank its
  // exclusive offset. One word each way per rank.
  if (comm.rank() == 0) {
    std::int64_t running = value;
    std::vector<std::int64_t> offsets(static_cast<std::size_t>(p), 0);
    for (int src = 1; src < p; ++src) {
      const std::vector<std::int64_t> part = comm.recv(src);
      SFP_REQUIRE(part.size() == 1, "exscan contribution must be one word");
      offsets[static_cast<std::size_t>(src)] = running;
      running += part[0];
    }
    for (int dst = 1; dst < p; ++dst) {
      const std::int64_t one[1] = {offsets[static_cast<std::size_t>(dst)]};
      comm.send(dst, one);
    }
    return 0;
  }
  const std::int64_t one[1] = {value};
  comm.send(0, one);
  const std::vector<std::int64_t> offset = comm.recv(0);
  SFP_ASSERT(offset.size() == 1, "exscan result must be one word");
  return offset[0];
}

std::vector<std::int64_t> allgather_concat(
    peer_comm& comm, std::span<const std::int64_t> words) {
  const int p = comm.size();
  std::vector<std::int64_t> all(words.begin(), words.end());
  if (p == 1) return all;
  if (comm.rank() == 0) {
    for (int src = 1; src < p; ++src) {
      const std::vector<std::int64_t> part = comm.recv(src);
      all.insert(all.end(), part.begin(), part.end());
    }
    for (int dst = 1; dst < p; ++dst) comm.send(dst, all);
    return all;
  }
  comm.send(0, words);
  return comm.recv(0);
}

}  // namespace sfp::core
