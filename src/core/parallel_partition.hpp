#pragma once
// Distributed SFC partitioning without a global sort (ROADMAP item 1,
// following Borrell et al., "Parallel SFC-based mesh partitioning and load
// balancing"): the element-id space is block-distributed across ranks, each
// rank computes the SFC keys of its own elements directly from the shared
// curve spec (O(K/P) memory — no rank ever materializes the global
// traversal), and the Nproc−1 weighted split points are located by
// iterative distributed histogram refinement over key space plus one exact
// resolution pass on the last few candidate positions.
//
// The result is *bit-identical* to the serial slicer: sfc_partition's
// midpoint rule and its repair pass are both reproduced exactly —
//
//   * the midpoint rule's cut positions are threshold crossings of the
//     strictly increasing M(i) = 2·S(i) + w(i) (S = exclusive weighted
//     prefix along the curve), which histogram refinement can bracket with
//     integer-exact comparisons against p·W thresholds;
//   * the repair pass (never skip a part, never fall behind the tail) is a
//     per-part recurrence on those cut positions — repair_boundaries — that
//     every rank replays identically in O(Nproc).
//
// All communication goes through core::peer_comm (dist_scan.hpp), so the
// same code runs serially (solo_comm), over the in-process world, and over
// the socket backend; runtime/partition_fabric.hpp provides the drivers.

#include <cstdint>
#include <span>
#include <vector>

#include "core/cube_curve.hpp"
#include "core/dist_scan.hpp"
#include "graph/csr.hpp"
#include "mesh/cubed_sphere.hpp"

namespace sfp::core {

/// Tuning knobs for the splitter search. The defaults resolve tens of
/// millions of keys in a handful of rounds.
struct parallel_partition_options {
  /// Probe positions per unresolved splitter per refinement round; each
  /// round shrinks a splitter's bracket by roughly this factor.
  int histogram_fanout = 16;
  /// Bracket width at which refinement stops and the remaining candidate
  /// positions are exchanged and scanned exactly.
  int window_elements = 32;
};

/// What the splitter search cost, filled per rank.
struct parallel_partition_stats {
  int rounds = 0;                      ///< histogram refinement rounds
  std::int64_t probes_evaluated = 0;   ///< global probe positions, summed over rounds
  std::int64_t window_records = 0;     ///< (key, weight) records in the exact pass
  std::int64_t local_elements = 0;     ///< owned block size
};

/// Block distribution of the element-id space: rank r of P owns ids
/// [element_block_begin(K, P, r), element_block_begin(K, P, r+1)) — the
/// first K mod P blocks are one element larger. Empty blocks (K < P) are
/// legal; such ranks still participate in every collective.
std::int64_t element_block_begin(std::int64_t num_elements, int num_ranks,
                                 int rank);

/// The serial repair pass of partition_from_order, restated on cut
/// positions. `raw[p-1]` is the first curve position whose midpoint falls
/// in part p or beyond (`num_elements` = no such position); the returned
/// `b[p-1]` is the first curve position the repaired plan assigns to part
/// p: b_p = min(max(raw_p, b_{p-1}+1), K − Nproc + p). Identical on every
/// rank, O(Nproc), pure.
std::vector<std::int64_t> repair_boundaries(std::span<const std::int64_t> raw,
                                            std::int64_t num_elements,
                                            int nparts);

/// Distributed histogram refinement: locate, for every part p in
/// [1, nparts), the first curve position i with
/// (2·S(i) + w(i))·nparts >= 2·p·total — the serial midpoint rule's cut —
/// where S is the exclusive weighted prefix along the curve. Keys and
/// weights are this rank's elements sorted by key; every rank returns the
/// identical vector (index p-1; num_elements when no position qualifies).
/// Collective over `comm`. Requires non-negative weights and
/// total == global weight sum; the caller guarantees keys form a global
/// permutation of [0, num_elements).
std::vector<std::int64_t> find_raw_splitters(
    peer_comm& comm, std::span<const std::int64_t> sorted_keys,
    std::span<const graph::weight> sorted_weights, std::int64_t num_elements,
    graph::weight total_weight, int nparts,
    const parallel_partition_options& opts = {},
    parallel_partition_stats* stats = nullptr);

/// One rank's slice of a distributed plan.
struct local_partition {
  std::int64_t begin = 0;  ///< first owned element id
  std::int64_t end = 0;    ///< one past the last owned element id
  /// Part label per owned element, indexed by element id − begin.
  std::vector<graph::vid> labels;
  /// First curve position of every part p >= 1, identical on all ranks
  /// (size nparts−1) — enough to label *any* element locally.
  std::vector<std::int64_t> boundaries;
};

/// The per-rank program: compute this rank's SFC keys from `spec`, find
/// the weighted split points collectively, and label the owned block.
/// Collective over `comm`; the union of all ranks' labels is bit-identical
/// to sfc_partition(curve, nparts, weights) for the curve `spec` describes.
/// `local_weights` is indexed by element id − begin over the owned block
/// (empty = unit weights); weights must be positive, as in the serial
/// slicer. O(K/P · log) time and O(K/P) memory per rank.
local_partition parallel_partition_rank(
    const mesh::cubed_sphere& mesh, const cube_curve_spec& spec, int nparts,
    std::span<const graph::weight> local_weights, peer_comm& comm,
    const parallel_partition_options& opts = {},
    parallel_partition_stats* stats = nullptr);

}  // namespace sfp::core
