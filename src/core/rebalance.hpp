#pragma once
// Dynamic load rebalancing on the space-filling curve.
//
// The paper's partitioner is static, but the curve formulation has a
// property the graph methods lack: when element weights drift (e.g. physics
// cost following the day/night terminator), re-slicing the *same* curve
// with the new weights only shifts segment boundaries, so the number of
// elements that change owner — the data that must migrate — stays small and
// proportional to the imbalance, not to the problem size. This module makes
// that operation and its accounting first-class.

#include <cstdint>
#include <span>

#include "core/cube_curve.hpp"
#include "core/sfc_partition.hpp"
#include "partition/partition.hpp"

namespace sfp::core {

/// How much state would have to move to get from `from` to `to`.
struct migration_stats {
  std::int64_t moved_elements = 0;   ///< elements whose owner changed
  graph::weight moved_weight = 0;    ///< their total (new) weight
  double moved_fraction = 0;         ///< moved_elements / total elements
};

/// Compare two partitions of the same element set (they may have different
/// part counts). Weights may be empty (unit weights).
migration_stats migration_between(const partition::partition& from,
                                  const partition::partition& to,
                                  std::span<const graph::weight> weights = {});

/// Relabel `target`'s parts to maximize element overlap with `reference`
/// (greedy assignment on the overlap matrix — the standard "remap" step
/// after repartitioning). Requires equal part counts; the partition's
/// content is unchanged, only the processor numbers of whole parts swap, so
/// quality metrics are untouched while migration volume drops.
void remap_to_maximize_overlap(const partition::partition& reference,
                               partition::partition& target);

/// Re-slice the curve under new weights, then remap labels against
/// `current` (when part counts match) so only genuinely re-assigned
/// elements migrate. Returns the new partition and, if `stats` is non-null,
/// the migration cost relative to `current`.
partition::partition rebalance(const cube_curve& curve,
                               const partition::partition& current,
                               std::span<const graph::weight> new_weights,
                               int nparts, migration_stats* stats = nullptr);

}  // namespace sfp::core
