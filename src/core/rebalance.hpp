#pragma once
// Dynamic load rebalancing on the space-filling curve.
//
// The paper's partitioner is static, but the curve formulation has a
// property the graph methods lack: when element weights drift (e.g. physics
// cost following the day/night terminator), re-slicing the *same* curve
// with the new weights only shifts segment boundaries, so the number of
// elements that change owner — the data that must migrate — stays small and
// proportional to the imbalance, not to the problem size. This module makes
// that operation and its accounting first-class.

#include <cstdint>
#include <span>

#include "core/cube_curve.hpp"
#include "core/sfc_partition.hpp"
#include "partition/partition.hpp"  // lint: layering-ok — partition::partition is the shared result type core produces; type-only edge, no mgp machinery

namespace sfp::core {

/// How much state would have to move to get from `from` to `to`.
struct migration_stats {
  std::int64_t moved_elements = 0;   ///< elements whose owner changed
  graph::weight moved_weight = 0;    ///< their total (new) weight
  double moved_fraction = 0;         ///< moved_elements / total elements
};

/// Compare two partitions of the same element set (they may have different
/// part counts). Weights may be empty (unit weights).
migration_stats migration_between(const partition::partition& from,
                                  const partition::partition& to,
                                  std::span<const graph::weight> weights = {});

/// Relabel `target`'s parts to maximize element overlap with `reference`
/// (greedy assignment on the overlap matrix — the standard "remap" step
/// after repartitioning). The partition's content is unchanged, only the
/// processor numbers of whole parts swap, so quality metrics are untouched
/// while migration volume drops. Part counts may differ: target labels stay
/// in [0, target.num_parts), so a reference label outside that range (the
/// shrinking case) cannot be claimed and its elements count as moved.
void remap_to_maximize_overlap(const partition::partition& reference,
                               partition::partition& target);

/// Result of planning recovery from the loss of one rank (see
/// plan_recovery).
struct recovery_plan {
  /// The survivors' partition, with num_parts = old num_parts - 1.
  partition::partition part;
  /// Physical identity of each new part: survivor_of[new label] is the
  /// pre-failure label of the process that keeps hosting those elements.
  std::vector<graph::vid> survivor_of;
  /// Migration under that identity map: exactly the failed part's elements.
  migration_stats migration;
};

/// Plan recovery after part `failed` is lost: re-slice the curve into
/// num_parts-1 contiguous segments by keeping every surviving segment
/// boundary and splitting the failed part's span of the curve at its weight
/// midpoint between the two curve-adjacent surviving parts. Only the failed
/// part's elements change owner — migration is O(K / nparts) regardless of
/// mesh size, the SFC property the paper's re-slicing argument rests on —
/// at the price of up to 1.5x load on the two absorbing neighbours (a later
/// rebalance() call can restore balance at extra migration cost). Weights
/// may be empty (unit weights).
recovery_plan plan_recovery(const cube_curve& curve,
                            const partition::partition& current, int failed,
                            std::span<const graph::weight> weights = {});

/// Re-slice the curve under new weights, then remap labels against
/// `current` (when part counts match) so only genuinely re-assigned
/// elements migrate. Returns the new partition and, if `stats` is non-null,
/// the migration cost relative to `current`.
partition::partition rebalance(const cube_curve& curve,
                               const partition::partition& current,
                               std::span<const graph::weight> new_weights,
                               int nparts, migration_stats* stats = nullptr);

}  // namespace sfp::core
