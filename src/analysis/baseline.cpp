#include "analysis/baseline.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/contract.hpp"

namespace sfp::analysis {

std::vector<baseline_entry> baseline_from_json(const io::json_value& doc) {
  SFP_REQUIRE(doc.is_object(), "baseline: top level must be an object");
  std::vector<baseline_entry> out;
  if (!doc.has("suppressions")) return out;
  const io::json_value& list = doc.at("suppressions");
  SFP_REQUIRE(list.is_array(), "baseline: 'suppressions' must be an array");
  for (const auto& item : list.array) {
    SFP_REQUIRE(item.is_object() && item.has("rule") && item.has("file"),
                "baseline: each suppression needs 'rule' and 'file'");
    baseline_entry e;
    e.rule = item.at("rule").string;
    e.file = item.at("file").string;
    if (item.has("match")) e.match = item.at("match").string;
    out.push_back(std::move(e));
  }
  return out;
}

std::vector<baseline_entry> load_baseline(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  SFP_REQUIRE(is.good(), "cannot read baseline file: " + path);
  std::ostringstream buf;
  buf << is.rdbuf();
  return baseline_from_json(io::parse_json(buf.str()));
}

std::vector<finding> apply_baseline(analysis_result& r,
                                    const std::vector<baseline_entry>& bl) {
  const auto matches = [&bl](const finding& f) {
    for (const auto& e : bl) {
      if (e.rule != f.rule || e.file != f.file) continue;
      if (e.match.empty() || f.message.find(e.match) != std::string::npos)
        return true;
    }
    return false;
  };
  std::vector<finding> baselined;
  std::vector<finding> kept;
  kept.reserve(r.findings.size());
  for (auto& f : r.findings)
    (matches(f) ? baselined : kept).push_back(std::move(f));
  r.findings = std::move(kept);
  return baselined;
}

io::json_value baseline_to_json(const std::vector<finding>& findings) {
  io::json_value doc = io::json_object();
  doc.object.emplace("version", io::json_number(1));
  io::json_value list = io::json_array();
  for (const auto& f : findings) {
    io::json_value item = io::json_object();
    item.object.emplace("rule", io::json_string(f.rule));
    item.object.emplace("file", io::json_string(f.file));
    item.object.emplace("match", io::json_string(f.message));
    list.array.push_back(std::move(item));
  }
  doc.object.emplace("suppressions", std::move(list));
  return doc;
}

}  // namespace sfp::analysis
