#include "analysis/fix.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>

#include "util/contract.hpp"

namespace sfp::analysis {

namespace {

const source_file* file_by_path(const source_tree& tree,
                                const std::string& path) {
  for (const auto& f : tree.files)
    if (f.path == path) return &f;
  return nullptr;
}

/// The lint_tag on `line` of `f`, or nullptr.
const lint_tag* tag_on_line(const source_file& f, int line) {
  for (const auto& t : f.tags)
    if (t.line == line) return &t;
  return nullptr;
}

/// Strip the junk separator a human typed instead of the em-dash: leading
/// whitespace, then any run of '-', ':', ';', ',', '.', '=', en/em-dash
/// bytes, then whitespace again. What remains is the reason text.
std::string_view reason_of(std::string_view rest) {
  const auto ws = [](char c) { return c == ' ' || c == '\t'; };
  while (!rest.empty() && ws(rest.front())) rest.remove_prefix(1);
  while (!rest.empty()) {
    const char c = rest.front();
    if (c == '-' || c == ':' || c == ';' || c == ',' || c == '.' ||
        c == '=') {
      rest.remove_prefix(1);
      continue;
    }
    // UTF-8 en-dash U+2013 / em-dash U+2014: e2 80 93 / e2 80 94.
    if (rest.size() >= 3 && static_cast<unsigned char>(rest[0]) == 0xE2 &&
        static_cast<unsigned char>(rest[1]) == 0x80 &&
        (static_cast<unsigned char>(rest[2]) == 0x93 ||
         static_cast<unsigned char>(rest[2]) == 0x94)) {
      rest.remove_prefix(3);
      continue;
    }
    break;
  }
  while (!rest.empty() && ws(rest.front())) rest.remove_prefix(1);
  while (!rest.empty() && (ws(rest.back()) || rest.back() == '\r'))
    rest.remove_suffix(1);
  return rest;
}

}  // namespace

fix_plan plan_fixes(const source_tree& tree,
                    const std::vector<finding>& findings) {
  fix_plan plan;
  for (const finding& v : findings) {
    if (v.rule == "pragma-once") {
      const source_file* f = file_by_path(tree, v.file);
      if (f == nullptr) continue;
      if (f->stripped.find("#pragma once") != std::string::npos) {
        plan.skipped.push_back(
            v.file + ": #pragma once exists but is not the first "
            "directive; move it by hand");
        continue;
      }
      fix_edit e;
      e.file = v.file;
      e.line = v.line;
      e.rule = v.rule;
      e.offset = 0;
      e.length = 0;
      e.replacement = "#pragma once\n";
      plan.edits.push_back(std::move(e));
      continue;
    }
    if (v.rule == "suppression-format") {
      const source_file* f = file_by_path(tree, v.file);
      if (f == nullptr) continue;
      const lint_tag* tag = tag_on_line(*f, v.line);
      if (tag == nullptr) continue;
      // Only the separator/spacing deviation is mechanical: the token
      // must already be a known `<slug>-ok` and a reason must exist.
      if (tag->token.size() <= 3 ||
          tag->token.compare(tag->token.size() - 3, 3, "-ok") != 0) {
        plan.skipped.push_back(v.file + ":" + std::to_string(v.line) +
                               ": tag is not `<slug>-ok`; rewrite by hand");
        continue;
      }
      const std::string slug = tag->token.substr(0, tag->token.size() - 3);
      if (rule_by_slug(slug) == nullptr) {
        plan.skipped.push_back(v.file + ":" + std::to_string(v.line) +
                               ": unknown rule '" + slug +
                               "'; not autofixable");
        continue;
      }
      const std::string_view reason = reason_of(tag->rest);
      if (reason.empty()) {
        plan.skipped.push_back(v.file + ":" + std::to_string(v.line) +
                               ": suppression has no reason text; "
                               "write one by hand");
        continue;
      }
      // Rewrite [token_end, end-of-rest) to " — <reason>"; the tag
      // recorded the token-end byte offset from the raw line.
      fix_edit e;
      e.file = v.file;
      e.line = v.line;
      e.rule = v.rule;
      e.offset = tag->rest_pos;
      e.length = tag->rest.size();
      e.replacement = " \xE2\x80\x94 " + std::string(reason);
      plan.edits.push_back(std::move(e));
      continue;
    }
  }

  std::sort(plan.edits.begin(), plan.edits.end(),
            [](const fix_edit& a, const fix_edit& b) {
              return std::tie(a.file, a.offset) < std::tie(b.file, b.offset);
            });
  for (std::size_t i = 1; i < plan.edits.size(); ++i) {
    const fix_edit& a = plan.edits[i - 1];
    const fix_edit& b = plan.edits[i];
    if (a.file == b.file && a.offset + a.length > b.offset)
      SFP_REQUIRE(false, "sfplint --fix: overlapping edits in " + a.file +
                             " at offsets " + std::to_string(a.offset) +
                             " and " + std::to_string(b.offset) +
                             "; refusing to rewrite");
  }
  return plan;
}

void apply_fixes(const std::string& root, const fix_plan& plan) {
  std::map<std::string, std::vector<const fix_edit*>> by_file;
  for (const fix_edit& e : plan.edits) by_file[e.file].push_back(&e);
  for (auto& [path, edits] : by_file) {
    const std::string full = root + "/" + path;
    std::ifstream in(full, std::ios::binary);
    SFP_REQUIRE(in.good(), "sfplint --fix: cannot read " + full);
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string text = buf.str();
    // Descending offsets so earlier offsets stay valid while rewriting.
    std::sort(edits.begin(), edits.end(),
              [](const fix_edit* a, const fix_edit* b) {
                return a->offset > b->offset;
              });
    for (const fix_edit* e : edits) {
      SFP_REQUIRE(e->offset + e->length <= text.size(),
                  "sfplint --fix: edit past end of " + full);
      text.replace(e->offset, e->length, e->replacement);
    }
    std::ofstream out(full, std::ios::binary | std::ios::trunc);
    SFP_REQUIRE(out.good(), "sfplint --fix: cannot write " + full);
    out << text;
    SFP_REQUIRE(out.good(), "sfplint --fix: write failed for " + full);
  }
}

std::string render_fix_plan(const fix_plan& plan) {
  std::ostringstream out;
  for (const fix_edit& e : plan.edits) {
    out << e.file << ":" << e.line << ": [" << e.rule << "] ";
    if (e.length == 0)
      out << "insert " << e.replacement.size() << " byte(s)";
    else
      out << "rewrite " << e.length << " -> " << e.replacement.size()
          << " byte(s)";
    out << " at offset " << e.offset << "\n";
  }
  for (const std::string& s : plan.skipped) out << "skipped: " << s << "\n";
  out << plan.edits.size() << " edit(s), " << plan.skipped.size()
      << " skipped\n";
  return out.str();
}

}  // namespace sfp::analysis
