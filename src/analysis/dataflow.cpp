#include "analysis/dataflow.hpp"

#include <deque>

#include "util/contract.hpp"

namespace sfp::analysis {

fact_sets make_fact_sets(const function_cfg& cfg, int num_facts) {
  return fact_sets(cfg.nodes.size(),
                   std::vector<char>(static_cast<std::size_t>(num_facts), 0));
}

dataflow_result solve_dataflow(const function_cfg& cfg,
                               const dataflow_problem& p) {
  const std::size_t n = cfg.nodes.size();
  SFP_REQUIRE(p.gen.size() == n && p.kill.size() == n,
              "dataflow problem not sized to its CFG");
  const std::size_t facts = static_cast<std::size_t>(p.num_facts);
  dataflow_result r;
  // May analyses start empty and grow; must analyses start full (top) and
  // shrink, so loops converge to the greatest fixpoint instead of locking
  // in the untraversed back edge's initial zeros.
  const char init = p.may ? 0 : 1;
  r.in = fact_sets(n, std::vector<char>(facts, init));
  r.out = fact_sets(n, std::vector<char>(facts, init));

  const int boundary_node = p.forward ? cfg.entry : cfg.exit;
  std::deque<int> work;
  std::vector<char> queued(n, 1);
  for (std::size_t i = 0; i < n; ++i) work.push_back(static_cast<int>(i));

  while (!work.empty()) {
    const int node = work.front();
    work.pop_front();
    queued[static_cast<std::size_t>(node)] = 0;
    const cfg_node& nd = cfg.nodes[static_cast<std::size_t>(node)];
    const std::vector<int>& sources = p.forward ? nd.pred : nd.succ;

    std::vector<char> joined(facts, 0);
    bool first = true;
    if (node == boundary_node) {
      if (!p.boundary.empty()) joined = p.boundary;
      first = false;
    }
    for (const int s : sources) {
      std::vector<char> val = p.forward ? r.out[static_cast<std::size_t>(s)]
                                        : r.in[static_cast<std::size_t>(s)];
      const auto key = p.forward ? std::make_pair(s, node)
                                 : std::make_pair(node, s);
      const auto ek = p.edge_kill.find(key);
      if (ek != p.edge_kill.end())
        for (std::size_t f = 0; f < facts; ++f)
          if (ek->second[f] != 0) val[f] = 0;
      if (first) {
        joined = std::move(val);
        first = false;
      } else {
        for (std::size_t f = 0; f < facts; ++f)
          joined[f] = p.may ? static_cast<char>(joined[f] | val[f])
                            : static_cast<char>(joined[f] & val[f]);
      }
    }
    // A non-boundary node with no incoming edges is unreachable: in a
    // must analysis every fact vacuously holds there.
    if (first && !p.may) joined.assign(facts, 1);

    std::vector<char>& inset = p.forward
                                   ? r.in[static_cast<std::size_t>(node)]
                                   : r.out[static_cast<std::size_t>(node)];
    inset = joined;

    std::vector<char> next = std::move(joined);
    const auto& g = p.gen[static_cast<std::size_t>(node)];
    const auto& k = p.kill[static_cast<std::size_t>(node)];
    for (std::size_t f = 0; f < facts; ++f) {
      if (k[f] != 0) next[f] = 0;
      if (g[f] != 0) next[f] = 1;
    }
    std::vector<char>& outset = p.forward
                                    ? r.out[static_cast<std::size_t>(node)]
                                    : r.in[static_cast<std::size_t>(node)];
    if (next != outset) {
      outset = std::move(next);
      const std::vector<int>& dests = p.forward ? nd.succ : nd.pred;
      for (const int d : dests) {
        if (queued[static_cast<std::size_t>(d)] != 0) continue;
        queued[static_cast<std::size_t>(d)] = 1;
        work.push_back(d);
      }
    }
  }
  return r;
}

}  // namespace sfp::analysis
