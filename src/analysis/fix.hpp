#pragma once
// Mechanical autofixes for sfplint --fix. Two finding classes are fixable
// today, both pure text rewrites with no behavioural surface:
//
//   pragma-once         insert `#pragma once` as the first line of a
//                       header that lacks it (skipped when the directive
//                       exists anywhere in the file already — moving a
//                       misplaced one is a human decision)
//   suppression-format  rewrite a non-canonical suppression separator to
//                       the canonical `lint: <slug>-ok — <reason>` form;
//                       only tags that already carry a reason are
//                       rewritten (inventing a reason is not mechanical)
//
// plan_fixes() derives byte-exact edits from a scan result; offsets refer
// to the raw on-disk files (stripping preserves offsets, so positions
// computed on stripped text apply verbatim). Overlapping edits in one
// file mean two rules disagree about the same bytes — plan_fixes throws
// rather than guessing, and the CLI surfaces that as exit 2. Applying a
// plan and re-scanning yields an empty plan: --fix is idempotent.

#include <string>
#include <vector>

#include "analysis/passes.hpp"
#include "analysis/source_model.hpp"

namespace sfp::analysis {

/// One byte-range rewrite: replace length bytes at offset with
/// replacement. length == 0 is a pure insertion.
struct fix_edit {
  std::string file;  ///< repo-relative path
  int line = 0;      ///< anchor line of the finding being fixed
  std::string rule;
  std::size_t offset = 0;
  std::size_t length = 0;
  std::string replacement;
};

struct fix_plan {
  std::vector<fix_edit> edits;        ///< sorted by (file, offset)
  std::vector<std::string> skipped;   ///< human-readable reasons, one per
                                      ///< fixable finding left untouched
};

/// Derive the edits that would clear the autofixable findings in
/// `findings`. Throws sfp::contract_error when two edits overlap.
fix_plan plan_fixes(const source_tree& tree,
                    const std::vector<finding>& findings);

/// Apply a plan to the files under `root` (read raw, rewrite, write
/// back). Edits are applied per file in descending offset order so
/// earlier offsets stay valid. Throws sfp::contract_error on I/O failure.
void apply_fixes(const std::string& root, const fix_plan& plan);

/// Render a plan for --fix-dry-run: one line per edit plus the skip list.
std::string render_fix_plan(const fix_plan& plan);

}  // namespace sfp::analysis
