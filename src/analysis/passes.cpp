#include "analysis/passes.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

#include "analysis/dataflow.hpp"
#include "util/contract.hpp"

namespace sfp::analysis {

namespace {

bool ident_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

/// Position of `token` as a whole identifier (prev/next not ident chars),
/// searching from `from`; npos when absent.
std::size_t find_token(std::string_view text, std::string_view token,
                       std::size_t from = 0) {
  std::size_t pos = from;
  while ((pos = text.find(token, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !ident_char(text[pos - 1]);
    const std::size_t end = pos + token.size();
    const bool right_ok = end >= text.size() || !ident_char(text[end]);
    if (left_ok && right_ok) return pos;
    pos = end;
  }
  return std::string_view::npos;
}

/// True when `token(` appears as a free-function call: whole token, not a
/// member call (`.token(` / `->token(`). Qualified calls (`std::token(`)
/// match. Returns the position or npos.
std::size_t find_free_call(std::string_view text, std::string_view token,
                           std::size_t from = 0) {
  std::size_t pos = from;
  while ((pos = find_token(text, token, pos)) != std::string_view::npos) {
    std::size_t after = pos + token.size();
    while (after < text.size() && (text[after] == ' ' || text[after] == '\t'))
      ++after;
    const bool is_call = after < text.size() && text[after] == '(';
    const bool member = pos > 0 && (text[pos - 1] == '.' ||
                                    (pos > 1 && text[pos - 1] == '>' &&
                                     text[pos - 2] == '-'));
    if (is_call && !member) return pos;
    pos = pos + token.size();
  }
  return std::string_view::npos;
}

bool path_in(const std::string& path, const std::vector<std::string>& list) {
  return std::find(list.begin(), list.end(), path) != list.end();
}

bool path_under(const std::string& path,
                const std::vector<std::string>& prefixes) {
  for (const auto& p : prefixes)
    if (path.compare(0, p.size(), p) == 0) return true;
  return false;
}

bool module_in(const std::string& module,
               const std::vector<std::string>& list) {
  return std::find(list.begin(), list.end(), module) != list.end();
}

/// Side-effect heuristic over a stripped condition expression: increment,
/// decrement, compound assignment, or plain assignment.
bool has_side_effect(std::string_view cond) {
  for (std::size_t i = 0; i + 1 < cond.size(); ++i) {
    const char a = cond[i];
    const char b = cond[i + 1];
    if ((a == '+' && b == '+') || (a == '-' && b == '-')) return true;
  }
  for (std::size_t i = 0; i < cond.size(); ++i) {
    if (cond[i] != '=') continue;
    const char prev = i > 0 ? cond[i - 1] : '\0';
    const char prev2 = i > 1 ? cond[i - 2] : '\0';
    const char next = i + 1 < cond.size() ? cond[i + 1] : '\0';
    if (next == '=') {
      ++i;  // '==' comparison
      continue;
    }
    if (prev == '=' || prev == '!') continue;  // second char of == / !=
    if (prev == '<' || prev == '>') {
      // <= / >= are comparisons; <<= / >>= are assignments.
      if (prev2 == prev) return true;
      continue;
    }
    if (prev == '+' || prev == '-' || prev == '*' || prev == '/' ||
        prev == '%' || prev == '&' || prev == '|' || prev == '^')
      return true;  // compound assignment
    return true;    // plain assignment
  }
  return false;
}

/// Extract the first macro argument starting at the '(' at `open`;
/// returns the argument text and sets `ok` false on unbalanced input.
std::string first_macro_arg(std::string_view text, std::size_t open,
                            bool& ok) {
  int depth = 0;
  std::size_t i = open;
  for (; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '(' || c == '[' || c == '{') {
      ++depth;
    } else if (c == ')' || c == ']' || c == '}') {
      --depth;
      if (depth == 0) return std::string(text.substr(open + 1, i - open - 1));
    } else if (c == ',' && depth == 1) {
      return std::string(text.substr(open + 1, i - open - 1));
    }
  }
  ok = false;
  return {};
}

// --- shared machinery for the v3 flow-sensitive passes ------------------

/// Identifier beginning exactly at `pos`; empty when none starts there.
std::string_view ident_starting(std::string_view text, std::size_t pos) {
  std::size_t e = pos;
  while (e < text.size() && ident_char(text[e])) ++e;
  return text.substr(pos, e - pos);
}

/// 64-bit integer spellings: a local of one of these types carries
/// element-weight sums / SFC key values in the modules the overflow pass
/// scans, so it is treated as K/Ne-scaled from its declaration on.
bool wide_int_type(std::string_view type) {
  static const char* const kWide[] = {
      "std::int64_t", "int64_t",       "long",          "long long",
      "unsigned long", "unsigned long long", "std::size_t", "size_t",
      "std::uint64_t", "uint64_t",     "std::ptrdiff_t", "ptrdiff_t",
      "graph::weight", "sfp::graph::weight", "weight",
      "std::streamsize", "std::streamoff"};
  for (const char* w : kWide)
    if (type == w) return true;
  return false;
}

/// 32-bit-or-smaller integer spellings (narrowing targets).
bool narrow_int_type(std::string_view type) {
  static const char* const kNarrow[] = {
      "int",           "std::int32_t", "int32_t",  "unsigned",
      "unsigned int",  "std::uint32_t", "uint32_t", "short",
      "unsigned short", "std::int16_t", "std::uint16_t",
      "graph::vid",    "sfp::graph::vid", "vid"};
  for (const char* w : kNarrow)
    if (type == w) return true;
  return false;
}

/// True when the token occurrence at `pos` is a member of some other
/// object (`obj.name` / `obj->name`), not the tracked local itself.
bool member_occurrence(std::string_view stmt, std::size_t pos) {
  return pos > 0 &&
         (stmt[pos - 1] == '.' ||
          (pos > 1 && stmt[pos - 1] == '>' && stmt[pos - 2] == '-'));
}

/// True when some occurrence of `name` in `expr` flows its *value* into
/// the surrounding expression: not a member of another object, not a
/// subscript index (`arr[name]` selects an element, it does not scale
/// it), and not a bare comparison operand (`name > 0 ? ...` produces a
/// bool). This is what keeps the overflow taint from leaking through
/// indexing and range checks.
bool value_mention(std::string_view expr, std::string_view name) {
  std::size_t pos = 0;
  while ((pos = find_token(expr, name, pos)) != std::string_view::npos) {
    const std::size_t occ = pos;
    pos += name.size();
    if (member_occurrence(expr, occ)) continue;
    int depth = 0;
    for (std::size_t i = 0; i < occ; ++i) {
      if (expr[i] == '[') ++depth;
      else if (expr[i] == ']') --depth;
    }
    if (depth > 0) continue;  // subscript index
    std::size_t a = occ;
    while (a > 0 && (expr[a - 1] == ' ' || expr[a - 1] == '\t')) --a;
    if (a > 0 && (expr[a - 1] == '<' || expr[a - 1] == '>')) continue;
    if (a > 1 && expr[a - 1] == '=' &&
        (expr[a - 2] == '=' || expr[a - 2] == '!' || expr[a - 2] == '<' ||
         expr[a - 2] == '>'))
      continue;
    std::size_t b = occ + name.size();
    while (b < expr.size() && (expr[b] == ' ' || expr[b] == '\t')) ++b;
    if (b < expr.size()) {
      const char c = expr[b];
      const char next = b + 1 < expr.size() ? expr[b + 1] : '\0';
      if ((c == '=' || c == '!') && next == '=') continue;
      if (c == '<' || c == '>' || c == '?') continue;
    }
    return true;
  }
  return false;
}

/// True when `stmt` assigns `name` (`name =`, `name +=`, ..., `name <<=`).
bool assigns_var(std::string_view stmt, std::string_view name) {
  std::size_t pos = 0;
  while ((pos = find_token(stmt, name, pos)) != std::string_view::npos) {
    if (member_occurrence(stmt, pos)) {
      pos += name.size();
      continue;
    }
    std::size_t p = pos + name.size();
    while (p < stmt.size() && (stmt[p] == ' ' || stmt[p] == '\t')) ++p;
    if (p < stmt.size()) {
      const char c = stmt[p];
      const char next = p + 1 < stmt.size() ? stmt[p + 1] : '\0';
      if (c == '=' && next != '=') return true;
      if ((c == '+' || c == '-' || c == '*' || c == '/' || c == '%' ||
           c == '&' || c == '|' || c == '^') &&
          next == '=')
        return true;
      if ((c == '<' || c == '>') && next == c && p + 2 < stmt.size() &&
          stmt[p + 2] == '=')
        return true;
    }
    pos = p;
  }
  return false;
}

/// Occurrences of `name` in `stmt` that read its value: not an assignment
/// target, not the argument of std::move/std::forward, not the receiver
/// of a reinitializing member call, and not the declaration itself
/// (`skip_at` = the declaring occurrence's offset within `stmt`, or npos).
bool reads_var(std::string_view stmt, std::string_view name,
               std::size_t skip_at = std::string_view::npos) {
  std::size_t pos = 0;
  while ((pos = find_token(stmt, name, pos)) != std::string_view::npos) {
    const std::size_t occurrence = pos;
    pos += name.size();
    if (occurrence == skip_at) continue;
    if (member_occurrence(stmt, occurrence)) continue;
    std::size_t p = occurrence + name.size();
    while (p < stmt.size() && (stmt[p] == ' ' || stmt[p] == '\t')) ++p;
    // Assignment target (plain `=`; compound ops read too, so they count).
    if (p < stmt.size() && stmt[p] == '=' &&
        (p + 1 >= stmt.size() || stmt[p + 1] != '='))
      continue;
    // Receiver of a reinitializing member call.
    bool reinit = false;
    for (const char* m : {".reset(", ".clear(", ".assign("})
      if (stmt.compare(p, std::string_view(m).size(), m) == 0) reinit = true;
    if (reinit) continue;
    // Argument of std::move / std::forward<T>.
    std::size_t q = occurrence;
    while (q > 0 && (stmt[q - 1] == ' ' || stmt[q - 1] == '\t')) --q;
    if (q > 0 && stmt[q - 1] == '(') {
      std::size_t r = q - 1;
      while (r > 0 && (stmt[r - 1] == ' ' || stmt[r - 1] == '\t')) --r;
      if (r > 0 && stmt[r - 1] == '>') {  // forward<T>(
        int depth = 0;
        while (r > 0) {
          if (stmt[r - 1] == '>') ++depth;
          else if (stmt[r - 1] == '<' && --depth == 0) { --r; break; }
          --r;
        }
      }
      std::size_t e = r;
      while (e > 0 && ident_char(stmt[e - 1])) --e;
      const std::string_view callee = stmt.substr(e, r - e);
      if (callee == "move" || callee == "forward") continue;
    }
    return true;
  }
  return false;
}

/// True when `stmt` contains `std::move(name)` / `std::forward<..>(name)`
/// with exactly `name` as the argument.
bool moves_var(std::string_view stmt, std::string_view name) {
  for (const char* fn : {"move", "forward"}) {
    std::size_t pos = 0;
    while ((pos = find_token(stmt, fn, pos)) != std::string_view::npos) {
      std::size_t p = pos + std::string_view(fn).size();
      if (p < stmt.size() && stmt[p] == '<') {  // forward<T>
        int depth = 0;
        for (; p < stmt.size(); ++p) {
          if (stmt[p] == '<') ++depth;
          else if (stmt[p] == '>' && --depth == 0) { ++p; break; }
        }
      }
      while (p < stmt.size() && (stmt[p] == ' ' || stmt[p] == '\t')) ++p;
      if (p >= stmt.size() || stmt[p] != '(') { pos = p; continue; }
      ++p;
      while (p < stmt.size() && (stmt[p] == ' ' || stmt[p] == '\t')) ++p;
      if (stmt.compare(p, name.size(), name) == 0 &&
          (p == 0 || !ident_char(stmt[p - 1]))) {
        std::size_t q = p + name.size();
        if (q < stmt.size() && ident_char(stmt[q])) { pos = q; continue; }
        while (q < stmt.size() && (stmt[q] == ' ' || stmt[q] == '\t')) ++q;
        if (q < stmt.size() && stmt[q] == ')') return true;
      }
      pos = p;
    }
  }
  return false;
}

/// The variable receiving the first top-level `=` of `stmt` whose
/// right-hand side contains byte offset `rhs_pos`; empty when `rhs_pos`
/// is not on the right of an assignment.
std::string_view assigned_lhs(std::string_view stmt, std::size_t rhs_pos) {
  int depth = 0;
  std::size_t eq = std::string_view::npos;
  for (std::size_t i = 0; i < rhs_pos && i < stmt.size(); ++i) {
    const char c = stmt[i];
    if (c == '(' || c == '[' || c == '{') ++depth;
    else if (c == ')' || c == ']' || c == '}') --depth;
    else if (c == '=' && depth == 0) {
      const char prev = i > 0 ? stmt[i - 1] : '\0';
      const char next = i + 1 < stmt.size() ? stmt[i + 1] : '\0';
      if (next == '=' || prev == '=' || prev == '!' || prev == '<' ||
          prev == '>')
        continue;
      eq = i;
      break;
    }
  }
  if (eq == std::string_view::npos) return {};
  std::size_t e = eq;
  while (e > 0 && (stmt[e - 1] == ' ' || stmt[e - 1] == '\t')) --e;
  std::size_t s = e;
  while (s > 0 && ident_char(stmt[s - 1])) --s;
  return stmt.substr(s, e - s);
}

/// Whole-token search in a whitespace-insensitive pattern match: true when
/// `cond` (with all whitespace removed) contains `var` followed by `op`
/// or `op` followed by `var`, with identifier boundaries around `var`.
bool cond_matches(std::string_view cond, std::string_view var,
                  std::string_view op, bool var_first) {
  std::string flat;
  flat.reserve(cond.size());
  for (const char c : cond)
    if (c != ' ' && c != '\t' && c != '\n') flat.push_back(c);
  const std::string pat = var_first ? std::string(var) + std::string(op)
                                    : std::string(op) + std::string(var);
  std::size_t pos = 0;
  while ((pos = flat.find(pat, pos)) != std::string::npos) {
    const std::size_t var_begin = var_first ? pos : pos + op.size();
    const std::size_t var_end = var_begin + var.size();
    const bool left_ok = var_begin == 0 || !ident_char(flat[var_begin - 1]);
    const bool right_ok = var_end >= flat.size() || !ident_char(flat[var_end]);
    if (left_ok && right_ok) return true;
    pos += 1;
  }
  return false;
}

/// Per-function context shared by the flow passes: the blanked file text
/// is cached per file (functions are ordered by file).
struct flow_ctx {
  const source_tree& tree;
  const call_graph& graph;
  int cached_file = -1;
  std::string blanked;

  std::string_view text_of(const function_def& fn) {
    if (fn.file != cached_file) {
      blanked = blank_preprocessor(
          tree.files[static_cast<std::size_t>(fn.file)].stripped);
      cached_file = fn.file;
    }
    return blanked;
  }
  const source_file& file_of(const function_def& fn) const {
    return tree.files[static_cast<std::size_t>(fn.file)];
  }
  static std::string_view node_text(std::string_view text,
                                    const cfg_node& n) {
    return text.substr(n.begin, n.end - n.begin);
  }
};

}  // namespace

bool operator<(const finding& a, const finding& b) {
  return std::tie(a.file, a.line, a.rule, a.message) <
         std::tie(b.file, b.line, b.rule, b.message);
}

bool operator==(const finding& a, const finding& b) {
  return std::tie(a.file, a.line, a.rule, a.message) ==
         std::tie(b.file, b.line, b.rule, b.message);
}

std::vector<finding> check_layering(const module_graph& g,
                                    const layering_manifest& manifest) {
  std::vector<finding> out;

  const std::vector<std::string> cycle = find_include_cycle(g);
  if (!cycle.empty()) {
    std::string path_str;
    for (std::size_t i = 0; i < cycle.size(); ++i)
      path_str += (i ? " -> " : "") + cycle[i];
    // Anchor the report at one edge of the cycle for clickable provenance.
    finding f;
    f.rule = "layering-cycle";
    f.message = "include cycle between src modules: " + path_str;
    for (const auto& e : g.edges) {
      if (e.from_module == cycle[0] && e.to_module == cycle[1]) {
        f.file = e.file;
        f.line = e.line;
        break;
      }
    }
    out.push_back(std::move(f));
  }

  std::set<std::string> unknown_reported;
  for (const auto& e : g.edges) {
    for (const std::string& m : {e.from_module, e.to_module}) {
      if (manifest.known(m) || !unknown_reported.insert(m).second) continue;
      finding f;
      f.rule = "layering-unknown";
      f.file = e.file;
      f.line = e.line;
      f.message = "module '" + m +
                  "' is not declared in the layering manifest; add it to "
                  "tools/layering.json";
      out.push_back(std::move(f));
    }
    if (!manifest.known(e.from_module) || !manifest.known(e.to_module))
      continue;

    bool allowed;
    if (manifest.is_sink(e.from_module)) {
      allowed = manifest.sink_may_include(e.from_module, e.to_module);
    } else if (manifest.is_sink(e.to_module)) {
      allowed = true;  // sinks are includable from anywhere
    } else {
      // Strictly lower layers plus same-group peers; the cycle pass guards
      // against peer edges degenerating into a loop.
      allowed = manifest.rank_of(e.to_module) <= manifest.rank_of(e.from_module);
    }
    if (allowed) continue;
    finding f;
    f.rule = "layering";
    f.file = e.file;
    f.line = e.line;
    f.message = "include of \"" + e.target + "\" breaks the layering: '" +
                e.from_module + "' may not depend on '" + e.to_module + "'";
    out.push_back(std::move(f));
  }
  return out;
}

std::vector<finding> check_determinism(const source_tree& tree,
                                       const pass_options& opts) {
  std::vector<finding> out;
  const auto flag = [&out](const source_file& f, int line, std::string msg) {
    finding v;
    v.rule = "determinism";
    v.file = f.path;
    v.line = line;
    v.message = std::move(msg);
    out.push_back(std::move(v));
  };
  static const char* const kUnseededEngines[] = {
      "mt19937",     "mt19937_64",          "minstd_rand", "minstd_rand0",
      "ranlux24",    "ranlux48",            "knuth_b",     "default_random_engine"};
  for (const auto& f : tree.files) {
    if (f.tree != "src" || !module_in(f.module, opts.determinism_modules))
      continue;
    for (int ln = 1; ln <= f.num_lines(); ++ln) {
      const std::string_view line = f.line(ln);
      for (const char* call : {"rand", "srand"})
        if (find_free_call(line, call) != std::string_view::npos)
          flag(f, ln,
               std::string(call) +
                   "() is nondeterministic global state; take an explicit "
                   "sfp::rng instead");
      if (find_token(line, "random_device") != std::string_view::npos)
        flag(f, ln,
             "std::random_device breaks run-to-run reproducibility; seed an "
             "explicit sfp::rng instead");
      if (find_free_call(line, "time") != std::string_view::npos)
        flag(f, ln,
             "wall-clock seeding/time() makes partitions irreproducible; "
             "thread timestamps through parameters instead");
      for (const char* engine : kUnseededEngines) {
        std::size_t pos = find_token(line, engine);
        if (pos == std::string_view::npos) continue;
        // `std::mt19937 name;` or `std::mt19937 name{};` — a declaration
        // with no explicit seed.
        std::size_t p = pos + std::string_view(engine).size();
        while (p < line.size() && line[p] == ' ') ++p;
        const std::size_t name_start = p;
        while (p < line.size() && ident_char(line[p])) ++p;
        if (p == name_start) continue;  // not a declaration
        while (p < line.size() && line[p] == ' ') ++p;
        const bool plain = p < line.size() && line[p] == ';';
        const bool braced = p + 1 < line.size() && line[p] == '{' &&
                            (line[p + 1] == '}' ||
                             (line[p + 1] == ' ' && p + 2 < line.size() &&
                              line[p + 2] == '}'));
        if (plain || braced)
          flag(f, ln,
               std::string("unseeded std::") + engine +
                   " hides the seeding decision; construct with an explicit "
                   "seed or use sfp::rng");
      }
    }
  }
  return out;
}

std::vector<finding> check_contract_discipline(const source_tree& tree,
                                               const pass_options& opts) {
  std::vector<finding> out;
  for (const auto& f : tree.files) {
    if (f.tree != "src") continue;
    const std::string_view text = f.stripped;

    // (1) Purity of SFP_* conditions: the expression vanishes at lower
    // tiers, so any side effect changes behaviour between builds.
    for (const char* macro : {"SFP_REQUIRE", "SFP_ASSERT", "SFP_AUDIT"}) {
      std::size_t pos = 0;
      while ((pos = find_token(text, macro, pos)) != std::string_view::npos) {
        std::size_t open = pos + std::string_view(macro).size();
        while (open < text.size() &&
               (text[open] == ' ' || text[open] == '\t' ||
                text[open] == '\n'))
          ++open;
        if (open >= text.size() || text[open] != '(') {
          pos = open;
          continue;
        }
        bool ok = true;
        const std::string cond = first_macro_arg(text, open, ok);
        if (ok && has_side_effect(cond)) {
          finding v;
          v.rule = "contract-purity";
          v.file = f.path;
          v.line = f.line_of(pos);
          v.message = std::string(macro) +
                      " condition has a side effect; contract conditions "
                      "must be pure (they compile out at lower tiers)";
          out.push_back(std::move(v));
        }
        pos = open;
      }
    }

    // (2) throw in src/runtime outside the designated failure paths.
    if (f.module == "runtime" && !path_in(f.path, opts.throw_allowed_files)) {
      std::size_t pos = 0;
      while ((pos = find_token(text, "throw", pos)) !=
             std::string_view::npos) {
        finding v;
        v.rule = "runtime-throw";
        v.file = f.path;
        v.line = f.line_of(pos);
        v.message =
            "throw in the runtime hot path; route failures through the "
            "designated failure-path files (world.cpp, fault.cpp, "
            "reliable.cpp)";
        out.push_back(std::move(v));
        pos += 5;
      }
    }

    // (3) SFP_AUDIT inside a loop in a header: the audit tier is meant for
    // module boundaries, not per-iteration checks inlined everywhere.
    if (f.is_header) {
      bool pending_loop = false;
      int paren_depth = 0;
      std::vector<bool> brace_is_loop;
      int loop_depth = 0;
      for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (ident_char(c)) {
          std::size_t end = i;
          while (end < text.size() && ident_char(text[end])) ++end;
          const std::string_view word = text.substr(i, end - i);
          const bool boundary = i == 0 || !ident_char(text[i - 1]);
          if (boundary && (word == "for" || word == "while" || word == "do"))
            pending_loop = true;
          if (boundary &&
              (word == "SFP_AUDIT" || word == "SFP_AUDIT_DIAG") &&
              loop_depth > 0) {
            finding v;
            v.rule = "audit-header-loop";
            v.file = f.path;
            v.line = f.line_of(i);
            v.message =
                "SFP_AUDIT inside a header-inlined loop runs per iteration "
                "in every audit build; hoist it to the loop boundary or "
                "move the loop to a .cpp";
            out.push_back(std::move(v));
          }
          i = end - 1;
          continue;
        }
        if (c == '(') {
          ++paren_depth;
        } else if (c == ')') {
          --paren_depth;
        } else if (c == ';' && paren_depth == 0) {
          pending_loop = false;  // statement-form body / do-while tail
        } else if (c == '{') {
          brace_is_loop.push_back(pending_loop);
          loop_depth += pending_loop ? 1 : 0;
          pending_loop = false;
        } else if (c == '}' && !brace_is_loop.empty()) {
          loop_depth -= brace_is_loop.back() ? 1 : 0;
          brace_is_loop.pop_back();
        }
      }
    }
  }
  return out;
}

std::vector<finding> check_header_hygiene(const source_tree& tree) {
  std::vector<finding> out;
  for (const auto& f : tree.files) {
    if (!f.is_header) continue;
    bool found = false;
    bool ok = false;
    for (int ln = 1; ln <= f.num_lines() && !found; ++ln) {
      std::string_view line = f.line(ln);
      while (!line.empty() && (line.front() == ' ' || line.front() == '\t'))
        line.remove_prefix(1);
      while (!line.empty() && (line.back() == ' ' || line.back() == '\t' ||
                               line.back() == '\r'))
        line.remove_suffix(1);
      if (line.empty()) continue;
      found = true;
      ok = line == "#pragma once" || line == "#pragma  once";
    }
    if (!ok) {
      finding v;
      v.rule = "pragma-once";
      v.file = f.path;
      v.line = 1;
      v.message =
          "header must open with #pragma once before any other code";
      out.push_back(std::move(v));
    }
  }
  return out;
}

std::vector<finding> check_blocking_calls(const source_tree& tree,
                                          const pass_options& opts) {
  std::vector<finding> out;
  static const char* const kPatterns[] = {".recv(", ".barrier(",
                                          ".allreduce_", "world::recv"};
  for (const auto& f : tree.files) {
    if (!path_under(f.path, opts.blocking_trees) &&
        !path_in(f.path, opts.blocking_extra_files))
      continue;
    if (path_in(f.path, opts.blocking_allowed_files)) continue;
    for (int ln = 1; ln <= f.num_lines(); ++ln) {
      const std::string_view line = f.line(ln);
      for (const char* pat : kPatterns) {
        if (line.find(pat) == std::string_view::npos) continue;
        finding v;
        v.rule = "blocking";
        v.file = f.path;
        v.line = ln;
        v.message =
            "bare blocking world call outside the timeout-aware wrappers; "
            "route through seam::exchange or annotate why a hang is "
            "impossible";
        out.push_back(std::move(v));
        break;
      }
    }
  }
  return out;
}

std::vector<finding> check_raw_assert(const source_tree& tree) {
  std::vector<finding> out;
  for (const auto& f : tree.files) {
    if (f.tree != "src" && f.tree != "bench" && f.tree != "tools") continue;
    for (int ln = 1; ln <= f.num_lines(); ++ln) {
      const std::string_view line = f.line(ln);
      const bool include_hit =
          line.find("<cassert>") != std::string_view::npos ||
          line.find("\"assert.h\"") != std::string_view::npos ||
          line.find("<assert.h>") != std::string_view::npos;
      // `static_assert` never matches: the preceding '_' is an ident char.
      const bool call_hit =
          find_free_call(line, "assert") != std::string_view::npos;
      if (!include_hit && !call_hit) continue;
      finding v;
      v.rule = "raw-assert";
      v.file = f.path;
      v.line = ln;
      v.message =
          "raw assert() vanishes under NDEBUG with no diagnostics; use "
          "SFP_REQUIRE/SFP_ASSERT/SFP_AUDIT from util/contract.hpp";
      out.push_back(std::move(v));
    }
  }
  return out;
}

std::vector<finding> check_retry_backoff(const source_tree& tree,
                                         const pass_options& opts) {
  std::vector<finding> out;
  static const char* const kRetryTokens[] = {"retransmit", "retry", "resend"};
  for (const auto& f : tree.files) {
    if (!path_under(f.path, opts.retry_trees)) continue;
    const std::string_view text = f.stripped;
    std::size_t pos = 0;
    while (pos < text.size()) {
      // Find the next loop keyword.
      std::size_t best = std::string_view::npos;
      for (const char* kw : {"while", "for", "do"}) {
        const std::size_t p = find_token(text, kw, pos);
        if (p < best) best = p;
      }
      if (best == std::string_view::npos) break;
      std::size_t cursor = best;
      // Skip past the keyword and any parenthesized header (for/while).
      while (cursor < text.size() && ident_char(text[cursor])) ++cursor;
      while (cursor < text.size() &&
             (text[cursor] == ' ' || text[cursor] == '\t' ||
              text[cursor] == '\n'))
        ++cursor;
      std::size_t header_end = cursor;
      if (cursor < text.size() && text[cursor] == '(') {
        int depth = 0;
        for (; cursor < text.size(); ++cursor) {
          if (text[cursor] == '(') ++depth;
          else if (text[cursor] == ')' && --depth == 0) { ++cursor; break; }
        }
        header_end = cursor;
        while (cursor < text.size() &&
               (text[cursor] == ' ' || text[cursor] == '\t' ||
                text[cursor] == '\n'))
          ++cursor;
      }
      // Capture the loop body: braced block or single statement.
      std::size_t body_end = cursor;
      if (cursor < text.size() && text[cursor] == '{') {
        int depth = 0;
        for (; body_end < text.size(); ++body_end) {
          if (text[body_end] == '{') ++depth;
          else if (text[body_end] == '}' && --depth == 0) { ++body_end; break; }
        }
      } else {
        while (body_end < text.size() && text[body_end] != ';') ++body_end;
      }
      const std::string_view region =
          text.substr(best, body_end - best);
      bool retries = false;
      for (const char* tok : kRetryTokens)
        if (region.find(tok) != std::string_view::npos) retries = true;
      if (retries && region.find("backoff") == std::string_view::npos) {
        finding v;
        v.rule = "retry-backoff";
        v.file = f.path;
        v.line = f.line_of(best);
        v.message =
            "retry loop without backoff: a tight retransmit loop hammers a "
            "fabric that is already degraded; scale the delay per attempt "
            "(see reliable_options::max_backoff)";
        out.push_back(std::move(v));
      }
      // Recurse into the region by resuming just past the keyword, so
      // nested loops are inspected independently.
      pos = header_end;
    }
  }
  return out;
}

std::vector<finding> check_transport_discipline(
    const source_tree& tree, const layering_manifest& manifest) {
  std::vector<finding> out;
  if (manifest.fabric_module.empty()) return out;
  for (const auto& f : tree.files) {
    if (f.tree != "src" || f.module == manifest.fabric_module) continue;
    const std::string_view text = f.stripped;
    for (const std::string& type : manifest.fabric_types) {
      const std::string qualified = manifest.fabric_module + "::" + type;
      std::size_t pos = 0;
      while ((pos = find_token(text, qualified, pos)) !=
             std::string_view::npos) {
        std::size_t p = pos + qualified.size();
        while (p < text.size() &&
               (text[p] == ' ' || text[p] == '\t' || text[p] == '\n'))
          ++p;
        // A construction is the qualified type followed by an argument list
        // (a temporary / new-expression) or by a variable name and then an
        // argument list. Nested-name uses (world::options), references,
        // pointers, and template arguments all fail this shape and pass.
        bool constructed =
            p < text.size() && (text[p] == '(' || text[p] == '{');
        if (!constructed) {
          const std::size_t name_start = p;
          while (p < text.size() && ident_char(text[p])) ++p;
          if (p > name_start) {
            while (p < text.size() &&
                   (text[p] == ' ' || text[p] == '\t' || text[p] == '\n'))
              ++p;
            constructed =
                p < text.size() && (text[p] == '(' || text[p] == '{');
          }
        }
        if (constructed) {
          finding v;
          v.rule = "transport-discipline";
          v.file = f.path;
          v.line = f.line_of(pos);
          v.message = "direct construction of " + qualified + " outside '" +
                      manifest.fabric_module +
                      "'; build fabrics through the designated runner entry "
                      "points (seam::run_distributed*) so every construction "
                      "site stays auditable";
          out.push_back(std::move(v));
        }
        pos += qualified.size();
      }
    }
  }
  return out;
}

const std::vector<rule_info>& rule_catalogue() {
  // Single source of truth: --list-rules, run_all() suppressibility and
  // the docs rule table all derive from this list.
  static const std::vector<rule_info> catalogue = {
      {"layering-cycle", "include cycle between src/ modules", false},
      {"layering-unknown",
       "src/ module absent from tools/layering.json", false},
      {"layering", "include edge violates the declared layer order", true},
      {"determinism",
       "rand/time/random_device/unseeded engine in partitioner modules",
       true},
      {"determinism-transitive",
       "partitioner-module call chain reaches a nondeterminism source",
       true},
      {"contract-purity",
       "side-effectful expression inside an SFP_* condition", true},
      {"runtime-throw",
       "throw in src/runtime outside the designated failure paths", true},
      {"audit-header-loop",
       "SFP_AUDIT inside a header-inlined loop", true},
      {"pragma-once", "header does not open with #pragma once", true},
      {"blocking",
       "bare blocking world call outside the timeout-aware wrappers", true},
      {"blocking-while-locked",
       "blocking call reachable while a mutex is held, outside the "
       "designated wait sites",
       true},
      {"lock-order",
       "cycle in the whole-repo acquired-while-held lock-order graph",
       true},
      {"unchecked-status",
       "bool/status return of a transport call dropped as a bare statement",
       true},
      {"raw-assert", "raw assert()/<cassert> in library code", true},
      {"retry-backoff", "retry/retransmit loop without backoff", true},
      {"transport-discipline",
       "fabric type constructed outside the designated runner entry points",
       true},
      {"overflow-arith",
       "unchecked product of two K/Ne-scaled 64-bit values, or a scaled "
       "value narrowed to 32 bits without a cast",
       true},
      {"resource-leak",
       "descriptor acquired in src/runtime can reach function exit "
       "unclosed on an early-return/exception path",
       true},
      {"use-after-move",
       "moved-from local read on a path before it is reassigned", true},
      {"suppression-format",
       "lint suppression tag deviates from `lint: <slug>-ok — <reason>`",
       true},
  };
  return catalogue;
}

const rule_info* rule_by_slug(std::string_view slug) {
  for (const rule_info& r : rule_catalogue())
    if (slug == r.slug) return &r;
  return nullptr;
}

lock_order_graph build_lock_order_graph(const source_tree& tree,
                                        const call_graph& graph,
                                        const concurrency_model& model) {
  lock_order_graph g;
  g.mutexes = model.mutex_names;
  // Collect edges with one witness each; (from, to) deduped keeping the
  // first witness. Self-edges are dropped: the file-scoped identity
  // aliases same-named members of different instances (lock-sharded
  // registries), and "A before A" is re-entrancy, not ordering.
  std::map<std::pair<int, int>, lock_edge> edges;
  const auto add_edge = [&edges](int from, int to, const std::string& file,
                                 int line) {
    if (from == to) return;
    const auto key = std::make_pair(from, to);
    if (edges.count(key) > 0) return;
    lock_edge e;
    e.from = from;
    e.to = to;
    e.file = file;
    e.line = line;
    edges.emplace(key, std::move(e));
  };
  for (std::size_t fn = 0; fn < graph.functions.size(); ++fn) {
    const std::string& path =
        tree.files[static_cast<std::size_t>(graph.functions[fn].file)].path;
    for (const int ai : model.acquisitions_of[fn]) {
      const lock_acquisition& a =
          model.acquisitions[static_cast<std::size_t>(ai)];
      // Later acquisitions inside the hold range.
      for (const int bi : model.acquisitions_of[fn]) {
        const lock_acquisition& b =
            model.acquisitions[static_cast<std::size_t>(bi)];
        if (b.pos > a.pos && b.pos < a.hold_end)
          add_edge(a.mutex, b.mutex, path, b.line);
      }
      // Calls inside the hold range pull in the callee's lock closure.
      for (const int ci : graph.calls_of[fn]) {
        const call_site& c = graph.calls[static_cast<std::size_t>(ci)];
        if (c.pos <= a.pos || c.pos >= a.hold_end) continue;
        for (const int t : c.targets)
          for (const int mid :
               model.lock_closure[static_cast<std::size_t>(t)])
            add_edge(a.mutex, mid, path, c.line);
      }
    }
  }
  for (auto& [key, e] : edges) g.edges.push_back(std::move(e));

  // Cycle detection: iterative colored DFS, mirroring the include graph's.
  const int n = static_cast<int>(g.mutexes.size());
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
  for (const lock_edge& e : g.edges)
    adj[static_cast<std::size_t>(e.from)].push_back(e.to);
  std::vector<int> color(static_cast<std::size_t>(n), 0);  // 0/1/2
  std::vector<int> parent(static_cast<std::size_t>(n), -1);
  for (int s = 0; s < n && g.cycle.empty(); ++s) {
    if (color[static_cast<std::size_t>(s)] != 0) continue;
    std::vector<std::pair<int, std::size_t>> stack = {{s, 0}};
    color[static_cast<std::size_t>(s)] = 1;
    while (!stack.empty() && g.cycle.empty()) {
      auto& [v, next] = stack.back();
      if (next >= adj[static_cast<std::size_t>(v)].size()) {
        color[static_cast<std::size_t>(v)] = 2;
        stack.pop_back();
        continue;
      }
      const int w = adj[static_cast<std::size_t>(v)][next++];
      if (color[static_cast<std::size_t>(w)] == 0) {
        color[static_cast<std::size_t>(w)] = 1;
        parent[static_cast<std::size_t>(w)] = v;
        stack.emplace_back(w, 0);
      } else if (color[static_cast<std::size_t>(w)] == 1) {
        std::vector<std::string> cyc = {g.mutexes[static_cast<std::size_t>(w)]};
        for (int x = v; x != w && x != -1;
             x = parent[static_cast<std::size_t>(x)])
          cyc.push_back(g.mutexes[static_cast<std::size_t>(x)]);
        cyc.push_back(g.mutexes[static_cast<std::size_t>(w)]);
        std::reverse(cyc.begin() + 1, cyc.end() - 1);
        g.cycle = std::move(cyc);
      }
    }
  }
  return g;
}

std::vector<finding> check_determinism_transitive(
    const source_tree& tree, const call_graph& graph,
    const concurrency_model& model, const pass_options& opts) {
  std::vector<finding> out;
  for (std::size_t fn = 0; fn < graph.functions.size(); ++fn) {
    const source_file& f =
        tree.files[static_cast<std::size_t>(graph.functions[fn].file)];
    if (f.tree != "src" || !module_in(f.module, opts.determinism_modules))
      continue;
    for (const int ci : graph.calls_of[fn]) {
      const call_site& c = graph.calls[static_cast<std::size_t>(ci)];
      int tainted = -1;
      for (const int t : c.targets)
        if (model.nondet_transitively[static_cast<std::size_t>(t)]) {
          tainted = t;
          break;
        }
      if (tainted < 0) continue;
      finding v;
      v.rule = "determinism-transitive";
      v.file = f.path;
      v.line = c.line;
      v.message = "call to '" + c.written +
                  "' transitively reaches a nondeterminism source: " +
                  nondet_chain(tree, graph, model, tainted) +
                  "; partitioner results must be replayable from explicit "
                  "seeds";
      out.push_back(std::move(v));
    }
  }
  return out;
}

std::vector<finding> check_lock_order(const lock_order_graph& lock_graph) {
  std::vector<finding> out;
  if (lock_graph.cycle.empty()) return out;
  std::string path_str;
  for (std::size_t i = 0; i < lock_graph.cycle.size(); ++i)
    path_str += (i ? " -> " : "") + lock_graph.cycle[i];
  finding v;
  v.rule = "lock-order";
  v.message =
      "lock-order cycle (potential deadlock under the right interleaving): " +
      path_str + "; acquire these mutexes in one global order";
  // Anchor at the witness for the cycle's first edge.
  for (const lock_edge& e : lock_graph.edges) {
    if (lock_graph.mutexes[static_cast<std::size_t>(e.from)] ==
            lock_graph.cycle[0] &&
        lock_graph.mutexes[static_cast<std::size_t>(e.to)] ==
            lock_graph.cycle[1]) {
      v.file = e.file;
      v.line = e.line;
      break;
    }
  }
  out.push_back(std::move(v));
  return out;
}

std::vector<finding> check_blocking_while_locked(
    const source_tree& tree, const call_graph& graph,
    const concurrency_model& model, const pass_options& opts) {
  std::vector<finding> out;
  for (std::size_t fn = 0; fn < graph.functions.size(); ++fn) {
    const source_file& f =
        tree.files[static_cast<std::size_t>(graph.functions[fn].file)];
    if (f.tree != "src" || path_in(f.path, opts.wait_allowed_files))
      continue;
    for (const int ai : model.acquisitions_of[fn]) {
      const lock_acquisition& a =
          model.acquisitions[static_cast<std::size_t>(ai)];
      // Direct blocking sites inside the hold range.
      for (const int si : model.blocking_of[fn]) {
        const blocking_site& s =
            model.blocking[static_cast<std::size_t>(si)];
        if (s.pos <= a.pos || s.pos >= a.hold_end) continue;
        finding v;
        v.rule = "blocking-while-locked";
        v.file = f.path;
        v.line = s.line;
        v.message = "blocking call '" + s.what + "()' while holding '" +
                    a.expr +
                    "'; a stalled peer turns this into a held-lock hang — "
                    "move the wait to a designated wait site or drop the "
                    "lock first";
        out.push_back(std::move(v));
      }
      // Calls inside the hold range that transitively block.
      for (const int ci : graph.calls_of[fn]) {
        const call_site& c = graph.calls[static_cast<std::size_t>(ci)];
        if (c.pos <= a.pos || c.pos >= a.hold_end) continue;
        int blocker = -1;
        for (const int t : c.targets)
          if (model.blocks_transitively[static_cast<std::size_t>(t)]) {
            blocker = t;
            break;
          }
        if (blocker < 0) continue;
        finding v;
        v.rule = "blocking-while-locked";
        v.file = f.path;
        v.line = c.line;
        v.message = "call to '" + c.written + "' may block while holding '" +
                    a.expr + "' (" +
                    blocking_chain(tree, graph, model, blocker) +
                    "); a stalled peer turns this into a held-lock hang";
        out.push_back(std::move(v));
      }
    }
  }
  return out;
}

std::vector<finding> check_unchecked_status(const source_tree& tree,
                                            const pass_options& opts) {
  std::vector<finding> out;
  for (const auto& f : tree.files) {
    if (!path_under(f.path, opts.status_trees)) continue;
    const std::string_view text = f.stripped;
    for (const std::string& name : opts.status_call_names) {
      std::size_t pos = 0;
      while ((pos = find_token(text, name, pos)) != std::string_view::npos) {
        const std::size_t name_pos = pos;
        pos += name.size();
        std::size_t p = name_pos + name.size();
        while (p < text.size() && (text[p] == ' ' || text[p] == '\t')) ++p;
        if (p >= text.size() || text[p] != '(') continue;
        // Close of the argument list, then require `;` — the value hits
        // the floor only when the call is the whole statement.
        int depth = 0;
        std::size_t close = p;
        for (; close < text.size(); ++close) {
          if (text[close] == '(') ++depth;
          else if (text[close] == ')' && --depth == 0) break;
        }
        if (close >= text.size()) continue;
        std::size_t q = close + 1;
        while (q < text.size() &&
               (text[q] == ' ' || text[q] == '\t' || text[q] == '\n'))
          ++q;
        if (q >= text.size() || text[q] != ';') continue;
        // Walk back over the receiver chain to the start of the full
        // expression, then require statement position. `if (x.try_recv(`,
        // `ok = try_recv(`, `(void)try_recv(` all have a non-statement
        // character there and pass.
        std::size_t start = name_pos;
        while (start > 0) {
          const char c = text[start - 1];
          if (ident_char(c) || c == '.' || c == ':' || c == ']' ||
              c == '[') {
            --start;
            continue;
          }
          if (c == '>' && start > 1 && text[start - 2] == '-') {
            start -= 2;
            continue;
          }
          break;
        }
        std::size_t prev = start;
        while (prev > 0 && (text[prev - 1] == ' ' || text[prev - 1] == '\t' ||
                            text[prev - 1] == '\n' || text[prev - 1] == '\r'))
          --prev;
        const char before = prev == 0 ? ';' : text[prev - 1];
        if (before != ';' && before != '{' && before != '}') continue;
        finding v;
        v.rule = "unchecked-status";
        v.file = f.path;
        v.line = f.line_of(name_pos);
        v.message = "status return of '" + name +
                    "' dropped; a lost message becomes a silent hang — "
                    "branch on the result or cast to void with a reason";
        out.push_back(std::move(v));
      }
    }
  }
  return out;
}

std::vector<finding> check_overflow_arith(
    const source_tree& tree, const call_graph& graph,
    const std::vector<function_cfg>& cfgs, const pass_options& opts) {
  std::vector<finding> out;
  flow_ctx ctx{tree, graph, -1, {}};
  const auto seed_name = [&opts](std::string_view name) {
    for (const auto& s : opts.overflow_seed_names)
      if (name == s) return true;
    return false;
  };
  static const char* const kChecked[] = {
      "checked_mul", "checked_add", "__builtin_mul_overflow",
      "__builtin_add_overflow", "__int128"};

  for (std::size_t fi = 0; fi < graph.functions.size(); ++fi) {
    const function_def& fn = graph.functions[fi];
    const source_file& f = ctx.file_of(fn);
    if (f.tree != "src" || !module_in(f.module, opts.overflow_modules))
      continue;
    const std::string_view text = ctx.text_of(fn);
    const function_cfg& cfg = cfgs[fi];
    const std::vector<local_decl> locals = collect_locals(f, text, fn);
    if (locals.empty()) continue;

    // Statically scaled: 64-bit declared type, or a seed name (nparts).
    // Only scalar integer locals (or `auto`, which is usually deduced
    // from one) can carry the taint at all — a std::vector, a struct, or
    // a double mentioned in an expression does not make its *value* a
    // K-scaled integer, and float arithmetic cannot wrap int64.
    std::vector<char> statically_scaled(locals.size(), 0);
    std::vector<char> taint_eligible(locals.size(), 0);
    for (std::size_t v = 0; v < locals.size(); ++v) {
      if (locals[v].pointer) continue;
      if (wide_int_type(locals[v].type) || narrow_int_type(locals[v].type) ||
          locals[v].type == "auto")
        taint_eligible[v] = 1;
      if (taint_eligible[v] != 0 &&
          (wide_int_type(locals[v].type) || seed_name(locals[v].name)))
        statically_scaled[v] = 1;
    }

    const auto local_index = [&locals](std::string_view name) {
      for (std::size_t v = 0; v < locals.size(); ++v)
        if (locals[v].name == name) return static_cast<int>(v);
      return -1;
    };

    // Forward may-analysis: fact v = "local v holds a K/Ne-scaled value".
    // The transfer of an assignment depends on the in-state (is the RHS
    // scaled *here*?), so the gen/kill sets are re-derived from the last
    // round's states until they stabilize — chaotic iteration with the
    // plain gen/kill solver underneath.
    dataflow_problem p;
    p.num_facts = static_cast<int>(locals.size());
    p.forward = true;
    p.may = true;
    p.boundary.assign(locals.size(), 0);
    for (std::size_t v = 0; v < locals.size(); ++v)
      if (statically_scaled[v] != 0) p.boundary[v] = 1;
    p.gen = make_fact_sets(cfg, p.num_facts);
    p.kill = make_fact_sets(cfg, p.num_facts);
    dataflow_result states;

    const auto stmt_mentions_scaled =
        [&](std::string_view stmt, std::string_view except,
            const std::vector<char>& scaled_here) {
          for (std::size_t v = 0; v < locals.size(); ++v) {
            if (locals[v].name == except) continue;
            if (statically_scaled[v] == 0 && scaled_here[v] == 0) continue;
            if (value_mention(stmt, locals[v].name)) return true;
          }
          return false;
        };

    const std::vector<char> no_facts(locals.size(), 0);
    for (int round = 0; round < 4; ++round) {
      bool changed = false;
      for (std::size_t n = 0; n < cfg.nodes.size(); ++n) {
        const std::string_view stmt = flow_ctx::node_text(text, cfg.nodes[n]);
        if (stmt.empty()) continue;
        const std::vector<char>& here =
            round == 0 ? no_facts : states.in[n];
        for (std::size_t v = 0; v < locals.size(); ++v) {
          if (taint_eligible[v] == 0) continue;
          if (statically_scaled[v] != 0) continue;  // scaled by type, always
          if (!assigns_var(stmt, locals[v].name)) continue;
          const char g =
              stmt_mentions_scaled(stmt, locals[v].name, here) ? 1 : 0;
          const char k = static_cast<char>(1 - g);
          if (p.gen[n][v] != g || p.kill[n][v] != k) changed = true;
          p.gen[n][v] = g;
          p.kill[n][v] = k;
        }
      }
      if (round > 0 && !changed) break;
      states = solve_dataflow(cfg, p);
    }

    // Is the primary expression ending just before `pos` (an identifier,
    // a parenthesized group, or a static_cast) scaled in `state`?
    const auto operand_scaled_left = [&](std::string_view stmt,
                                         std::size_t star,
                                         const std::vector<char>& state,
                                         std::string* spelling) {
      std::size_t i = star;
      while (i > 0 && (stmt[i - 1] == ' ' || stmt[i - 1] == '\t')) --i;
      if (i == 0) return false;
      if (stmt[i - 1] == ')') {  // parenthesized group
        int depth = 0;
        std::size_t j = i;
        while (j > 0) {
          if (stmt[j - 1] == ')') ++depth;
          else if (stmt[j - 1] == '(' && --depth == 0) { --j; break; }
          --j;
        }
        const std::string_view group = stmt.substr(j, i - j);
        *spelling = std::string(group);
        for (std::size_t v = 0; v < locals.size(); ++v)
          if ((statically_scaled[v] != 0 || state[v] != 0) &&
              find_token(group, locals[v].name) != std::string_view::npos)
            return true;
        for (const auto& s : opts.overflow_seed_names)
          if (find_token(group, s) != std::string_view::npos) return true;
        return false;
      }
      if (!ident_char(stmt[i - 1]) ||
          std::isdigit(static_cast<unsigned char>(stmt[i - 1])) != 0)
        return false;
      std::size_t j = i;
      while (j > 0 && ident_char(stmt[j - 1])) --j;
      if (std::isdigit(static_cast<unsigned char>(stmt[j])) != 0)
        return false;  // numeric literal
      const std::string_view name = stmt.substr(j, i - j);
      *spelling = std::string(name);
      const int v = local_index(name);
      if (v >= 0 && (statically_scaled[v] != 0 || state[v] != 0))
        return true;
      return seed_name(name);
    };
    const auto operand_scaled_right = [&](std::string_view stmt,
                                          std::size_t star,
                                          const std::vector<char>& state,
                                          std::string* spelling) {
      std::size_t i = star + 1;
      while (i < stmt.size() && (stmt[i] == ' ' || stmt[i] == '\t')) ++i;
      if (i >= stmt.size()) return false;
      std::string_view rest = stmt.substr(i);
      // static_cast<T>(expr): the cast does not change scaledness.
      if (rest.compare(0, 11, "static_cast") == 0) {
        std::size_t j = i + 11;
        int depth = 0;
        for (; j < stmt.size(); ++j) {
          if (stmt[j] == '<') ++depth;
          else if (stmt[j] == '>' && --depth == 0) { ++j; break; }
        }
        while (j < stmt.size() && (stmt[j] == ' ' || stmt[j] == '\t')) ++j;
        i = j;
        rest = stmt.substr(i);
      }
      if (i < stmt.size() && stmt[i] == '(') {
        int depth = 0;
        std::size_t j = i;
        for (; j < stmt.size(); ++j) {
          if (stmt[j] == '(') ++depth;
          else if (stmt[j] == ')' && --depth == 0) { ++j; break; }
        }
        const std::string_view group = stmt.substr(i, j - i);
        *spelling = std::string(group);
        for (std::size_t v = 0; v < locals.size(); ++v)
          if ((statically_scaled[v] != 0 || state[v] != 0) &&
              find_token(group, locals[v].name) != std::string_view::npos)
            return true;
        for (const auto& s : opts.overflow_seed_names)
          if (find_token(group, s) != std::string_view::npos) return true;
        return false;
      }
      if (std::isdigit(static_cast<unsigned char>(stmt[i])) != 0)
        return false;
      const std::string_view name = ident_starting(stmt, i);
      if (name.empty()) return false;
      *spelling = std::string(name);
      const int v = local_index(name);
      if (v >= 0 && (statically_scaled[v] != 0 || state[v] != 0))
        return true;
      return seed_name(name);
    };

    std::set<std::pair<int, std::string>> reported;
    for (std::size_t n = 0; n < cfg.nodes.size(); ++n) {
      const cfg_node& nd = cfg.nodes[n];
      const std::string_view stmt = flow_ctx::node_text(text, nd);
      if (stmt.empty()) continue;
      bool checked = false;
      for (const char* c : kChecked)
        if (find_token(stmt, c) != std::string_view::npos) checked = true;
      const std::vector<char>& state = states.in[n];

      // (a) unchecked products of two scaled operands.
      if (!checked) {
        for (std::size_t i = 0; i + 1 < stmt.size(); ++i) {
          if (stmt[i] != '*') continue;
          if (stmt[i + 1] == '=' && i + 2 < stmt.size()) {
            // `a *= b` multiplies too; fall through with the same checks.
          } else if (stmt[i + 1] == '*' || (i > 0 && stmt[i - 1] == '*')) {
            continue;  // ** cannot be a binary product chain here
          }
          std::string left, right;
          if (!operand_scaled_left(stmt, i, state, &left)) continue;
          const std::size_t rhs_from = stmt[i + 1] == '=' ? i + 1 : i;
          if (!operand_scaled_right(stmt, rhs_from, state, &right)) continue;
          const int line = f.line_of(nd.begin + i);
          if (!reported.emplace(line, left + "*" + right).second) continue;
          finding v;
          v.rule = "overflow-arith";
          v.file = f.path;
          v.line = line;
          v.message = "'" + left + " * " + right +
                      "' multiplies two K/Ne-scaled 64-bit values; at "
                      "tens-of-millions of elements this silently wraps "
                      "int64 and breaks the exact splitter dichotomy — use "
                      "sfp::checked_mul (util/safe_int.hpp) or restructure";
          out.push_back(std::move(v));
        }
      }

      // (b) K-scaled value narrowed into a 32-bit local without a cast.
      // Plain statements only: a for-header's `int i = 0` init is not a
      // narrowing of the bound it is later compared against.
      if (nd.k != cfg_node::kind::stmt) continue;
      if (find_token(stmt, "static_cast") != std::string_view::npos)
        continue;
      for (std::size_t v = 0; v < locals.size(); ++v) {
        if (!narrow_int_type(locals[v].type) || locals[v].pointer ||
            seed_name(locals[v].name))
          continue;
        if (!assigns_var(stmt, locals[v].name)) continue;
        if (!stmt_mentions_scaled(stmt, locals[v].name, state)) continue;
        const int line = f.line_of(nd.begin);
        if (!reported.emplace(line, "narrow:" + locals[v].name).second)
          continue;
        finding w;
        w.rule = "overflow-arith";
        w.file = f.path;
        w.line = line;
        w.message = "K/Ne-scaled value assigned into 32-bit '" +
                    locals[v].name +
                    "' (" + locals[v].type +
                    ") without an explicit cast; widen the local or "
                    "static_cast at a proven-small boundary";
        out.push_back(std::move(w));
      }
    }
  }
  return out;
}

std::vector<finding> check_resource_leak(
    const source_tree& tree, const call_graph& graph,
    const std::vector<function_cfg>& cfgs, const pass_options& opts) {
  std::vector<finding> out;
  flow_ctx ctx{tree, graph, -1, {}};
  for (std::size_t fi = 0; fi < graph.functions.size(); ++fi) {
    const function_def& fn = graph.functions[fi];
    const source_file& f = ctx.file_of(fn);
    if (!path_under(f.path, opts.leak_trees)) continue;
    const std::string_view text = ctx.text_of(fn);
    const function_cfg& cfg = cfgs[fi];
    const std::vector<local_decl> locals = collect_locals(f, text, fn);

    // Acquire sites: `fd = socket(...)` / `int fd = ::accept(...)` with
    // fd a plain int local. RAII wrappers never bind a raw int, so they
    // are exempt by construction.
    struct tracked {
      int local = -1;
      int line = 0;
      std::string what;
    };
    std::vector<tracked> fds;
    const auto tracked_index = [&fds](std::string_view name,
                                      const std::vector<local_decl>& ls) {
      for (std::size_t t = 0; t < fds.size(); ++t)
        if (ls[static_cast<std::size_t>(fds[t].local)].name == name)
          return static_cast<int>(t);
      return -1;
    };

    for (std::size_t n = 0; n < cfg.nodes.size(); ++n) {
      const std::string_view stmt = flow_ctx::node_text(text, cfg.nodes[n]);
      for (const auto& call : opts.leak_acquire_calls) {
        const std::size_t pos = find_free_call(stmt, call);
        if (pos == std::string_view::npos) continue;
        const std::string_view lhs = assigned_lhs(stmt, pos);
        if (lhs.empty()) continue;
        int li = -1;
        for (std::size_t v = 0; v < locals.size(); ++v)
          if (locals[v].name == lhs && !locals[v].pointer &&
              !locals[v].reference)
            li = static_cast<int>(v);
        if (li < 0) continue;
        if (tracked_index(lhs, locals) >= 0) continue;
        tracked t;
        t.local = li;
        t.line = f.line_of(cfg.nodes[n].begin + pos);
        t.what = call;
        fds.push_back(std::move(t));
      }
    }
    if (fds.empty()) continue;

    dataflow_problem p;
    p.num_facts = static_cast<int>(fds.size());
    p.forward = true;
    p.may = true;
    p.gen = make_fact_sets(cfg, p.num_facts);
    p.kill = make_fact_sets(cfg, p.num_facts);

    for (std::size_t n = 0; n < cfg.nodes.size(); ++n) {
      const cfg_node& nd = cfg.nodes[n];
      const std::string_view stmt = flow_ctx::node_text(text, nd);
      if (stmt.empty()) continue;
      for (std::size_t t = 0; t < fds.size(); ++t) {
        const std::string& name =
            locals[static_cast<std::size_t>(fds[t].local)].name;
        const bool mentions =
            find_token(stmt, name) != std::string_view::npos;
        if (!mentions) continue;
        bool acquired = false;
        for (const auto& call : opts.leak_acquire_calls) {
          const std::size_t pos = find_free_call(stmt, call);
          if (pos != std::string_view::npos &&
              assigned_lhs(stmt, pos) == name)
            acquired = true;
        }
        if (acquired) {
          p.gen[n][t] = 1;
          continue;
        }
        // Release: close(fd) (any release call mentioning the fd).
        bool released = false;
        for (const auto& call : opts.leak_release_calls)
          if (find_free_call(stmt, call) != std::string_view::npos)
            released = true;
        // Ownership transfer: `return fd;`, `other = fd`, or fd handed to
        // a member/constructor (heuristic: `(fd)` / `(fd,` / `{fd` /
        // `, fd)` as a call argument when the statement is not a
        // condition). Reassignment (`fd = -1`) also ends this fd's life.
        const bool returned = nd.k == cfg_node::kind::ret;
        bool stored = false;
        {
          std::size_t q = 0;
          while ((q = find_token(stmt, name, q)) !=
                 std::string_view::npos) {
            std::size_t b = q;
            while (b > 0 && (stmt[b - 1] == ' ' || stmt[b - 1] == '\t'))
              --b;
            if (b > 0 && stmt[b - 1] == '=' &&
                (b < 2 || stmt[b - 2] != '=') &&
                (b < 2 || (stmt[b - 2] != '<' && stmt[b - 2] != '>' &&
                           stmt[b - 2] != '!')))
              stored = true;  // rhs of an assignment: someone else owns it
            q += name.size();
          }
        }
        const bool reassigned = assigns_var(stmt, name);
        if (released || returned || stored || reassigned)
          p.kill[n][t] = 1;
      }
    }

    // Error-branch refinement: `if (fd < 0) ...` — the fd is not open on
    // the then-edge; `if (fd >= 0) ...` — not open on the else-edge.
    for (std::size_t n = 0; n < cfg.nodes.size(); ++n) {
      const cfg_node& nd = cfg.nodes[n];
      if (nd.k != cfg_node::kind::branch && nd.k != cfg_node::kind::loop)
        continue;
      const std::string_view cond = flow_ctx::node_text(text, nd);
      for (std::size_t t = 0; t < fds.size(); ++t) {
        const std::string& name =
            locals[static_cast<std::size_t>(fds[t].local)].name;
        const bool invalid_then =
            cond_matches(cond, name, "<0", true) ||
            cond_matches(cond, name, "==-1", true) ||
            cond_matches(cond, name, "<=-1", true) ||
            cond_matches(cond, name, "0>", false) ||
            cond_matches(cond, name, "-1==", false);
        const bool valid_then =
            cond_matches(cond, name, ">=0", true) ||
            cond_matches(cond, name, "!=-1", true) ||
            cond_matches(cond, name, ">-1", true) ||
            cond_matches(cond, name, "0<=", false);
        if (invalid_then && nd.then_succ >= 0) {
          auto& kills = p.edge_kill[{static_cast<int>(n), nd.then_succ}];
          kills.resize(fds.size(), 0);
          kills[t] = 1;
        } else if (valid_then) {
          for (const int s : nd.succ) {
            if (s == nd.then_succ) continue;
            auto& kills = p.edge_kill[{static_cast<int>(n), s}];
            kills.resize(fds.size(), 0);
            kills[t] = 1;
          }
        }
      }
    }

    const dataflow_result states = solve_dataflow(cfg, p);
    const auto& at_exit = states.in[static_cast<std::size_t>(cfg.exit)];
    for (std::size_t t = 0; t < fds.size(); ++t) {
      if (at_exit[t] == 0) continue;
      const std::string& name =
          locals[static_cast<std::size_t>(fds[t].local)].name;
      finding v;
      v.rule = "resource-leak";
      v.file = f.path;
      v.line = fds[t].line;
      v.message = "descriptor '" + name + "' from " + fds[t].what +
                  "() may reach the end of '" + fn.name +
                  "' unclosed on some early-return/exception path; close "
                  "it on every edge or hand it to an RAII owner";
      out.push_back(std::move(v));
    }
  }
  return out;
}

std::vector<finding> check_use_after_move(
    const source_tree& tree, const call_graph& graph,
    const std::vector<function_cfg>& cfgs) {
  std::vector<finding> out;
  flow_ctx ctx{tree, graph, -1, {}};
  for (std::size_t fi = 0; fi < graph.functions.size(); ++fi) {
    const function_def& fn = graph.functions[fi];
    const source_file& f = ctx.file_of(fn);
    const std::string_view text = ctx.text_of(fn);
    if (text.find("move", fn.body_begin) == std::string_view::npos &&
        text.find("forward", fn.body_begin) == std::string_view::npos)
      continue;  // cheap pre-filter; exact range check below
    const function_cfg& cfg = cfgs[fi];
    const std::vector<local_decl> locals = collect_locals(f, text, fn);
    if (locals.empty()) continue;

    // Facts: "some local named N is maybe moved-from". Facts are keyed by
    // NAME, not by declaration: two same-named locals in sibling scopes
    // (the ubiquitous `finding v; ... push_back(std::move(v));` in two
    // branches of one loop) would otherwise cross-contaminate through the
    // loop back edge — the move of one gens the other's fact and its own
    // declaration-kill is off-path. With name-keyed facts every
    // declaration of the name kills, so entering either branch rebinds.
    std::vector<std::string> moved_names;
    std::vector<int> move_line;
    for (std::size_t v = 0; v < locals.size(); ++v) {
      if (locals[v].pointer) continue;
      if (std::find(moved_names.begin(), moved_names.end(),
                    locals[v].name) != moved_names.end())
        continue;
      for (std::size_t n = 0; n < cfg.nodes.size(); ++n) {
        const std::string_view stmt =
            flow_ctx::node_text(text, cfg.nodes[n]);
        if (stmt.empty() || !moves_var(stmt, locals[v].name)) continue;
        moved_names.push_back(locals[v].name);
        move_line.push_back(cfg.nodes[n].line);
        break;
      }
    }
    if (moved_names.empty()) continue;

    dataflow_problem p;
    p.num_facts = static_cast<int>(moved_names.size());
    p.forward = true;
    p.may = true;
    p.gen = make_fact_sets(cfg, p.num_facts);
    p.kill = make_fact_sets(cfg, p.num_facts);

    // Any declaration of the name inside this node rebinds it.
    const auto decl_in_node = [&locals](const cfg_node& nd,
                                        const std::string& name) {
      for (const local_decl& d : locals)
        if (d.name == name && d.pos >= nd.begin && d.pos < nd.end)
          return d.pos - nd.begin;
      return std::string_view::npos;
    };

    for (std::size_t n = 0; n < cfg.nodes.size(); ++n) {
      const cfg_node& nd = cfg.nodes[n];
      const std::string_view stmt = flow_ctx::node_text(text, nd);
      if (stmt.empty()) continue;
      for (std::size_t t = 0; t < moved_names.size(); ++t) {
        const std::string& name = moved_names[t];
        // Reassignment / reinit / (re)declaration rebinds the value.
        const bool redecl =
            decl_in_node(nd, name) != std::string_view::npos;
        const bool reinit =
            assigns_var(stmt, name) ||
            stmt.find(name + ".reset(") != std::string_view::npos ||
            stmt.find(name + ".clear(") != std::string_view::npos ||
            stmt.find(name + ".assign(") != std::string_view::npos;
        if (redecl || reinit) p.kill[n][t] = 1;
        // A move consumed by a reassignment of the same variable
        // (`tails = f(std::move(tails));`) leaves it freshly bound — the
        // kill wins and no moved-from state escapes the statement.
        if (moves_var(stmt, name) && p.kill[n][t] == 0) p.gen[n][t] = 1;
      }
    }

    const dataflow_result states = solve_dataflow(cfg, p);
    std::set<std::pair<int, int>> reported;
    for (std::size_t n = 0; n < cfg.nodes.size(); ++n) {
      const cfg_node& nd = cfg.nodes[n];
      const std::string_view stmt = flow_ctx::node_text(text, nd);
      if (stmt.empty()) continue;
      for (std::size_t t = 0; t < moved_names.size(); ++t) {
        if (states.in[n][t] == 0) continue;
        const std::string& name = moved_names[t];
        // A node that (re)declares the name binds fresh before any read
        // in it executes (for-headers read their own induction variable,
        // lambdas shadow) — nothing here touches the moved-from value.
        if (decl_in_node(nd, name) != std::string_view::npos) continue;
        // A pure rebind (`v = fresh;`) is the fix, not a use: reads_var
        // already excludes the assignment target, so only genuine reads
        // remain.
        if (!reads_var(stmt, name)) continue;
        if (!reported.emplace(static_cast<int>(t), nd.line).second)
          continue;
        finding v;
        v.rule = "use-after-move";
        v.file = f.path;
        v.line = nd.line;
        v.message = "'" + name + "' is read here but was moved from on "
                    "a path reaching this statement (move at line " +
                    std::to_string(move_line[t]) +
                    "); reassign it first or restructure the ownership";
        out.push_back(std::move(v));
      }
    }
  }
  return out;
}

std::vector<finding> check_status_paths(
    const source_tree& tree, const call_graph& graph,
    const std::vector<function_cfg>& cfgs, const pass_options& opts) {
  std::vector<finding> out;
  flow_ctx ctx{tree, graph, -1, {}};
  for (std::size_t fi = 0; fi < graph.functions.size(); ++fi) {
    const function_def& fn = graph.functions[fi];
    const source_file& f = ctx.file_of(fn);
    if (!path_under(f.path, opts.status_trees)) continue;
    const std::string_view text = ctx.text_of(fn);
    const function_cfg& cfg = cfgs[fi];
    const std::vector<local_decl> locals = collect_locals(f, text, fn);
    if (locals.empty()) continue;

    // Capture sites: `ok = x.try_recv(...)` (declaration or assignment).
    struct capture {
      int local = -1;
      int node = -1;
      std::string call;
    };
    std::vector<capture> captures;
    std::vector<int> status_locals;
    for (std::size_t n = 0; n < cfg.nodes.size(); ++n) {
      const cfg_node& nd = cfg.nodes[n];
      if (nd.k != cfg_node::kind::stmt) continue;  // headers read in place
      const std::string_view stmt = flow_ctx::node_text(text, nd);
      for (const auto& name : opts.status_call_names) {
        std::size_t pos = find_token(stmt, name);
        if (pos == std::string_view::npos) continue;
        std::size_t after = pos + name.size();
        while (after < stmt.size() &&
               (stmt[after] == ' ' || stmt[after] == '\t'))
          ++after;
        if (after >= stmt.size() || stmt[after] != '(') continue;
        const std::string_view lhs = assigned_lhs(stmt, pos);
        if (lhs.empty()) continue;
        int li = -1;
        for (std::size_t v = 0; v < locals.size(); ++v)
          if (locals[v].name == lhs) li = static_cast<int>(v);
        if (li < 0) continue;
        capture c;
        c.local = li;
        c.node = static_cast<int>(n);
        c.call = name;
        captures.push_back(std::move(c));
        if (std::find(status_locals.begin(), status_locals.end(), li) ==
            status_locals.end())
          status_locals.push_back(li);
      }
    }
    if (captures.empty()) continue;

    // Backward must-analysis: fact = "the status in v is read before v is
    // overwritten or the function exits", on EVERY path.
    dataflow_problem p;
    p.num_facts = static_cast<int>(status_locals.size());
    p.forward = false;
    p.may = false;
    p.gen = make_fact_sets(cfg, p.num_facts);
    p.kill = make_fact_sets(cfg, p.num_facts);
    p.boundary.assign(status_locals.size(), 0);  // nothing read after exit

    for (std::size_t n = 0; n < cfg.nodes.size(); ++n) {
      const cfg_node& nd = cfg.nodes[n];
      const std::string_view stmt = flow_ctx::node_text(text, nd);
      if (stmt.empty()) continue;
      for (std::size_t t = 0; t < status_locals.size(); ++t) {
        const local_decl& d =
            locals[static_cast<std::size_t>(status_locals[t])];
        const std::size_t skip_at =
            d.pos >= nd.begin && d.pos < nd.end ? d.pos - nd.begin
                                                : std::string_view::npos;
        if (assigns_var(stmt, d.name)) p.kill[n][t] = 1;
        if (reads_var(stmt, d.name, skip_at)) p.gen[n][t] = 1;
      }
    }

    const dataflow_result states = solve_dataflow(cfg, p);
    std::set<std::pair<int, int>> reported;
    for (const capture& c : captures) {
      int t = -1;
      for (std::size_t s = 0; s < status_locals.size(); ++s)
        if (status_locals[s] == c.local) t = static_cast<int>(s);
      // out[capture] (backward: the set flowing in from successors) must
      // say the freshly written status is read on every outgoing path.
      if (states.out[static_cast<std::size_t>(c.node)]
                    [static_cast<std::size_t>(t)] != 0)
        continue;
      const local_decl& d = locals[static_cast<std::size_t>(c.local)];
      const int line = cfg.nodes[static_cast<std::size_t>(c.node)].line;
      if (!reported.emplace(c.local, line).second) continue;
      finding v;
      v.rule = "unchecked-status";
      v.file = f.path;
      v.line = line;
      v.message = "status of '" + c.call + "' captured into '" + d.name +
                  "' is not read on every path before it is overwritten "
                  "or dropped; a sometimes-checked status still turns "
                  "lost messages into silent hangs";
      out.push_back(std::move(v));
    }
  }
  return out;
}

std::vector<finding> check_suppression_format(const source_tree& tree) {
  std::vector<finding> out;
  for (const auto& f : tree.files) {
    for (const lint_tag& tag : f.tags) {
      finding v;
      v.rule = "suppression-format";
      v.file = f.path;
      v.line = tag.line;
      if (tag.token.size() <= 3 ||
          tag.token.compare(tag.token.size() - 3, 3, "-ok") != 0) {
        v.message = "malformed suppression tag 'lint: " + tag.token +
                    "'; the canonical form is `lint: <slug>-ok — <reason>`";
        out.push_back(std::move(v));
        continue;
      }
      const std::string slug = tag.token.substr(0, tag.token.size() - 3);
      if (rule_by_slug(slug) == nullptr) {
        v.message = "suppression tag names unknown rule '" + slug +
                    "' (see sfplint --list-rules)";
        out.push_back(std::move(v));
        continue;
      }
      // Canonical separator: space, em-dash, space, non-empty reason.
      std::string_view rest = tag.rest;
      while (!rest.empty() && (rest.front() == ' ' || rest.front() == '\t'))
        rest.remove_prefix(1);
      if (rest.empty()) {
        v.message = "suppression of '" + slug +
                    "' has no reason; write `lint: " + slug +
                    "-ok — <why this is safe>`";
        out.push_back(std::move(v));
        continue;
      }
      const std::string_view dash = "\xE2\x80\x94";  // em-dash U+2014
      if (rest.compare(0, dash.size(), dash) == 0) {
        std::string_view reason = rest.substr(dash.size());
        while (!reason.empty() &&
               (reason.front() == ' ' || reason.front() == '\t'))
          reason.remove_prefix(1);
        if (!reason.empty()) continue;  // canonical
        v.message = "suppression of '" + slug +
                    "' has a separator but no reason text";
        out.push_back(std::move(v));
        continue;
      }
      v.message = "suppression of '" + slug +
                  "' uses a non-canonical separator; write `lint: " + slug +
                  "-ok — <reason>` (em-dash) — autofixable via "
                  "sfplint --fix";
      out.push_back(std::move(v));
    }
  }
  return out;
}

void filter_rules(analysis_result& r, const std::vector<std::string>& slugs) {
  const auto keep = [&slugs](const finding& f) {
    return std::find(slugs.begin(), slugs.end(), f.rule) != slugs.end();
  };
  const auto drop = [&keep](std::vector<finding>& v) {
    v.erase(std::remove_if(v.begin(), v.end(),
                           [&keep](const finding& f) { return !keep(f); }),
            v.end());
  };
  drop(r.findings);
  drop(r.suppressed);
}

analysis_result run_all(const source_tree& tree,
                        const layering_manifest& manifest,
                        const pass_options& opts) {
  analysis_result r;
  r.files_scanned = tree.files.size();
  r.graph = build_module_graph(tree);
  r.calls = build_call_graph(tree);
  r.concurrency = build_concurrency_model(tree, r.calls);
  r.lock_order = build_lock_order_graph(tree, r.calls, r.concurrency);
  r.cfgs = build_cfgs(tree, r.calls);

  std::vector<finding> all;
  const auto append = [&all](std::vector<finding> v) {
    all.insert(all.end(), std::make_move_iterator(v.begin()),
               std::make_move_iterator(v.end()));
  };
  append(check_layering(r.graph, manifest));
  append(check_determinism(tree, opts));
  append(check_contract_discipline(tree, opts));
  append(check_header_hygiene(tree));
  append(check_blocking_calls(tree, opts));
  append(check_raw_assert(tree));
  append(check_retry_backoff(tree, opts));
  append(check_transport_discipline(tree, manifest));
  append(check_determinism_transitive(tree, r.calls, r.concurrency, opts));
  append(check_lock_order(r.lock_order));
  append(
      check_blocking_while_locked(tree, r.calls, r.concurrency, opts));
  append(check_unchecked_status(tree, opts));
  append(check_overflow_arith(tree, r.calls, r.cfgs, opts));
  append(check_resource_leak(tree, r.calls, r.cfgs, opts));
  append(check_use_after_move(tree, r.calls, r.cfgs));
  append(check_status_paths(tree, r.calls, r.cfgs, opts));
  append(check_suppression_format(tree));

  std::map<std::string, const source_file*> by_path;
  for (const auto& f : tree.files) by_path[f.path] = &f;
  for (auto& f : all) {
    const auto it = by_path.find(f.file);
    // Suppressibility comes from the catalogue: cycles and manifest gaps
    // cannot be waved through with a comment — the fix is structural
    // (break the cycle / extend the manifest).
    const rule_info* info = rule_by_slug(f.rule);
    const bool suppressible = info == nullptr || info->suppressible;
    if (suppressible && it != by_path.end() &&
        it->second->has_tag(f.line, f.rule))
      r.suppressed.push_back(std::move(f));
    else
      r.findings.push_back(std::move(f));
  }
  std::sort(r.findings.begin(), r.findings.end());
  r.findings.erase(std::unique(r.findings.begin(), r.findings.end()),
                   r.findings.end());
  std::sort(r.suppressed.begin(), r.suppressed.end());
  return r;
}

}  // namespace sfp::analysis
