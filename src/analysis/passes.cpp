#include "analysis/passes.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

#include "util/contract.hpp"

namespace sfp::analysis {

namespace {

bool ident_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

/// Position of `token` as a whole identifier (prev/next not ident chars),
/// searching from `from`; npos when absent.
std::size_t find_token(std::string_view text, std::string_view token,
                       std::size_t from = 0) {
  std::size_t pos = from;
  while ((pos = text.find(token, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !ident_char(text[pos - 1]);
    const std::size_t end = pos + token.size();
    const bool right_ok = end >= text.size() || !ident_char(text[end]);
    if (left_ok && right_ok) return pos;
    pos = end;
  }
  return std::string_view::npos;
}

/// True when `token(` appears as a free-function call: whole token, not a
/// member call (`.token(` / `->token(`). Qualified calls (`std::token(`)
/// match. Returns the position or npos.
std::size_t find_free_call(std::string_view text, std::string_view token,
                           std::size_t from = 0) {
  std::size_t pos = from;
  while ((pos = find_token(text, token, pos)) != std::string_view::npos) {
    std::size_t after = pos + token.size();
    while (after < text.size() && (text[after] == ' ' || text[after] == '\t'))
      ++after;
    const bool is_call = after < text.size() && text[after] == '(';
    const bool member = pos > 0 && (text[pos - 1] == '.' ||
                                    (pos > 1 && text[pos - 1] == '>' &&
                                     text[pos - 2] == '-'));
    if (is_call && !member) return pos;
    pos = pos + token.size();
  }
  return std::string_view::npos;
}

bool path_in(const std::string& path, const std::vector<std::string>& list) {
  return std::find(list.begin(), list.end(), path) != list.end();
}

bool path_under(const std::string& path,
                const std::vector<std::string>& prefixes) {
  for (const auto& p : prefixes)
    if (path.compare(0, p.size(), p) == 0) return true;
  return false;
}

bool module_in(const std::string& module,
               const std::vector<std::string>& list) {
  return std::find(list.begin(), list.end(), module) != list.end();
}

/// Side-effect heuristic over a stripped condition expression: increment,
/// decrement, compound assignment, or plain assignment.
bool has_side_effect(std::string_view cond) {
  for (std::size_t i = 0; i + 1 < cond.size(); ++i) {
    const char a = cond[i];
    const char b = cond[i + 1];
    if ((a == '+' && b == '+') || (a == '-' && b == '-')) return true;
  }
  for (std::size_t i = 0; i < cond.size(); ++i) {
    if (cond[i] != '=') continue;
    const char prev = i > 0 ? cond[i - 1] : '\0';
    const char prev2 = i > 1 ? cond[i - 2] : '\0';
    const char next = i + 1 < cond.size() ? cond[i + 1] : '\0';
    if (next == '=') {
      ++i;  // '==' comparison
      continue;
    }
    if (prev == '=' || prev == '!') continue;  // second char of == / !=
    if (prev == '<' || prev == '>') {
      // <= / >= are comparisons; <<= / >>= are assignments.
      if (prev2 == prev) return true;
      continue;
    }
    if (prev == '+' || prev == '-' || prev == '*' || prev == '/' ||
        prev == '%' || prev == '&' || prev == '|' || prev == '^')
      return true;  // compound assignment
    return true;    // plain assignment
  }
  return false;
}

/// Extract the first macro argument starting at the '(' at `open`;
/// returns the argument text and sets `ok` false on unbalanced input.
std::string first_macro_arg(std::string_view text, std::size_t open,
                            bool& ok) {
  int depth = 0;
  std::size_t i = open;
  for (; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '(' || c == '[' || c == '{') {
      ++depth;
    } else if (c == ')' || c == ']' || c == '}') {
      --depth;
      if (depth == 0) return std::string(text.substr(open + 1, i - open - 1));
    } else if (c == ',' && depth == 1) {
      return std::string(text.substr(open + 1, i - open - 1));
    }
  }
  ok = false;
  return {};
}

}  // namespace

bool operator<(const finding& a, const finding& b) {
  return std::tie(a.file, a.line, a.rule, a.message) <
         std::tie(b.file, b.line, b.rule, b.message);
}

bool operator==(const finding& a, const finding& b) {
  return std::tie(a.file, a.line, a.rule, a.message) ==
         std::tie(b.file, b.line, b.rule, b.message);
}

std::vector<finding> check_layering(const module_graph& g,
                                    const layering_manifest& manifest) {
  std::vector<finding> out;

  const std::vector<std::string> cycle = find_include_cycle(g);
  if (!cycle.empty()) {
    std::string path_str;
    for (std::size_t i = 0; i < cycle.size(); ++i)
      path_str += (i ? " -> " : "") + cycle[i];
    // Anchor the report at one edge of the cycle for clickable provenance.
    finding f;
    f.rule = "layering-cycle";
    f.message = "include cycle between src modules: " + path_str;
    for (const auto& e : g.edges) {
      if (e.from_module == cycle[0] && e.to_module == cycle[1]) {
        f.file = e.file;
        f.line = e.line;
        break;
      }
    }
    out.push_back(std::move(f));
  }

  std::set<std::string> unknown_reported;
  for (const auto& e : g.edges) {
    for (const std::string& m : {e.from_module, e.to_module}) {
      if (manifest.known(m) || !unknown_reported.insert(m).second) continue;
      finding f;
      f.rule = "layering-unknown";
      f.file = e.file;
      f.line = e.line;
      f.message = "module '" + m +
                  "' is not declared in the layering manifest; add it to "
                  "tools/layering.json";
      out.push_back(std::move(f));
    }
    if (!manifest.known(e.from_module) || !manifest.known(e.to_module))
      continue;

    bool allowed;
    if (manifest.is_sink(e.from_module)) {
      allowed = manifest.sink_may_include(e.from_module, e.to_module);
    } else if (manifest.is_sink(e.to_module)) {
      allowed = true;  // sinks are includable from anywhere
    } else {
      // Strictly lower layers plus same-group peers; the cycle pass guards
      // against peer edges degenerating into a loop.
      allowed = manifest.rank_of(e.to_module) <= manifest.rank_of(e.from_module);
    }
    if (allowed) continue;
    finding f;
    f.rule = "layering";
    f.file = e.file;
    f.line = e.line;
    f.message = "include of \"" + e.target + "\" breaks the layering: '" +
                e.from_module + "' may not depend on '" + e.to_module + "'";
    out.push_back(std::move(f));
  }
  return out;
}

std::vector<finding> check_determinism(const source_tree& tree,
                                       const pass_options& opts) {
  std::vector<finding> out;
  const auto flag = [&out](const source_file& f, int line, std::string msg) {
    finding v;
    v.rule = "determinism";
    v.file = f.path;
    v.line = line;
    v.message = std::move(msg);
    out.push_back(std::move(v));
  };
  static const char* const kUnseededEngines[] = {
      "mt19937",     "mt19937_64",          "minstd_rand", "minstd_rand0",
      "ranlux24",    "ranlux48",            "knuth_b",     "default_random_engine"};
  for (const auto& f : tree.files) {
    if (f.tree != "src" || !module_in(f.module, opts.determinism_modules))
      continue;
    for (int ln = 1; ln <= f.num_lines(); ++ln) {
      const std::string_view line = f.line(ln);
      for (const char* call : {"rand", "srand"})
        if (find_free_call(line, call) != std::string_view::npos)
          flag(f, ln,
               std::string(call) +
                   "() is nondeterministic global state; take an explicit "
                   "sfp::rng instead");
      if (find_token(line, "random_device") != std::string_view::npos)
        flag(f, ln,
             "std::random_device breaks run-to-run reproducibility; seed an "
             "explicit sfp::rng instead");
      if (find_free_call(line, "time") != std::string_view::npos)
        flag(f, ln,
             "wall-clock seeding/time() makes partitions irreproducible; "
             "thread timestamps through parameters instead");
      for (const char* engine : kUnseededEngines) {
        std::size_t pos = find_token(line, engine);
        if (pos == std::string_view::npos) continue;
        // `std::mt19937 name;` or `std::mt19937 name{};` — a declaration
        // with no explicit seed.
        std::size_t p = pos + std::string_view(engine).size();
        while (p < line.size() && line[p] == ' ') ++p;
        const std::size_t name_start = p;
        while (p < line.size() && ident_char(line[p])) ++p;
        if (p == name_start) continue;  // not a declaration
        while (p < line.size() && line[p] == ' ') ++p;
        const bool plain = p < line.size() && line[p] == ';';
        const bool braced = p + 1 < line.size() && line[p] == '{' &&
                            (line[p + 1] == '}' ||
                             (line[p + 1] == ' ' && p + 2 < line.size() &&
                              line[p + 2] == '}'));
        if (plain || braced)
          flag(f, ln,
               std::string("unseeded std::") + engine +
                   " hides the seeding decision; construct with an explicit "
                   "seed or use sfp::rng");
      }
    }
  }
  return out;
}

std::vector<finding> check_contract_discipline(const source_tree& tree,
                                               const pass_options& opts) {
  std::vector<finding> out;
  for (const auto& f : tree.files) {
    if (f.tree != "src") continue;
    const std::string_view text = f.stripped;

    // (1) Purity of SFP_* conditions: the expression vanishes at lower
    // tiers, so any side effect changes behaviour between builds.
    for (const char* macro : {"SFP_REQUIRE", "SFP_ASSERT", "SFP_AUDIT"}) {
      std::size_t pos = 0;
      while ((pos = find_token(text, macro, pos)) != std::string_view::npos) {
        std::size_t open = pos + std::string_view(macro).size();
        while (open < text.size() &&
               (text[open] == ' ' || text[open] == '\t' ||
                text[open] == '\n'))
          ++open;
        if (open >= text.size() || text[open] != '(') {
          pos = open;
          continue;
        }
        bool ok = true;
        const std::string cond = first_macro_arg(text, open, ok);
        if (ok && has_side_effect(cond)) {
          finding v;
          v.rule = "contract-purity";
          v.file = f.path;
          v.line = f.line_of(pos);
          v.message = std::string(macro) +
                      " condition has a side effect; contract conditions "
                      "must be pure (they compile out at lower tiers)";
          out.push_back(std::move(v));
        }
        pos = open;
      }
    }

    // (2) throw in src/runtime outside the designated failure paths.
    if (f.module == "runtime" && !path_in(f.path, opts.throw_allowed_files)) {
      std::size_t pos = 0;
      while ((pos = find_token(text, "throw", pos)) !=
             std::string_view::npos) {
        finding v;
        v.rule = "runtime-throw";
        v.file = f.path;
        v.line = f.line_of(pos);
        v.message =
            "throw in the runtime hot path; route failures through the "
            "designated failure-path files (world.cpp, fault.cpp, "
            "reliable.cpp)";
        out.push_back(std::move(v));
        pos += 5;
      }
    }

    // (3) SFP_AUDIT inside a loop in a header: the audit tier is meant for
    // module boundaries, not per-iteration checks inlined everywhere.
    if (f.is_header) {
      bool pending_loop = false;
      int paren_depth = 0;
      std::vector<bool> brace_is_loop;
      int loop_depth = 0;
      for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (ident_char(c)) {
          std::size_t end = i;
          while (end < text.size() && ident_char(text[end])) ++end;
          const std::string_view word = text.substr(i, end - i);
          const bool boundary = i == 0 || !ident_char(text[i - 1]);
          if (boundary && (word == "for" || word == "while" || word == "do"))
            pending_loop = true;
          if (boundary &&
              (word == "SFP_AUDIT" || word == "SFP_AUDIT_DIAG") &&
              loop_depth > 0) {
            finding v;
            v.rule = "audit-header-loop";
            v.file = f.path;
            v.line = f.line_of(i);
            v.message =
                "SFP_AUDIT inside a header-inlined loop runs per iteration "
                "in every audit build; hoist it to the loop boundary or "
                "move the loop to a .cpp";
            out.push_back(std::move(v));
          }
          i = end - 1;
          continue;
        }
        if (c == '(') {
          ++paren_depth;
        } else if (c == ')') {
          --paren_depth;
        } else if (c == ';' && paren_depth == 0) {
          pending_loop = false;  // statement-form body / do-while tail
        } else if (c == '{') {
          brace_is_loop.push_back(pending_loop);
          loop_depth += pending_loop ? 1 : 0;
          pending_loop = false;
        } else if (c == '}' && !brace_is_loop.empty()) {
          loop_depth -= brace_is_loop.back() ? 1 : 0;
          brace_is_loop.pop_back();
        }
      }
    }
  }
  return out;
}

std::vector<finding> check_header_hygiene(const source_tree& tree) {
  std::vector<finding> out;
  for (const auto& f : tree.files) {
    if (!f.is_header) continue;
    bool found = false;
    bool ok = false;
    for (int ln = 1; ln <= f.num_lines() && !found; ++ln) {
      std::string_view line = f.line(ln);
      while (!line.empty() && (line.front() == ' ' || line.front() == '\t'))
        line.remove_prefix(1);
      while (!line.empty() && (line.back() == ' ' || line.back() == '\t' ||
                               line.back() == '\r'))
        line.remove_suffix(1);
      if (line.empty()) continue;
      found = true;
      ok = line == "#pragma once" || line == "#pragma  once";
    }
    if (!ok) {
      finding v;
      v.rule = "pragma-once";
      v.file = f.path;
      v.line = 1;
      v.message =
          "header must open with #pragma once before any other code";
      out.push_back(std::move(v));
    }
  }
  return out;
}

std::vector<finding> check_blocking_calls(const source_tree& tree,
                                          const pass_options& opts) {
  std::vector<finding> out;
  static const char* const kPatterns[] = {".recv(", ".barrier(",
                                          ".allreduce_", "world::recv"};
  for (const auto& f : tree.files) {
    if (!path_under(f.path, opts.blocking_trees)) continue;
    if (path_in(f.path, opts.blocking_allowed_files)) continue;
    for (int ln = 1; ln <= f.num_lines(); ++ln) {
      const std::string_view line = f.line(ln);
      for (const char* pat : kPatterns) {
        if (line.find(pat) == std::string_view::npos) continue;
        finding v;
        v.rule = "blocking";
        v.file = f.path;
        v.line = ln;
        v.message =
            "bare blocking world call outside the timeout-aware wrappers; "
            "route through seam::exchange or annotate why a hang is "
            "impossible";
        out.push_back(std::move(v));
        break;
      }
    }
  }
  return out;
}

std::vector<finding> check_raw_assert(const source_tree& tree) {
  std::vector<finding> out;
  for (const auto& f : tree.files) {
    if (f.tree != "src" && f.tree != "bench" && f.tree != "tools") continue;
    for (int ln = 1; ln <= f.num_lines(); ++ln) {
      const std::string_view line = f.line(ln);
      const bool include_hit =
          line.find("<cassert>") != std::string_view::npos ||
          line.find("\"assert.h\"") != std::string_view::npos ||
          line.find("<assert.h>") != std::string_view::npos;
      // `static_assert` never matches: the preceding '_' is an ident char.
      const bool call_hit =
          find_free_call(line, "assert") != std::string_view::npos;
      if (!include_hit && !call_hit) continue;
      finding v;
      v.rule = "raw-assert";
      v.file = f.path;
      v.line = ln;
      v.message =
          "raw assert() vanishes under NDEBUG with no diagnostics; use "
          "SFP_REQUIRE/SFP_ASSERT/SFP_AUDIT from util/contract.hpp";
      out.push_back(std::move(v));
    }
  }
  return out;
}

std::vector<finding> check_retry_backoff(const source_tree& tree,
                                         const pass_options& opts) {
  std::vector<finding> out;
  static const char* const kRetryTokens[] = {"retransmit", "retry", "resend"};
  for (const auto& f : tree.files) {
    if (!path_under(f.path, opts.retry_trees)) continue;
    const std::string_view text = f.stripped;
    std::size_t pos = 0;
    while (pos < text.size()) {
      // Find the next loop keyword.
      std::size_t best = std::string_view::npos;
      for (const char* kw : {"while", "for", "do"}) {
        const std::size_t p = find_token(text, kw, pos);
        if (p < best) best = p;
      }
      if (best == std::string_view::npos) break;
      std::size_t cursor = best;
      // Skip past the keyword and any parenthesized header (for/while).
      while (cursor < text.size() && ident_char(text[cursor])) ++cursor;
      while (cursor < text.size() &&
             (text[cursor] == ' ' || text[cursor] == '\t' ||
              text[cursor] == '\n'))
        ++cursor;
      std::size_t header_end = cursor;
      if (cursor < text.size() && text[cursor] == '(') {
        int depth = 0;
        for (; cursor < text.size(); ++cursor) {
          if (text[cursor] == '(') ++depth;
          else if (text[cursor] == ')' && --depth == 0) { ++cursor; break; }
        }
        header_end = cursor;
        while (cursor < text.size() &&
               (text[cursor] == ' ' || text[cursor] == '\t' ||
                text[cursor] == '\n'))
          ++cursor;
      }
      // Capture the loop body: braced block or single statement.
      std::size_t body_end = cursor;
      if (cursor < text.size() && text[cursor] == '{') {
        int depth = 0;
        for (; body_end < text.size(); ++body_end) {
          if (text[body_end] == '{') ++depth;
          else if (text[body_end] == '}' && --depth == 0) { ++body_end; break; }
        }
      } else {
        while (body_end < text.size() && text[body_end] != ';') ++body_end;
      }
      const std::string_view region =
          text.substr(best, body_end - best);
      bool retries = false;
      for (const char* tok : kRetryTokens)
        if (region.find(tok) != std::string_view::npos) retries = true;
      if (retries && region.find("backoff") == std::string_view::npos) {
        finding v;
        v.rule = "retry-backoff";
        v.file = f.path;
        v.line = f.line_of(best);
        v.message =
            "retry loop without backoff: a tight retransmit loop hammers a "
            "fabric that is already degraded; scale the delay per attempt "
            "(see reliable_options::max_backoff)";
        out.push_back(std::move(v));
      }
      // Recurse into the region by resuming just past the keyword, so
      // nested loops are inspected independently.
      pos = header_end;
    }
  }
  return out;
}

std::vector<finding> check_transport_discipline(
    const source_tree& tree, const layering_manifest& manifest) {
  std::vector<finding> out;
  if (manifest.fabric_module.empty()) return out;
  for (const auto& f : tree.files) {
    if (f.tree != "src" || f.module == manifest.fabric_module) continue;
    const std::string_view text = f.stripped;
    for (const std::string& type : manifest.fabric_types) {
      const std::string qualified = manifest.fabric_module + "::" + type;
      std::size_t pos = 0;
      while ((pos = find_token(text, qualified, pos)) !=
             std::string_view::npos) {
        std::size_t p = pos + qualified.size();
        while (p < text.size() &&
               (text[p] == ' ' || text[p] == '\t' || text[p] == '\n'))
          ++p;
        // A construction is the qualified type followed by an argument list
        // (a temporary / new-expression) or by a variable name and then an
        // argument list. Nested-name uses (world::options), references,
        // pointers, and template arguments all fail this shape and pass.
        bool constructed =
            p < text.size() && (text[p] == '(' || text[p] == '{');
        if (!constructed) {
          const std::size_t name_start = p;
          while (p < text.size() && ident_char(text[p])) ++p;
          if (p > name_start) {
            while (p < text.size() &&
                   (text[p] == ' ' || text[p] == '\t' || text[p] == '\n'))
              ++p;
            constructed =
                p < text.size() && (text[p] == '(' || text[p] == '{');
          }
        }
        if (constructed) {
          finding v;
          v.rule = "transport-discipline";
          v.file = f.path;
          v.line = f.line_of(pos);
          v.message = "direct construction of " + qualified + " outside '" +
                      manifest.fabric_module +
                      "'; build fabrics through the designated runner entry "
                      "points (seam::run_distributed*) so every construction "
                      "site stays auditable";
          out.push_back(std::move(v));
        }
        pos += qualified.size();
      }
    }
  }
  return out;
}

const std::vector<rule_info>& rule_catalogue() {
  // Single source of truth: --list-rules, run_all() suppressibility and
  // the docs rule table all derive from this list.
  static const std::vector<rule_info> catalogue = {
      {"layering-cycle", "include cycle between src/ modules", false},
      {"layering-unknown",
       "src/ module absent from tools/layering.json", false},
      {"layering", "include edge violates the declared layer order", true},
      {"determinism",
       "rand/time/random_device/unseeded engine in partitioner modules",
       true},
      {"determinism-transitive",
       "partitioner-module call chain reaches a nondeterminism source",
       true},
      {"contract-purity",
       "side-effectful expression inside an SFP_* condition", true},
      {"runtime-throw",
       "throw in src/runtime outside the designated failure paths", true},
      {"audit-header-loop",
       "SFP_AUDIT inside a header-inlined loop", true},
      {"pragma-once", "header does not open with #pragma once", true},
      {"blocking",
       "bare blocking world call outside the timeout-aware wrappers", true},
      {"blocking-while-locked",
       "blocking call reachable while a mutex is held, outside the "
       "designated wait sites",
       true},
      {"lock-order",
       "cycle in the whole-repo acquired-while-held lock-order graph",
       true},
      {"unchecked-status",
       "bool/status return of a transport call dropped as a bare statement",
       true},
      {"raw-assert", "raw assert()/<cassert> in library code", true},
      {"retry-backoff", "retry/retransmit loop without backoff", true},
      {"transport-discipline",
       "fabric type constructed outside the designated runner entry points",
       true},
  };
  return catalogue;
}

const rule_info* rule_by_slug(std::string_view slug) {
  for (const rule_info& r : rule_catalogue())
    if (slug == r.slug) return &r;
  return nullptr;
}

lock_order_graph build_lock_order_graph(const source_tree& tree,
                                        const call_graph& graph,
                                        const concurrency_model& model) {
  lock_order_graph g;
  g.mutexes = model.mutex_names;
  // Collect edges with one witness each; (from, to) deduped keeping the
  // first witness. Self-edges are dropped: the file-scoped identity
  // aliases same-named members of different instances (lock-sharded
  // registries), and "A before A" is re-entrancy, not ordering.
  std::map<std::pair<int, int>, lock_edge> edges;
  const auto add_edge = [&edges](int from, int to, const std::string& file,
                                 int line) {
    if (from == to) return;
    const auto key = std::make_pair(from, to);
    if (edges.count(key) > 0) return;
    lock_edge e;
    e.from = from;
    e.to = to;
    e.file = file;
    e.line = line;
    edges.emplace(key, std::move(e));
  };
  for (std::size_t fn = 0; fn < graph.functions.size(); ++fn) {
    const std::string& path =
        tree.files[static_cast<std::size_t>(graph.functions[fn].file)].path;
    for (const int ai : model.acquisitions_of[fn]) {
      const lock_acquisition& a =
          model.acquisitions[static_cast<std::size_t>(ai)];
      // Later acquisitions inside the hold range.
      for (const int bi : model.acquisitions_of[fn]) {
        const lock_acquisition& b =
            model.acquisitions[static_cast<std::size_t>(bi)];
        if (b.pos > a.pos && b.pos < a.hold_end)
          add_edge(a.mutex, b.mutex, path, b.line);
      }
      // Calls inside the hold range pull in the callee's lock closure.
      for (const int ci : graph.calls_of[fn]) {
        const call_site& c = graph.calls[static_cast<std::size_t>(ci)];
        if (c.pos <= a.pos || c.pos >= a.hold_end) continue;
        for (const int t : c.targets)
          for (const int mid :
               model.lock_closure[static_cast<std::size_t>(t)])
            add_edge(a.mutex, mid, path, c.line);
      }
    }
  }
  for (auto& [key, e] : edges) g.edges.push_back(std::move(e));

  // Cycle detection: iterative colored DFS, mirroring the include graph's.
  const int n = static_cast<int>(g.mutexes.size());
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
  for (const lock_edge& e : g.edges)
    adj[static_cast<std::size_t>(e.from)].push_back(e.to);
  std::vector<int> color(static_cast<std::size_t>(n), 0);  // 0/1/2
  std::vector<int> parent(static_cast<std::size_t>(n), -1);
  for (int s = 0; s < n && g.cycle.empty(); ++s) {
    if (color[static_cast<std::size_t>(s)] != 0) continue;
    std::vector<std::pair<int, std::size_t>> stack = {{s, 0}};
    color[static_cast<std::size_t>(s)] = 1;
    while (!stack.empty() && g.cycle.empty()) {
      auto& [v, next] = stack.back();
      if (next >= adj[static_cast<std::size_t>(v)].size()) {
        color[static_cast<std::size_t>(v)] = 2;
        stack.pop_back();
        continue;
      }
      const int w = adj[static_cast<std::size_t>(v)][next++];
      if (color[static_cast<std::size_t>(w)] == 0) {
        color[static_cast<std::size_t>(w)] = 1;
        parent[static_cast<std::size_t>(w)] = v;
        stack.emplace_back(w, 0);
      } else if (color[static_cast<std::size_t>(w)] == 1) {
        std::vector<std::string> cyc = {g.mutexes[static_cast<std::size_t>(w)]};
        for (int x = v; x != w && x != -1;
             x = parent[static_cast<std::size_t>(x)])
          cyc.push_back(g.mutexes[static_cast<std::size_t>(x)]);
        cyc.push_back(g.mutexes[static_cast<std::size_t>(w)]);
        std::reverse(cyc.begin() + 1, cyc.end() - 1);
        g.cycle = std::move(cyc);
      }
    }
  }
  return g;
}

std::vector<finding> check_determinism_transitive(
    const source_tree& tree, const call_graph& graph,
    const concurrency_model& model, const pass_options& opts) {
  std::vector<finding> out;
  for (std::size_t fn = 0; fn < graph.functions.size(); ++fn) {
    const source_file& f =
        tree.files[static_cast<std::size_t>(graph.functions[fn].file)];
    if (f.tree != "src" || !module_in(f.module, opts.determinism_modules))
      continue;
    for (const int ci : graph.calls_of[fn]) {
      const call_site& c = graph.calls[static_cast<std::size_t>(ci)];
      int tainted = -1;
      for (const int t : c.targets)
        if (model.nondet_transitively[static_cast<std::size_t>(t)]) {
          tainted = t;
          break;
        }
      if (tainted < 0) continue;
      finding v;
      v.rule = "determinism-transitive";
      v.file = f.path;
      v.line = c.line;
      v.message = "call to '" + c.written +
                  "' transitively reaches a nondeterminism source: " +
                  nondet_chain(tree, graph, model, tainted) +
                  "; partitioner results must be replayable from explicit "
                  "seeds";
      out.push_back(std::move(v));
    }
  }
  return out;
}

std::vector<finding> check_lock_order(const lock_order_graph& lock_graph) {
  std::vector<finding> out;
  if (lock_graph.cycle.empty()) return out;
  std::string path_str;
  for (std::size_t i = 0; i < lock_graph.cycle.size(); ++i)
    path_str += (i ? " -> " : "") + lock_graph.cycle[i];
  finding v;
  v.rule = "lock-order";
  v.message =
      "lock-order cycle (potential deadlock under the right interleaving): " +
      path_str + "; acquire these mutexes in one global order";
  // Anchor at the witness for the cycle's first edge.
  for (const lock_edge& e : lock_graph.edges) {
    if (lock_graph.mutexes[static_cast<std::size_t>(e.from)] ==
            lock_graph.cycle[0] &&
        lock_graph.mutexes[static_cast<std::size_t>(e.to)] ==
            lock_graph.cycle[1]) {
      v.file = e.file;
      v.line = e.line;
      break;
    }
  }
  out.push_back(std::move(v));
  return out;
}

std::vector<finding> check_blocking_while_locked(
    const source_tree& tree, const call_graph& graph,
    const concurrency_model& model, const pass_options& opts) {
  std::vector<finding> out;
  for (std::size_t fn = 0; fn < graph.functions.size(); ++fn) {
    const source_file& f =
        tree.files[static_cast<std::size_t>(graph.functions[fn].file)];
    if (f.tree != "src" || path_in(f.path, opts.wait_allowed_files))
      continue;
    for (const int ai : model.acquisitions_of[fn]) {
      const lock_acquisition& a =
          model.acquisitions[static_cast<std::size_t>(ai)];
      // Direct blocking sites inside the hold range.
      for (const int si : model.blocking_of[fn]) {
        const blocking_site& s =
            model.blocking[static_cast<std::size_t>(si)];
        if (s.pos <= a.pos || s.pos >= a.hold_end) continue;
        finding v;
        v.rule = "blocking-while-locked";
        v.file = f.path;
        v.line = s.line;
        v.message = "blocking call '" + s.what + "()' while holding '" +
                    a.expr +
                    "'; a stalled peer turns this into a held-lock hang — "
                    "move the wait to a designated wait site or drop the "
                    "lock first";
        out.push_back(std::move(v));
      }
      // Calls inside the hold range that transitively block.
      for (const int ci : graph.calls_of[fn]) {
        const call_site& c = graph.calls[static_cast<std::size_t>(ci)];
        if (c.pos <= a.pos || c.pos >= a.hold_end) continue;
        int blocker = -1;
        for (const int t : c.targets)
          if (model.blocks_transitively[static_cast<std::size_t>(t)]) {
            blocker = t;
            break;
          }
        if (blocker < 0) continue;
        finding v;
        v.rule = "blocking-while-locked";
        v.file = f.path;
        v.line = c.line;
        v.message = "call to '" + c.written + "' may block while holding '" +
                    a.expr + "' (" +
                    blocking_chain(tree, graph, model, blocker) +
                    "); a stalled peer turns this into a held-lock hang";
        out.push_back(std::move(v));
      }
    }
  }
  return out;
}

std::vector<finding> check_unchecked_status(const source_tree& tree,
                                            const pass_options& opts) {
  std::vector<finding> out;
  for (const auto& f : tree.files) {
    if (!path_under(f.path, opts.status_trees)) continue;
    const std::string_view text = f.stripped;
    for (const std::string& name : opts.status_call_names) {
      std::size_t pos = 0;
      while ((pos = find_token(text, name, pos)) != std::string_view::npos) {
        const std::size_t name_pos = pos;
        pos += name.size();
        std::size_t p = name_pos + name.size();
        while (p < text.size() && (text[p] == ' ' || text[p] == '\t')) ++p;
        if (p >= text.size() || text[p] != '(') continue;
        // Close of the argument list, then require `;` — the value hits
        // the floor only when the call is the whole statement.
        int depth = 0;
        std::size_t close = p;
        for (; close < text.size(); ++close) {
          if (text[close] == '(') ++depth;
          else if (text[close] == ')' && --depth == 0) break;
        }
        if (close >= text.size()) continue;
        std::size_t q = close + 1;
        while (q < text.size() &&
               (text[q] == ' ' || text[q] == '\t' || text[q] == '\n'))
          ++q;
        if (q >= text.size() || text[q] != ';') continue;
        // Walk back over the receiver chain to the start of the full
        // expression, then require statement position. `if (x.try_recv(`,
        // `ok = try_recv(`, `(void)try_recv(` all have a non-statement
        // character there and pass.
        std::size_t start = name_pos;
        while (start > 0) {
          const char c = text[start - 1];
          if (ident_char(c) || c == '.' || c == ':' || c == ']' ||
              c == '[') {
            --start;
            continue;
          }
          if (c == '>' && start > 1 && text[start - 2] == '-') {
            start -= 2;
            continue;
          }
          break;
        }
        std::size_t prev = start;
        while (prev > 0 && (text[prev - 1] == ' ' || text[prev - 1] == '\t' ||
                            text[prev - 1] == '\n' || text[prev - 1] == '\r'))
          --prev;
        const char before = prev == 0 ? ';' : text[prev - 1];
        if (before != ';' && before != '{' && before != '}') continue;
        finding v;
        v.rule = "unchecked-status";
        v.file = f.path;
        v.line = f.line_of(name_pos);
        v.message = "status return of '" + name +
                    "' dropped; a lost message becomes a silent hang — "
                    "branch on the result or cast to void with a reason";
        out.push_back(std::move(v));
      }
    }
  }
  return out;
}

void filter_rules(analysis_result& r, const std::vector<std::string>& slugs) {
  const auto keep = [&slugs](const finding& f) {
    return std::find(slugs.begin(), slugs.end(), f.rule) != slugs.end();
  };
  const auto drop = [&keep](std::vector<finding>& v) {
    v.erase(std::remove_if(v.begin(), v.end(),
                           [&keep](const finding& f) { return !keep(f); }),
            v.end());
  };
  drop(r.findings);
  drop(r.suppressed);
}

analysis_result run_all(const source_tree& tree,
                        const layering_manifest& manifest,
                        const pass_options& opts) {
  analysis_result r;
  r.files_scanned = tree.files.size();
  r.graph = build_module_graph(tree);
  r.calls = build_call_graph(tree);
  r.concurrency = build_concurrency_model(tree, r.calls);
  r.lock_order = build_lock_order_graph(tree, r.calls, r.concurrency);

  std::vector<finding> all;
  const auto append = [&all](std::vector<finding> v) {
    all.insert(all.end(), std::make_move_iterator(v.begin()),
               std::make_move_iterator(v.end()));
  };
  append(check_layering(r.graph, manifest));
  append(check_determinism(tree, opts));
  append(check_contract_discipline(tree, opts));
  append(check_header_hygiene(tree));
  append(check_blocking_calls(tree, opts));
  append(check_raw_assert(tree));
  append(check_retry_backoff(tree, opts));
  append(check_transport_discipline(tree, manifest));
  append(check_determinism_transitive(tree, r.calls, r.concurrency, opts));
  append(check_lock_order(r.lock_order));
  append(
      check_blocking_while_locked(tree, r.calls, r.concurrency, opts));
  append(check_unchecked_status(tree, opts));

  std::map<std::string, const source_file*> by_path;
  for (const auto& f : tree.files) by_path[f.path] = &f;
  for (auto& f : all) {
    const auto it = by_path.find(f.file);
    // Suppressibility comes from the catalogue: cycles and manifest gaps
    // cannot be waved through with a comment — the fix is structural
    // (break the cycle / extend the manifest).
    const rule_info* info = rule_by_slug(f.rule);
    const bool suppressible = info == nullptr || info->suppressible;
    if (suppressible && it != by_path.end() &&
        it->second->has_tag(f.line, f.rule))
      r.suppressed.push_back(std::move(f));
    else
      r.findings.push_back(std::move(f));
  }
  std::sort(r.findings.begin(), r.findings.end());
  r.findings.erase(std::unique(r.findings.begin(), r.findings.end()),
                   r.findings.end());
  std::sort(r.suppressed.begin(), r.suppressed.end());
  return r;
}

}  // namespace sfp::analysis
