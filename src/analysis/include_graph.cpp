#include "analysis/include_graph.hpp"

#include <algorithm>
#include <map>

#include "util/contract.hpp"

namespace sfp::analysis {

namespace {

/// Parse one stripped line as `#include "target"`; empty when it is not.
std::string include_target(std::string_view line) {
  std::size_t p = 0;
  while (p < line.size() && (line[p] == ' ' || line[p] == '\t')) ++p;
  if (p >= line.size() || line[p] != '#') return {};
  ++p;
  while (p < line.size() && (line[p] == ' ' || line[p] == '\t')) ++p;
  if (line.compare(p, 7, "include") != 0) return {};
  p += 7;
  while (p < line.size() && (line[p] == ' ' || line[p] == '\t')) ++p;
  if (p >= line.size() || line[p] != '"') return {};
  const std::size_t close = line.find('"', p + 1);
  if (close == std::string_view::npos) return {};
  return std::string(line.substr(p + 1, close - p - 1));
}

}  // namespace

std::vector<std::pair<int, std::string>> quoted_includes(
    const source_file& f) {
  std::vector<std::pair<int, std::string>> out;
  for (int ln = 1; ln <= f.num_lines(); ++ln) {
    std::string target = include_target(f.line(ln));
    if (!target.empty()) out.emplace_back(ln, std::move(target));
  }
  return out;
}

int module_graph::index_of(std::string_view module) const {
  const auto it = std::lower_bound(modules.begin(), modules.end(), module);
  if (it == modules.end() || *it != module) return -1;
  return static_cast<int>(it - modules.begin());
}

module_graph build_module_graph(const source_tree& tree) {
  module_graph g;
  std::map<std::string, graph::weight> file_count;
  for (const auto& f : tree.files)
    if (!f.module.empty()) ++file_count[f.module];
  for (const auto& [name, count] : file_count) g.modules.push_back(name);

  for (const auto& f : tree.files) {
    if (f.module.empty()) continue;
    for (auto& [line, target] : quoted_includes(f)) {
      const std::size_t slash = target.find('/');
      if (slash == std::string::npos) continue;
      std::string to = target.substr(0, slash);
      if (to == f.module) continue;
      // Unknown prefixes still become edges so the layering pass can
      // report modules missing from the manifest.
      include_edge e;
      e.from_module = f.module;
      e.to_module = std::move(to);
      e.file = f.path;
      e.line = line;
      e.target = std::move(target);
      g.edges.push_back(std::move(e));
      if (g.index_of(g.edges.back().to_module) < 0 &&
          std::find(g.modules.begin(), g.modules.end(),
                    g.edges.back().to_module) == g.modules.end()) {
        g.modules.push_back(g.edges.back().to_module);
        std::sort(g.modules.begin(), g.modules.end());
      }
    }
  }

  const int n = static_cast<int>(g.modules.size());
  g.dep_of.assign(static_cast<std::size_t>(n), {});
  std::map<std::pair<int, int>, graph::weight> pair_sites;
  for (const auto& e : g.edges) {
    const int from = g.index_of(e.from_module);
    const int to = g.index_of(e.to_module);
    SFP_ASSERT(from >= 0 && to >= 0, "module index must resolve");
    auto& deps = g.dep_of[static_cast<std::size_t>(from)];
    if (std::find(deps.begin(), deps.end(), to) == deps.end())
      deps.push_back(to);
    ++pair_sites[{std::min(from, to), std::max(from, to)}];
  }
  for (auto& deps : g.dep_of) std::sort(deps.begin(), deps.end());

  // Dogfood the undirected skeleton through the library's own CSR type.
  graph::builder b(static_cast<graph::vid>(n));
  for (int i = 0; i < n; ++i) {
    const auto it = file_count.find(g.modules[static_cast<std::size_t>(i)]);
    b.set_vertex_weight(static_cast<graph::vid>(i),
                        it == file_count.end() ? 1 : it->second);
  }
  for (const auto& [pair, sites] : pair_sites)
    b.add_edge(static_cast<graph::vid>(pair.first),
               static_cast<graph::vid>(pair.second), sites);
  g.undirected = b.build();
  g.undirected.validate();
  return g;
}

std::vector<std::string> find_include_cycle(const module_graph& g) {
  const int n = static_cast<int>(g.modules.size());
  // Iterative DFS with colors; on a back edge, unwind the stack to
  // reconstruct the cycle path.
  std::vector<int> color(static_cast<std::size_t>(n), 0);  // 0/1/2
  std::vector<int> stack;
  std::vector<std::size_t> next;
  for (int root = 0; root < n; ++root) {
    if (color[static_cast<std::size_t>(root)] != 0) continue;
    stack = {root};
    next = {0};
    color[static_cast<std::size_t>(root)] = 1;
    while (!stack.empty()) {
      const int v = stack.back();
      const auto& deps = g.dep_of[static_cast<std::size_t>(v)];
      if (next.back() < deps.size()) {
        const int w = deps[next.back()++];
        if (color[static_cast<std::size_t>(w)] == 1) {
          std::vector<std::string> cycle;
          const auto it = std::find(stack.begin(), stack.end(), w);
          for (auto p = it; p != stack.end(); ++p)
            cycle.push_back(g.modules[static_cast<std::size_t>(*p)]);
          cycle.push_back(g.modules[static_cast<std::size_t>(w)]);
          return cycle;
        }
        if (color[static_cast<std::size_t>(w)] == 0) {
          color[static_cast<std::size_t>(w)] = 1;
          stack.push_back(w);
          next.push_back(0);
        }
      } else {
        color[static_cast<std::size_t>(v)] = 2;
        stack.pop_back();
        next.pop_back();
      }
    }
  }
  return {};
}

}  // namespace sfp::analysis
