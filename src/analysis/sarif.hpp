#pragma once
// SARIF 2.1.0 export for sfplint --sarif=FILE, so CI systems and editors
// that speak the OASIS Static Analysis Results Interchange Format can
// ingest the findings without a bespoke adapter. The document shape is
// the minimal valid profile: $schema + version at the top, one run with
// tool.driver.{name, rules[]} (every catalogue rule, indexed), and one
// result per finding carrying ruleId / ruleIndex / level / message.text /
// locations[0].physicalLocation.{artifactLocation.uri, region.startLine}.
// Suppressed and baselined findings are exported with the standard
// suppressions[] marker instead of being dropped, so downstream viewers
// show them greyed out rather than not at all.

#include <string>
#include <vector>

#include "analysis/passes.hpp"
#include "io/json.hpp"

namespace sfp::analysis {

/// Build the SARIF document for a scan. `baselined` are findings matched
/// by tools/sfplint_baseline.json (exported as externally suppressed).
io::json_value sarif_document(const analysis_result& r,
                              const std::vector<finding>& baselined);

}  // namespace sfp::analysis
