#pragma once
// Include-graph pass: extract `#include "module/header"` edges from the
// scanned tree and assemble the module dependency graph. The undirected
// skeleton is dogfooded through graph::csr (the same substrate the
// partitioners run on), which buys its structural validation and the
// graph::ops connectivity helpers for the report; the layering and cycle
// checks walk the directed edge list, which keeps per-include file:line
// provenance.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/source_model.hpp"
#include "graph/csr.hpp"

namespace sfp::analysis {

/// One cross-module include site inside src/.
struct include_edge {
  std::string from_module;
  std::string to_module;
  std::string file;    ///< repo-relative path of the including file
  int line = 0;        ///< 1-based line of the #include
  std::string target;  ///< the included path as written
};

struct module_graph {
  std::vector<std::string> modules;  ///< sorted src/ module names
  std::vector<include_edge> edges;   ///< cross-module edges (from != to)
  /// Directed adjacency: dep_of[i] lists module indices module i includes.
  std::vector<std::vector<int>> dep_of;
  /// Undirected module graph (edge weight = include-site count between the
  /// pair, vertex weight = file count). Validated on construction.
  graph::csr undirected;

  int index_of(std::string_view module) const;  ///< -1 when absent
};

/// Scan `#include "..."` directives in src/ files and build the graph.
module_graph build_module_graph(const source_tree& tree);

/// Modules forming a directed include cycle, first module repeated at the
/// end ("a -> b -> a" returns {a, b, a}); empty when the graph is acyclic.
std::vector<std::string> find_include_cycle(const module_graph& g);

/// All include targets of one file (used by the self-containment helpers
/// and the report). Targets are the quoted paths as written.
std::vector<std::pair<int, std::string>> quoted_includes(
    const source_file& f);

}  // namespace sfp::analysis
