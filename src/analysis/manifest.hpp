#pragma once
// Layering manifest: the declared module architecture sfplint enforces.
//
// The manifest (tools/layering.json) lists the src/ modules bottom-to-top
// in layer groups; a module may include modules in strictly lower layers
// and — because sibling modules inside one group are peers by declaration —
// modules in its own group, provided the include graph stays acyclic (the
// cycle pass runs regardless). "Sink" modules (obs, io) sit outside the
// layer order: any module may include a sink, and each sink's own allowed
// includes are declared explicitly.

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "io/json.hpp"

namespace sfp::analysis {

struct layering_manifest {
  /// Layer groups, bottom (index 0) to top.
  std::vector<std::vector<std::string>> layers;
  /// Sink module -> modules it may include (sinks may include sinks).
  std::map<std::string, std::vector<std::string>> sinks;
  /// Transport discipline (optional "transport" key): the module that owns
  /// the communication fabric, and the fabric types nobody else may
  /// construct directly — other modules must go through the designated
  /// runner entry points so every fabric is built in one auditable place.
  /// Empty fabric_module disables the check.
  std::string fabric_module;
  std::vector<std::string> fabric_types;

  /// Layer index of a module, -1 for sinks and unknown modules.
  int rank_of(std::string_view module) const;
  bool is_sink(std::string_view module) const;
  bool sink_may_include(std::string_view sink, std::string_view dep) const;
  /// Declared at all (layered or sink)?
  bool known(std::string_view module) const;
};

/// Parse from the JSON document shape of tools/layering.json:
///   { "layers": [["util"], ["graph","sfc"], ...],
///     "sinks": { "obs": ["util"], ... },
///     "transport": { "fabric_module": "runtime",
///                    "fabric_types": ["world"] } }
/// Throws sfp::contract_error on malformed or duplicate declarations.
layering_manifest manifest_from_json(const io::json_value& doc);

/// Read and parse a manifest file.
layering_manifest load_manifest(const std::string& path);

}  // namespace sfp::analysis
