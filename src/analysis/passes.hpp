#pragma once
// The sfplint rule passes. Each pass returns findings with a stable rule
// slug, repo-relative file, 1-based line, and a human-readable message.
// run_all() executes every pass, then applies the inline suppression
// convention: a finding on a line annotated `// lint: <rule>-ok — <reason>`
// moves to the suppressed list instead of failing the gate.
//
// Rule catalogue (see docs/static_analysis.md):
//   layering-cycle    include cycle between src/ modules (never suppressible)
//   layering-unknown  src/ module absent from the manifest (never
//                     suppressible — extend tools/layering.json instead)
//   layering          include edge that violates the declared layer order
//   determinism       std::rand / time() / random_device / unseeded std
//                     engines inside partitioner modules
//   contract-purity   side-effectful expression inside an SFP_* condition
//   runtime-throw     `throw` in src/runtime outside the designated
//                     abort/timeout implementation files
//   audit-header-loop SFP_AUDIT inside a loop in a header (inlined into
//                     every caller's hot path when audit builds are on)
//   pragma-once       header whose first directive is not #pragma once
//   blocking          bare blocking world call outside the timeout-aware
//                     wrappers (folded in from tools/lint.sh)
//   raw-assert        raw assert()/<cassert> in library code (folded in
//                     from tools/lint.sh)
//   retry-backoff     retry/retransmit loop in src/runtime or src/seam with
//                     no backoff in sight (tight retransmit loops melt the
//                     fabric exactly when it is already degraded)
//   transport-discipline
//                     direct construction of a fabric type (the manifest's
//                     "transport" section, e.g. runtime::world) outside the
//                     fabric module — production code must build fabrics
//                     through the designated runner entry points so every
//                     construction site is auditable

#include <string>
#include <vector>

#include "analysis/include_graph.hpp"
#include "analysis/manifest.hpp"
#include "analysis/source_model.hpp"

namespace sfp::analysis {

struct finding {
  std::string rule;
  std::string file;
  int line = 0;
  std::string message;
};

bool operator<(const finding& a, const finding& b);
bool operator==(const finding& a, const finding& b);

/// Policy knobs; the defaults encode this repo's rules.
struct pass_options {
  /// Modules where nondeterminism would break curve-slice reproducibility.
  std::vector<std::string> determinism_modules = {"core", "graph", "mgp",
                                                  "sfc"};
  /// Files allowed to make bare blocking world calls.
  std::vector<std::string> blocking_allowed_files = {"src/runtime/world.cpp",
                                                     "src/seam/exchange.cpp"};
  /// Trees the blocking rule scans.
  std::vector<std::string> blocking_trees = {"src/runtime", "src/seam"};
  /// Designated failure-path implementations allowed to throw in runtime.
  std::vector<std::string> throw_allowed_files = {
      "src/runtime/world.cpp", "src/runtime/fault.cpp",
      "src/runtime/reliable.cpp", "src/runtime/transport.cpp",
      "src/runtime/socket_transport.cpp"};
  /// Trees the retry-backoff rule scans.
  std::vector<std::string> retry_trees = {"src/runtime", "src/seam"};
};

std::vector<finding> check_layering(const module_graph& g,
                                    const layering_manifest& manifest);
std::vector<finding> check_determinism(const source_tree& tree,
                                       const pass_options& opts = {});
std::vector<finding> check_contract_discipline(const source_tree& tree,
                                               const pass_options& opts = {});
std::vector<finding> check_header_hygiene(const source_tree& tree);
std::vector<finding> check_blocking_calls(const source_tree& tree,
                                          const pass_options& opts = {});
std::vector<finding> check_raw_assert(const source_tree& tree);
std::vector<finding> check_retry_backoff(const source_tree& tree,
                                         const pass_options& opts = {});
std::vector<finding> check_transport_discipline(
    const source_tree& tree, const layering_manifest& manifest);

/// Everything run_all() knows at the end of a scan.
struct analysis_result {
  std::vector<finding> findings;    ///< outstanding violations, sorted
  std::vector<finding> suppressed;  ///< silenced by `lint: <rule>-ok` tags
  module_graph graph;
  std::size_t files_scanned = 0;
};

analysis_result run_all(const source_tree& tree,
                        const layering_manifest& manifest,
                        const pass_options& opts = {});

}  // namespace sfp::analysis
