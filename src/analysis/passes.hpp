#pragma once
// The sfplint rule passes. Each pass returns findings with a stable rule
// slug, repo-relative file, 1-based line, and a human-readable message.
// run_all() executes every pass, then applies the inline suppression
// convention: a finding on a line annotated `// lint: <rule>-ok — <reason>`
// moves to the suppressed list instead of failing the gate.
//
// The rule catalogue lives in ONE place: rule_catalogue() below. The CLI's
// --list-rules output, run_all()'s suppressibility decisions, and the
// docs/static_analysis.md rule table are all generated from / checked
// against it (analysis_test asserts every slug run_all() can emit appears
// in the catalogue exactly once).
//
// Token-level rules (per-file scans):
//   layering-cycle    include cycle between src/ modules (never suppressible)
//   layering-unknown  src/ module absent from the manifest (never
//                     suppressible — extend tools/layering.json instead)
//   layering          include edge that violates the declared layer order
//   determinism       std::rand / time() / random_device / unseeded std
//                     engines inside partitioner modules
//   contract-purity   side-effectful expression inside an SFP_* condition
//   runtime-throw     `throw` in src/runtime outside the designated
//                     abort/timeout implementation files
//   audit-header-loop SFP_AUDIT inside a loop in a header (inlined into
//                     every caller's hot path when audit builds are on)
//   pragma-once       header whose first directive is not #pragma once
//   blocking          bare blocking world call outside the timeout-aware
//                     wrappers (folded in from tools/lint.sh)
//   raw-assert        raw assert()/<cassert> in library code (folded in
//                     from tools/lint.sh)
//   retry-backoff     retry/retransmit loop in src/runtime or src/seam with
//                     no backoff in sight (tight retransmit loops melt the
//                     fabric exactly when it is already degraded)
//   transport-discipline
//                     direct construction of a fabric type (the manifest's
//                     "transport" section, e.g. runtime::world) outside the
//                     fabric module — production code must build fabrics
//                     through the designated runner entry points so every
//                     construction site is auditable
//
// Flow-aware rules (walks over the cross-TU call graph + concurrency
// model; see call_graph.hpp / concurrency_model.hpp):
//   determinism-transitive
//                     a partitioner-module function reaches rand/srand/
//                     time/random_device through a call chain — the
//                     transitive complement to `determinism`, which only
//                     sees direct uses
//   lock-order        cycle in the acquired-while-held lock-order graph
//                     across the whole repo (the static complement to
//                     TSan, which only catches the interleaving that
//                     actually fired)
//   blocking-while-locked
//                     a blocking call (cv wait, recv, barrier, sleep,
//                     collective) is made or transitively reachable while
//                     a mutex is held, outside the designated wait sites
//   unchecked-status  a bool/status-returning transport call
//                     (try_recv/try_recv_any) used as a bare statement in
//                     src/runtime / src/seam — dropped delivery statuses
//                     turn lost messages into silent hangs. v3 upgrade:
//                     a captured status (`bool ok = t.try_recv(...)`)
//                     must be read on EVERY path before it is overwritten
//                     or goes out of scope (backward must-analysis over
//                     the CFG) — a sometimes-checked status no longer
//                     passes
//
// Flow-sensitive rules (ride the per-function statement CFGs + the
// gen/kill dataflow solver; see cfg.hpp / dataflow.hpp):
//   overflow-arith    value-range classes propagated through the SFC
//                     key/threshold math in src/core / src/sfc: an
//                     unchecked `a*b` where both operands are K/Ne-scaled
//                     64-bit values (splitter dichotomy S(x)*nparts), or
//                     a K-scaled value narrowed into a 32-bit local
//                     without an explicit cast
//   resource-leak     an fd acquired in src/runtime (socket/accept/...)
//                     misses its close() on some early-return or
//                     exception edge; error-branch guards (`if (fd < 0)`)
//                     are understood via edge kills, RAII wrappers are
//                     exempt by construction (no raw int local)
//   use-after-move    a moved-from local is read on some path before it
//                     is reassigned / reset / rebound
//   suppression-format
//                     a `// lint:` annotation that is not the canonical
//                     `lint: <slug>-ok — <reason>` form (unknown slug,
//                     missing -ok, missing reason, wrong separator);
//                     the separator/spacing cases are autofixable via
//                     sfplint --fix

#include <string>
#include <string_view>
#include <vector>

#include "analysis/call_graph.hpp"
#include "analysis/cfg.hpp"
#include "analysis/concurrency_model.hpp"
#include "analysis/include_graph.hpp"
#include "analysis/manifest.hpp"
#include "analysis/source_model.hpp"

namespace sfp::analysis {

struct finding {
  std::string rule;
  std::string file;
  int line = 0;
  std::string message;
};

bool operator<(const finding& a, const finding& b);
bool operator==(const finding& a, const finding& b);

/// One catalogue entry; the single source of truth for the rule set.
struct rule_info {
  const char* slug;
  const char* summary;      ///< one line, shown by --list-rules
  bool suppressible;        ///< may be waved through with `lint: <slug>-ok`
};

/// Every rule sfplint can emit, in documentation order.
const std::vector<rule_info>& rule_catalogue();

/// Catalogue entry for `slug`; nullptr when unknown.
const rule_info* rule_by_slug(std::string_view slug);

/// Policy knobs; the defaults encode this repo's rules.
struct pass_options {
  /// Modules where nondeterminism would break curve-slice reproducibility.
  std::vector<std::string> determinism_modules = {"core", "graph", "mgp",
                                                  "sfc"};
  /// Files allowed to make bare blocking world calls.
  std::vector<std::string> blocking_allowed_files = {"src/runtime/world.cpp",
                                                     "src/seam/exchange.cpp"};
  /// Trees the blocking rule scans.
  std::vector<std::string> blocking_trees = {"src/runtime", "src/seam"};
  /// Individual files outside those trees the blocking rule also scans.
  /// dist_scan.cpp lives in core but hosts the regroup protocol's waits,
  /// so every blocking call there must carry a bounded-wait justification.
  std::vector<std::string> blocking_extra_files = {"src/core/dist_scan.cpp"};
  /// Designated failure-path implementations allowed to throw in runtime.
  std::vector<std::string> throw_allowed_files = {
      "src/runtime/world.cpp", "src/runtime/fault.cpp",
      "src/runtime/reliable.cpp", "src/runtime/transport.cpp",
      "src/runtime/socket_transport.cpp"};
  /// Trees the retry-backoff rule scans.
  std::vector<std::string> retry_trees = {"src/runtime", "src/seam"};
  /// Designated wait sites: files where blocking while holding a mutex is
  /// the implementation technique (cv waits in the fabric internals).
  std::vector<std::string> wait_allowed_files = {
      "src/runtime/world.cpp", "src/runtime/socket_transport.cpp"};
  /// Trees the unchecked-status rule scans.
  std::vector<std::string> status_trees = {"src/runtime", "src/seam"};
  /// Status-returning calls whose result must not be dropped.
  std::vector<std::string> status_call_names = {"try_recv", "try_recv_any"};
  /// Modules the overflow-arith value-range pass scans (the SFC
  /// key/threshold math whose int64 products gate the serial-parity wall).
  std::vector<std::string> overflow_modules = {"core", "sfc"};
  /// Identifiers treated as K/Ne-scaled regardless of declared type (the
  /// part count multiplies element-weight sums in the splitter dichotomy).
  std::vector<std::string> overflow_seed_names = {"nparts"};
  /// Trees the resource-leak pass scans.
  std::vector<std::string> leak_trees = {"src/runtime"};
  /// Calls whose int result is an owned descriptor.
  std::vector<std::string> leak_acquire_calls = {
      "socket", "accept", "accept4", "open",
      "epoll_create1", "eventfd", "dup", "timerfd_create"};
  /// Calls that release a descriptor (close_fd is the runtime module's
  /// EINTR-safe wrapper around ::close).
  std::vector<std::string> leak_release_calls = {"close", "close_fd"};
};

std::vector<finding> check_layering(const module_graph& g,
                                    const layering_manifest& manifest);
std::vector<finding> check_determinism(const source_tree& tree,
                                       const pass_options& opts = {});
std::vector<finding> check_contract_discipline(const source_tree& tree,
                                               const pass_options& opts = {});
std::vector<finding> check_header_hygiene(const source_tree& tree);
std::vector<finding> check_blocking_calls(const source_tree& tree,
                                          const pass_options& opts = {});
std::vector<finding> check_raw_assert(const source_tree& tree);
std::vector<finding> check_retry_backoff(const source_tree& tree,
                                         const pass_options& opts = {});
std::vector<finding> check_transport_discipline(
    const source_tree& tree, const layering_manifest& manifest);

/// The whole-repo lock-order graph: vertices are file-scoped mutex
/// identities, an edge A -> B means B is acquired (directly or through a
/// call chain) while A is held, with one witness site per edge.
struct lock_edge {
  int from = -1;     ///< index into `mutexes`
  int to = -1;
  std::string file;  ///< witness acquisition / call site
  int line = 0;
};

struct lock_order_graph {
  std::vector<std::string> mutexes;  ///< "<file>::<expr>" identities
  std::vector<lock_edge> edges;      ///< deduped on (from, to)
  /// First cycle found, as mutex names with front() repeated at the back
  /// ("a -> b -> a"); empty when the graph is acyclic.
  std::vector<std::string> cycle;
};

lock_order_graph build_lock_order_graph(const source_tree& tree,
                                        const call_graph& graph,
                                        const concurrency_model& model);

std::vector<finding> check_determinism_transitive(
    const source_tree& tree, const call_graph& graph,
    const concurrency_model& model, const pass_options& opts = {});
std::vector<finding> check_lock_order(const lock_order_graph& lock_graph);
std::vector<finding> check_blocking_while_locked(
    const source_tree& tree, const call_graph& graph,
    const concurrency_model& model, const pass_options& opts = {});
std::vector<finding> check_unchecked_status(const source_tree& tree,
                                            const pass_options& opts = {});

// --- v3 flow-sensitive passes (statement CFGs + gen/kill dataflow) ------

std::vector<finding> check_overflow_arith(
    const source_tree& tree, const call_graph& graph,
    const std::vector<function_cfg>& cfgs, const pass_options& opts = {});
std::vector<finding> check_resource_leak(
    const source_tree& tree, const call_graph& graph,
    const std::vector<function_cfg>& cfgs, const pass_options& opts = {});
std::vector<finding> check_use_after_move(
    const source_tree& tree, const call_graph& graph,
    const std::vector<function_cfg>& cfgs);
/// The path-sensitive unchecked-status upgrade: emits under the same
/// "unchecked-status" slug as the statement-position pass it extends.
std::vector<finding> check_status_paths(
    const source_tree& tree, const call_graph& graph,
    const std::vector<function_cfg>& cfgs, const pass_options& opts = {});
std::vector<finding> check_suppression_format(const source_tree& tree);

/// Everything run_all() knows at the end of a scan.
struct analysis_result {
  std::vector<finding> findings;    ///< outstanding violations, sorted
  std::vector<finding> suppressed;  ///< silenced by `lint: <rule>-ok` tags
  module_graph graph;
  call_graph calls;              ///< the cross-TU semantic model
  concurrency_model concurrency;
  lock_order_graph lock_order;
  std::vector<function_cfg> cfgs;  ///< per-function statement CFGs
  std::size_t files_scanned = 0;
};

analysis_result run_all(const source_tree& tree,
                        const layering_manifest& manifest,
                        const pass_options& opts = {});

/// Keep only findings (and suppressions) whose rule is in `slugs`; the
/// CLI's --rule=<slug>[,<slug>] triage mode. Unknown slugs are the
/// caller's problem — validate against rule_by_slug() first.
void filter_rules(analysis_result& r, const std::vector<std::string>& slugs);

}  // namespace sfp::analysis
