#pragma once
// A small gen/kill dataflow framework over the statement CFGs (cfg.hpp)
// for sfplint v3's flow-sensitive passes.
//
// Facts are dense bit indices chosen by the client pass — typically one
// per tracked local variable. The solver runs the classic worklist
// iteration to a fixpoint: `may` problems join with union (a fact holds
// if it reaches on SOME path) from an all-zero start, `must` problems
// join with intersection (the fact holds on EVERY path) from an all-one
// start, in either direction. Edge kills refine branch conditions: the
// resource-leak pass kills the "fd is open" fact along the error edge of
// `if (fd < 0) return;` so the guard's early return is not blamed as a
// leak path.

#include <cstddef>
#include <map>
#include <utility>
#include <vector>

#include "analysis/cfg.hpp"

namespace sfp::analysis {

/// Bit-vector per CFG node: facts[node][fact] in {0, 1}.
using fact_sets = std::vector<std::vector<char>>;

struct dataflow_problem {
  int num_facts = 0;
  bool forward = true;
  bool may = true;             ///< union join; false = intersection (must)
  fact_sets gen, kill;         ///< indexed [node][fact]
  std::vector<char> boundary;  ///< entry out-set (forward) / exit in-set
                               ///< (backward); empty = all zeros
  /// Facts killed when control takes the edge (from, to) specifically.
  std::map<std::pair<int, int>, std::vector<char>> edge_kill;
};

struct dataflow_result {
  fact_sets in, out;  ///< fixpoint in/out sets per node
};

/// All-zero fact sets sized for `cfg` x `num_facts`.
fact_sets make_fact_sets(const function_cfg& cfg, int num_facts);

dataflow_result solve_dataflow(const function_cfg& cfg,
                               const dataflow_problem& p);

}  // namespace sfp::analysis
