#include "analysis/manifest.hpp"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>

#include "util/contract.hpp"

namespace sfp::analysis {

int layering_manifest::rank_of(std::string_view module) const {
  for (std::size_t i = 0; i < layers.size(); ++i)
    for (const auto& m : layers[i])
      if (m == module) return static_cast<int>(i);
  return -1;
}

bool layering_manifest::is_sink(std::string_view module) const {
  return sinks.count(std::string(module)) > 0;
}

bool layering_manifest::sink_may_include(std::string_view sink,
                                         std::string_view dep) const {
  const auto it = sinks.find(std::string(sink));
  if (it == sinks.end()) return false;
  return std::find(it->second.begin(), it->second.end(), dep) !=
         it->second.end();
}

bool layering_manifest::known(std::string_view module) const {
  return rank_of(module) >= 0 || is_sink(module);
}

layering_manifest manifest_from_json(const io::json_value& doc) {
  SFP_REQUIRE(doc.is_object(), "layering manifest: top level must be object");
  layering_manifest m;
  const io::json_value& layers = doc.at("layers");
  SFP_REQUIRE(layers.is_array() && !layers.array.empty(),
              "layering manifest: 'layers' must be a non-empty array");
  std::set<std::string> seen;
  for (const auto& group : layers.array) {
    SFP_REQUIRE(group.is_array() && !group.array.empty(),
                "layering manifest: each layer must be a non-empty array");
    std::vector<std::string> names;
    for (const auto& name : group.array) {
      SFP_REQUIRE(name.is_string(),
                  "layering manifest: module names must be strings");
      SFP_REQUIRE(seen.insert(name.string).second,
                  "layering manifest: module declared twice: " + name.string);
      names.push_back(name.string);
    }
    m.layers.push_back(std::move(names));
  }
  if (doc.has("sinks")) {
    const io::json_value& sinks = doc.at("sinks");
    SFP_REQUIRE(sinks.is_object(),
                "layering manifest: 'sinks' must be an object");
    for (const auto& [sink, deps] : sinks.object) {
      SFP_REQUIRE(seen.insert(sink).second,
                  "layering manifest: module declared twice: " + sink);
      SFP_REQUIRE(deps.is_array(),
                  "layering manifest: sink deps must be an array");
      std::vector<std::string> names;
      for (const auto& dep : deps.array) {
        SFP_REQUIRE(dep.is_string(),
                    "layering manifest: sink deps must be strings");
        names.push_back(dep.string);
      }
      m.sinks.emplace(sink, std::move(names));
    }
  }
  // Sink dependency lists may only name declared modules.
  for (const auto& [sink, deps] : m.sinks)
    for (const auto& dep : deps)
      SFP_REQUIRE(seen.count(dep) > 0, "layering manifest: sink '" + sink +
                                           "' depends on undeclared module: " +
                                           dep);
  if (doc.has("transport")) {
    const io::json_value& transport = doc.at("transport");
    SFP_REQUIRE(transport.is_object(),
                "layering manifest: 'transport' must be an object");
    SFP_REQUIRE(transport.has("fabric_module") &&
                    transport.at("fabric_module").is_string(),
                "layering manifest: transport.fabric_module must be a string");
    m.fabric_module = transport.at("fabric_module").string;
    SFP_REQUIRE(seen.count(m.fabric_module) > 0,
                "layering manifest: transport.fabric_module names an "
                "undeclared module: " +
                    m.fabric_module);
    SFP_REQUIRE(transport.has("fabric_types") &&
                    transport.at("fabric_types").is_array() &&
                    !transport.at("fabric_types").array.empty(),
                "layering manifest: transport.fabric_types must be a "
                "non-empty array");
    for (const auto& t : transport.at("fabric_types").array) {
      SFP_REQUIRE(t.is_string(),
                  "layering manifest: fabric type names must be strings");
      m.fabric_types.push_back(t.string);
    }
  }
  return m;
}

layering_manifest load_manifest(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  SFP_REQUIRE(is.good(), "cannot read layering manifest: " + path);
  std::ostringstream buf;
  buf << is.rdbuf();
  return manifest_from_json(io::parse_json(buf.str()));
}

}  // namespace sfp::analysis
