#pragma once
// Baseline/suppression file support: makes the sfplint gate adoptable
// incrementally. A baseline entry names a rule and file (and optionally a
// message substring); findings it matches are reported as "baselined" and
// do not fail the gate. The committed baseline (tools/sfplint_baseline.json)
// is empty — every pre-existing violation was either fixed or annotated
// inline — and the convention is to keep it that way; baselining is an
// escape hatch for landing the gate on a dirty tree, not a suppression
// mechanism (that is what `// lint: <rule>-ok — <reason>` is for).

#include <string>
#include <vector>

#include "analysis/passes.hpp"
#include "io/json.hpp"

namespace sfp::analysis {

struct baseline_entry {
  std::string rule;
  std::string file;
  std::string match;  ///< optional message substring; empty matches any
};

/// Parse the document shape:
///   { "version": 1, "suppressions": [ {"rule": ..., "file": ...,
///     "match": ...}, ... ] }
std::vector<baseline_entry> baseline_from_json(const io::json_value& doc);

/// Read and parse a baseline file.
std::vector<baseline_entry> load_baseline(const std::string& path);

/// Move findings matched by the baseline out of r.findings; returns them.
std::vector<finding> apply_baseline(analysis_result& r,
                                    const std::vector<baseline_entry>& bl);

/// Serialize the given findings as a baseline document (--write-baseline).
io::json_value baseline_to_json(const std::vector<finding>& findings);

}  // namespace sfp::analysis
