#pragma once
// Changed-line sets for sfplint --diff-base=REV: the differential mode
// reports only findings whose (file, line) lands on a line added or
// modified relative to a git revision, so pre-existing debt does not
// drown out what THIS change introduced. The parser consumes unified
// diff text (git diff --unified=0 is what the CLI asks for, but any
// hunk-header format works); the collector shells out to git.
//
// Caveat inherited by the CLI: a finding whose anchor line is untouched
// but whose cause is a changed line elsewhere (e.g. a leak whose close()
// was deleted) is filtered out — differential mode narrows, the full
// scan remains the source of truth.

#include <map>
#include <string>
#include <vector>

namespace sfp::analysis {

/// New-side changed line ranges per repo-relative path.
struct changed_lines {
  /// path -> sorted, disjoint [first, last] 1-based inclusive ranges
  std::map<std::string, std::vector<std::pair<int, int>>> ranges;

  bool contains(const std::string& path, int line) const;
  bool empty() const { return ranges.empty(); }
};

/// Parse unified diff text: `+++ b/PATH` headers select the file,
/// `@@ -a[,b] +c[,d] @@` hunks contribute [c, c+d-1] (d omitted = 1,
/// d == 0 = pure deletion, contributes nothing).
changed_lines parse_unified_diff(std::string_view diff);

/// Run `git -C root diff --unified=0 REV` over the scanned subtrees and
/// parse the result. On failure (bad revision, not a git checkout) sets
/// `*error` and returns an empty set.
changed_lines collect_git_changed_lines(const std::string& root,
                                        const std::string& rev,
                                        std::string* error);

}  // namespace sfp::analysis
