#pragma once
// Statement-level control-flow graphs for sfplint v3.
//
// Each extracted function body (the call_graph's body byte ranges) is
// parsed by a recursive-descent statement walker over the stripped +
// preprocessor-blanked text into a CFG: one node per statement or control
// header, edges for sequencing, branching (if/else, switch), loops
// (while / for / range-for / do-while with back edges, break/continue
// routed to the enclosing construct), and early exits (return/throw edge
// straight to the synthetic exit node). try/catch is over-approximated:
// every statement of a try block may edge into each handler.
//
// The walker is a lexer-level approximation, like the rest of sfplint: a
// lambda or local class inside a statement is swallowed as one opaque
// node (its internal control flow is invisible), goto is not modelled,
// and short-circuit/ternary expressions are single nodes. The dataflow
// passes riding on the CFG (overflow-arith, resource-leak, use-after-move,
// the path-sensitive unchecked-status) inherit this envelope and
// over-approximate toward reporting, with `lint: <rule>-ok` as the
// reviewed escape hatch.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/call_graph.hpp"
#include "analysis/source_model.hpp"

namespace sfp::analysis {

struct cfg_node {
  enum class kind {
    entry,   ///< synthetic function entry (empty byte range)
    exit,    ///< synthetic function exit
    stmt,    ///< plain statement (ends at `;` or swallows a `{...}`)
    branch,  ///< if/switch header
    loop,    ///< while/for/do condition header; target of back edges
    ret,     ///< return statement (edges to exit)
    raise,   ///< throw statement (edges to exit)
  };
  kind k = kind::stmt;
  std::size_t begin = 0;  ///< byte range in the blanked file text
  std::size_t end = 0;
  int line = 0;
  std::vector<int> succ;
  std::vector<int> pred;
  /// For branch/loop nodes: the successor entered when the condition
  /// holds (then-branch / loop body / first switch case); -1 when the
  /// body is empty. Every *other* successor is a false/fallthrough edge —
  /// the edge-kill facility in dataflow.hpp uses the distinction to model
  /// `if (fd < 0) return;` style error-branch guards.
  int then_succ = -1;
};

struct function_cfg {
  int function = -1;  ///< index into call_graph::functions (-1 in fixtures)
  std::vector<cfg_node> nodes;  ///< [0] = entry, [1] = exit
  int entry = 0;
  int exit = 1;
  std::size_t num_edges() const;
};

/// Build one CFG from the body byte range [body_begin, body_end) — the
/// braces included — of `text` (stripped + preprocessor-blanked).
/// `file` supplies line provenance.
function_cfg build_cfg(const source_file& file, std::string_view text,
                       std::size_t body_begin, std::size_t body_end);

/// CFGs for every function in `graph`, index-aligned with
/// `graph.functions`.
std::vector<function_cfg> build_cfgs(const source_tree& tree,
                                     const call_graph& graph);

/// One local variable (parameter or block-scope declaration), extracted
/// by the same lexer-level heuristics the CFG uses.
struct local_decl {
  std::string name;
  std::string type;        ///< normalized, cv/storage words and <args> dropped
  std::size_t pos = 0;     ///< byte offset of the declared name
  int line = 0;
  bool parameter = false;
  bool reference = false;  ///< declared `T&` / `T&&`
  bool pointer = false;    ///< declared `T*`
};

/// Parameters and block-scope declarations of `fn` over the blanked
/// `text`. Single-declarator forms only: `int a = 1, b = 2;` yields `a`.
std::vector<local_decl> collect_locals(const source_file& file,
                                       std::string_view text,
                                       const function_def& fn);

}  // namespace sfp::analysis
