#pragma once
// Cross-TU call graph for sfplint v2: the semantic layer of the source
// model. Function definitions and call sites are extracted from the lexed
// (comment/string-stripped) token stream — no compiler front-end — and
// calls are resolved to definitions by qualified-name heuristics, giving
// the flow-aware passes (determinism-transitive, lock-order,
// blocking-while-locked) a whole-repo graph to walk.
//
// Extraction heuristics (and the false-negative envelope they imply):
//   * A definition is `name(...)` at namespace/class scope followed — after
//     `const`/`noexcept(...)`/`override`/`final`/`try`, a trailing return
//     type, or a constructor initializer list — by a `{` body. Functions
//     materialized by macros, `operator` overloads, and lambdas are not
//     extracted (a lambda's body is attributed to its enclosing function).
//   * A call site is `name(` or `a::b::name(` inside a function body, with
//     `.name(` / `->name(` marked as member calls. Template-argument call
//     spellings (`f<int>(x)`) are not matched.
//   * Resolution is by qualified-name suffix: the written components must
//     suffix-match a definition's fully-qualified components. Member calls
//     match any class-member definition with the same terminal name (the
//     receiver's type is unknown at token level), so member resolution
//     over-approximates. Anonymous-namespace definitions are file-local:
//     they only resolve from call sites in their own file, and an
//     unqualified call preferring a same-file candidate binds to it alone.
//   * Over-approximation is deliberate: the downstream passes use the graph
//     for reachability taint, where extra edges err on the side of
//     reporting and a `lint: <rule>-ok` tag is the reviewed escape hatch.
//
// The function-level undirected skeleton is dogfooded through graph::csr,
// like the include graph: validation and connectivity come for free and
// feed the JSON report's "callgraph" summary.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/source_model.hpp"
#include "graph/csr.hpp"

namespace sfp::analysis {

/// One extracted function definition.
struct function_def {
  std::string qualified;  ///< "sfp::runtime::world::send" (scopes joined)
  std::string name;       ///< terminal component ("send")
  int file = -1;          ///< index into source_tree::files
  int line = 0;           ///< 1-based line of the defining name
  std::size_t name_pos = 0;    ///< byte offset of the name in the file
  std::size_t body_begin = 0;  ///< offset of the body '{'
  std::size_t body_end = 0;    ///< offset one past the matching '}'
  bool member = false;      ///< defined at class scope (or written a::b)
  bool file_local = false;  ///< inside an anonymous namespace
};

/// One call site inside a function body.
struct call_site {
  int caller = -1;      ///< index into call_graph::functions
  std::string written;  ///< the name as written, `::` qualifiers kept
  bool member = false;  ///< `.name(` / `->name(`
  int line = 0;
  std::size_t pos = 0;       ///< byte offset of the written name
  std::vector<int> targets;  ///< resolved definition indices, sorted
};

struct call_graph {
  std::vector<function_def> functions;  ///< ordered by (file, position)
  std::vector<call_site> calls;         ///< ordered by (caller, position)
  /// Per function: indices into `calls` of its call sites.
  std::vector<std::vector<int>> calls_of;
  /// Per function: resolved callee function indices, sorted + deduped.
  std::vector<std::vector<int>> callees_of;
  /// Undirected function-level skeleton through the dogfooded CSR
  /// (edge weight = resolved call-site count between the pair).
  graph::csr undirected;
  std::size_t resolved_calls = 0;    ///< call sites with >= 1 target
  std::size_t unresolved_calls = 0;  ///< call sites binding nothing we own

  /// Index of the function whose body contains byte `pos` of file
  /// `file_index`; -1 when the position is outside every body.
  int function_at(int file_index, std::size_t pos) const;
  /// First function with this exact qualified name; -1 when absent.
  int index_of(std::string_view qualified) const;
};

/// Extract definitions and call sites from every file and resolve calls.
call_graph build_call_graph(const source_tree& tree);

/// Blank every preprocessor-directive line (and its backslash
/// continuations), preserving newlines, so macro bodies with unbalanced
/// braces cannot desync a scope or statement scanner. Shared by the
/// definition extractor here and the CFG builder (cfg.hpp).
std::string blank_preprocessor(std::string_view text);

}  // namespace sfp::analysis
