#include "analysis/cfg.hpp"

#include <algorithm>
#include <cctype>

namespace sfp::analysis {

namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool ws_char(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}

std::size_t skip_ws(std::string_view text, std::size_t i, std::size_t end) {
  while (i < end && ws_char(text[i])) ++i;
  return i;
}

/// The identifier starting exactly at `i`; empty when none starts there.
std::string_view ident_at(std::string_view text, std::size_t i,
                          std::size_t end) {
  if (i >= end || !ident_char(text[i]) ||
      std::isdigit(static_cast<unsigned char>(text[i])) != 0)
    return {};
  std::size_t p = i;
  while (p < end && ident_char(text[p])) ++p;
  return text.substr(i, p - i);
}

/// Position one past the `close` matching `text[i] == open`; `end` when
/// unbalanced.
std::size_t match_balanced(std::string_view text, std::size_t i,
                           std::size_t end, char open, char close) {
  int depth = 0;
  for (; i < end; ++i) {
    if (text[i] == open) ++depth;
    else if (text[i] == close && --depth == 0) return i + 1;
  }
  return end;
}

/// Skip a balanced `<...>` at `i`; returns `i` unchanged when a `;{}`
/// proves this was a comparison, not template arguments.
std::size_t skip_angles(std::string_view text, std::size_t i,
                        std::size_t end) {
  const std::size_t start = i;
  int depth = 0;
  for (; i < end; ++i) {
    const char c = text[i];
    if (c == '<') ++depth;
    else if (c == '>') {
      if (--depth == 0) return i + 1;
    } else if (c == ';' || c == '{' || c == '}') {
      return start;
    }
  }
  return start;
}

bool is_keyword(std::string_view w) {
  static const char* const kws[] = {
      "if",       "else",     "while",    "for",      "do",
      "switch",   "case",     "default",  "return",   "break",
      "continue", "throw",    "try",      "catch",    "new",
      "delete",   "sizeof",   "goto",     "using",    "typedef",
      "template", "typename", "class",    "struct",   "enum",
      "union",    "namespace", "operator", "public",  "private",
      "protected", "co_return", "co_await", "co_yield",
      "static_assert", "alignas", "alignof", "decltype", "noexcept",
      "nullptr",  "true",     "false",    "this"};
  for (const char* k : kws)
    if (w == k) return true;
  return false;
}

bool is_cv_storage(std::string_view w) {
  return w == "const" || w == "constexpr" || w == "static" ||
         w == "volatile" || w == "mutable" || w == "register" ||
         w == "thread_local" || w == "inline" || w == "extern";
}

bool is_builtin_word(std::string_view w) {
  return w == "unsigned" || w == "signed" || w == "long" || w == "short" ||
         w == "int" || w == "char" || w == "bool" || w == "float" ||
         w == "double" || w == "auto" || w == "void" || w == "wchar_t";
}

/// Parse a type spelling at `i`: cv/storage words are skipped, then either
/// a builtin word chain ("unsigned long long") or one qualified identifier
/// with template arguments ("std::vector<int>", normalized to
/// "std::vector"). Returns empty when `i` does not start a plausible type;
/// `i` advances past whatever was consumed either way.
std::string read_type(std::string_view text, std::size_t& i,
                      std::size_t end) {
  std::string type;
  while (true) {
    i = skip_ws(text, i, end);
    const std::string_view w = ident_at(text, i, end);
    if (w.empty()) return type;
    if (is_cv_storage(w)) {
      i += w.size();
      continue;
    }
    if (is_keyword(w)) return type;
    if (is_builtin_word(w)) {
      std::string_view b = w;
      while (!b.empty() && is_builtin_word(b)) {
        if (!type.empty()) type += ' ';
        type += std::string(b);
        i += b.size();
        i = skip_ws(text, i, end);
        b = ident_at(text, i, end);
      }
      return type;
    }
    // Qualified identifier chain, template arguments dropped.
    type = std::string(w);
    i += w.size();
    while (i < end) {
      if (text[i] == '<') {
        const std::size_t past = skip_angles(text, i, end);
        if (past == i) break;
        i = past;
      } else if (i + 1 < end && text[i] == ':' && text[i + 1] == ':') {
        const std::string_view comp = ident_at(text, i + 2, end);
        if (comp.empty()) break;
        type += "::";
        type += std::string(comp);
        i += 2 + comp.size();
      } else {
        break;
      }
    }
    return type;
  }
}

/// The CFG statement walker. Every parse_* takes the current fall-in
/// tails — nodes whose control flows into the next statement — and
/// returns the tails after it; a statement that never falls through
/// (return/throw/break/continue) returns the empty set.
struct builder {
  const source_file& file;
  std::string_view text;
  function_cfg cfg;
  std::vector<int>* break_sink = nullptr;  // innermost loop/switch
  int continue_target = -1;                // innermost loop header

  int add(cfg_node::kind k, std::size_t b, std::size_t e) {
    cfg_node n;
    n.k = k;
    n.begin = b;
    n.end = e;
    n.line = file.line_of(b);
    cfg.nodes.push_back(std::move(n));
    return static_cast<int>(cfg.nodes.size()) - 1;
  }

  void link(int from, int to) {
    auto& succ = cfg.nodes[static_cast<std::size_t>(from)].succ;
    if (std::find(succ.begin(), succ.end(), to) != succ.end()) return;
    succ.push_back(to);
    cfg.nodes[static_cast<std::size_t>(to)].pred.push_back(from);
  }

  void link_all(const std::vector<int>& tails, int to) {
    for (const int t : tails) link(t, to);
  }

  static void merge(std::vector<int>& into, const std::vector<int>& from) {
    for (const int t : from)
      if (std::find(into.begin(), into.end(), t) == into.end())
        into.push_back(t);
  }

  int first_succ(int node) const {
    const auto& succ = cfg.nodes[static_cast<std::size_t>(node)].succ;
    return succ.empty() ? -1 : succ.front();
  }

  /// Consume one full statement to its `;` at bracket depth 0 (stopping
  /// before an unmatched closer). Lambdas/braced initializers nest.
  void skip_to_semi(std::size_t& i, std::size_t end) {
    int depth = 0;
    while (i < end) {
      const char c = text[i];
      if (c == '(' || c == '[' || c == '{') {
        ++depth;
      } else if (c == ')' || c == ']' || c == '}') {
        if (depth == 0) return;
        --depth;
      } else if (c == ';' && depth == 0) {
        ++i;
        return;
      }
      ++i;
    }
  }

  std::vector<int> parse_seq(std::size_t& i, std::size_t end,
                             std::vector<int> tails) {
    while (true) {
      i = skip_ws(text, i, end);
      if (i >= end || text[i] == '}') break;
      tails = parse_stmt(i, end, std::move(tails));
    }
    return tails;
  }

  std::vector<int> parse_block(std::size_t& i, std::size_t end,
                               std::vector<int> tails) {
    const std::size_t close = match_balanced(text, i, end, '{', '}');
    std::size_t j = i + 1;
    tails = parse_seq(j, close > i ? close - 1 : end, std::move(tails));
    i = close;
    return tails;
  }

  /// `keyword (cond)` header: returns the node, `i` past the `)`.
  int parse_header(cfg_node::kind k, std::size_t& i, std::size_t end,
                   std::size_t kw_begin, std::size_t kw_len) {
    i = kw_begin + kw_len;
    i = skip_ws(text, i, end);
    if (ident_at(text, i, end) == "constexpr") {  // if constexpr
      i += 9;
      i = skip_ws(text, i, end);
    }
    std::size_t close = i;
    if (i < end && text[i] == '(') {
      close = match_balanced(text, i, end, '(', ')');
      i = close;
    }
    return add(k, kw_begin, close);
  }

  std::vector<int> parse_if(std::size_t& i, std::size_t end,
                            std::vector<int> tails) {
    const int head = parse_header(cfg_node::kind::branch, i, end, i, 2);
    link_all(tails, head);
    std::vector<int> out = parse_stmt(i, end, {head});
    cfg.nodes[static_cast<std::size_t>(head)].then_succ = first_succ(head);
    const std::size_t save = i;
    const std::size_t p = skip_ws(text, i, end);
    if (ident_at(text, p, end) == "else") {
      i = p + 4;
      merge(out, parse_stmt(i, end, {head}));
    } else {
      i = save;
      merge(out, {head});  // fallthrough when the condition is false
    }
    return out;
  }

  std::vector<int> parse_loop(std::size_t& i, std::size_t end,
                              std::vector<int> tails, std::size_t kw_len) {
    const int head = parse_header(cfg_node::kind::loop, i, end, i, kw_len);
    link_all(tails, head);
    std::vector<int> breaks;
    auto* const save_sink = break_sink;
    const int save_cont = continue_target;
    break_sink = &breaks;
    continue_target = head;
    const std::vector<int> body_tails = parse_stmt(i, end, {head});
    break_sink = save_sink;
    continue_target = save_cont;
    cfg.nodes[static_cast<std::size_t>(head)].then_succ = first_succ(head);
    link_all(body_tails, head);  // back edge
    std::vector<int> out{head};
    merge(out, breaks);
    return out;
  }

  std::vector<int> parse_do(std::size_t& i, std::size_t end,
                            std::vector<int> tails) {
    const std::size_t kw_begin = i;
    i += 2;
    const int head = add(cfg_node::kind::loop, kw_begin, kw_begin + 2);
    const int first_body = static_cast<int>(cfg.nodes.size());
    std::vector<int> breaks;
    auto* const save_sink = break_sink;
    const int save_cont = continue_target;
    break_sink = &breaks;
    continue_target = head;
    std::vector<int> body_tails = parse_stmt(i, end, std::move(tails));
    break_sink = save_sink;
    continue_target = save_cont;
    // `while (cond);` tail: retarget the head node to the condition.
    std::size_t p = skip_ws(text, i, end);
    if (ident_at(text, p, end) == "while") {
      std::size_t q = skip_ws(text, p + 5, end);
      std::size_t close = q;
      if (q < end && text[q] == '(') close = match_balanced(text, q, end, '(', ')');
      auto& h = cfg.nodes[static_cast<std::size_t>(head)];
      h.begin = p;
      h.end = close;
      h.line = file.line_of(p);
      i = close;
      i = skip_ws(text, i, end);
      if (i < end && text[i] == ';') ++i;
    }
    link_all(body_tails, head);
    if (first_body < static_cast<int>(cfg.nodes.size())) {
      link(head, first_body);  // back edge into the body
      cfg.nodes[static_cast<std::size_t>(head)].then_succ = first_body;
    }
    std::vector<int> out{head};
    merge(out, breaks);
    return out;
  }

  std::vector<int> parse_switch(std::size_t& i, std::size_t end,
                                std::vector<int> tails) {
    const int head = parse_header(cfg_node::kind::branch, i, end, i, 6);
    link_all(tails, head);
    std::vector<int> breaks;
    auto* const save_sink = break_sink;
    break_sink = &breaks;  // continue still targets the enclosing loop
    std::vector<int> out;
    bool has_default = false;
    i = skip_ws(text, i, end);
    if (i < end && text[i] == '{') {
      const std::size_t close = match_balanced(text, i, end, '{', '}');
      const std::size_t body_end = close > i ? close - 1 : end;
      std::size_t j = i + 1;
      std::vector<int> run;  // tails flowing into the next statement
      while (true) {
        j = skip_ws(text, j, body_end);
        if (j >= body_end) break;
        const std::string_view kw = ident_at(text, j, body_end);
        if (kw == "case" || kw == "default") {
          if (kw == "default") has_default = true;
          j += kw.size();
          while (j < body_end) {  // to the label's ':' (`::` skipped)
            if (text[j] == ':') {
              if (j + 1 < body_end && text[j + 1] == ':') {
                j += 2;
                continue;
              }
              ++j;
              break;
            }
            ++j;
          }
          merge(run, {head});
          continue;
        }
        run = parse_stmt(j, body_end, std::move(run));
      }
      merge(out, run);
      i = close;
    }
    break_sink = save_sink;
    merge(out, breaks);
    if (!has_default) merge(out, {head});
    cfg.nodes[static_cast<std::size_t>(head)].then_succ = first_succ(head);
    return out;
  }

  std::vector<int> parse_try(std::size_t& i, std::size_t end,
                             std::vector<int> tails) {
    i += 3;
    i = skip_ws(text, i, end);
    const std::vector<int> fallin = tails;
    const int first_node = static_cast<int>(cfg.nodes.size());
    std::vector<int> out = parse_stmt(i, end, std::move(tails));
    // Over-approximation: any try-block statement may throw into each
    // handler (including return/throw nodes, which keep their exit edge).
    std::vector<int> throwers;
    for (int n = first_node; n < static_cast<int>(cfg.nodes.size()); ++n)
      throwers.push_back(n);
    while (true) {
      const std::size_t p = skip_ws(text, i, end);
      if (ident_at(text, p, end) != "catch") break;
      i = p + 5;
      i = skip_ws(text, i, end);
      if (i < end && text[i] == '(')
        i = match_balanced(text, i, end, '(', ')');
      merge(out, parse_stmt(i, end, throwers.empty() ? fallin : throwers));
    }
    return out;
  }

  std::vector<int> parse_stmt(std::size_t& i, std::size_t end,
                              std::vector<int> tails) {
    i = skip_ws(text, i, end);
    if (i >= end) return tails;
    const char c = text[i];
    if (c == ';') {
      ++i;
      return tails;
    }
    if (c == '{') return parse_block(i, end, std::move(tails));
    const std::string_view kw = ident_at(text, i, end);
    if (kw == "if") return parse_if(i, end, std::move(tails));
    if (kw == "while") return parse_loop(i, end, std::move(tails), 5);
    if (kw == "for") return parse_loop(i, end, std::move(tails), 3);
    if (kw == "do") return parse_do(i, end, std::move(tails));
    if (kw == "switch") return parse_switch(i, end, std::move(tails));
    if (kw == "try") return parse_try(i, end, std::move(tails));
    if (kw == "return" || kw == "co_return" || kw == "throw") {
      const std::size_t b = i;
      skip_to_semi(i, end);
      const int n = add(kw == "throw" ? cfg_node::kind::raise
                                      : cfg_node::kind::ret,
                        b, i);
      link_all(tails, n);
      link(n, cfg.exit);
      return {};
    }
    if (kw == "break" || kw == "continue") {
      const std::size_t b = i;
      skip_to_semi(i, end);
      const int n = add(cfg_node::kind::stmt, b, i);
      link_all(tails, n);
      if (kw == "break" && break_sink != nullptr)
        break_sink->push_back(n);
      else if (kw == "continue" && continue_target >= 0)
        link(n, continue_target);
      else
        link(n, cfg.exit);  // malformed input; stay safe
      return {};
    }
    if (kw == "case" || kw == "default") {
      // Stray label outside parse_switch (malformed): skip to its ':'.
      i += kw.size();
      while (i < end && text[i] != ':' && text[i] != ';' && text[i] != '}')
        ++i;
      if (i < end && text[i] == ':') ++i;
      return tails;
    }
    if (!kw.empty()) {
      // `name:` goto label — skip it, keep walking the same tails.
      std::size_t p = skip_ws(text, i + kw.size(), end);
      if (p < end && text[p] == ':' &&
          (p + 1 >= end || text[p + 1] != ':')) {
        i = p + 1;
        return tails;
      }
    }
    const std::size_t b = i;
    skip_to_semi(i, end);
    if (i == b) ++i;  // never stall on unexpected input
    const int n = add(cfg_node::kind::stmt, b, i);
    link_all(tails, n);
    return {n};
  }
};

}  // namespace

std::size_t function_cfg::num_edges() const {
  std::size_t n = 0;
  for (const cfg_node& nd : nodes) n += nd.succ.size();
  return n;
}

function_cfg build_cfg(const source_file& file, std::string_view text,
                       std::size_t body_begin, std::size_t body_end) {
  builder b{file, text, {}};
  b.add(cfg_node::kind::entry, body_begin, body_begin);
  b.add(cfg_node::kind::exit, body_end, body_end);
  std::vector<int> tails{b.cfg.entry};
  if (body_begin < body_end && body_begin < text.size() &&
      text[body_begin] == '{') {
    std::size_t i = body_begin + 1;
    tails = b.parse_seq(i, body_end > 0 ? body_end - 1 : 0, std::move(tails));
  }
  b.link_all(tails, b.cfg.exit);
  return std::move(b.cfg);
}

std::vector<function_cfg> build_cfgs(const source_tree& tree,
                                     const call_graph& graph) {
  std::vector<function_cfg> out;
  out.reserve(graph.functions.size());
  int last_file = -1;
  std::string blanked;
  for (std::size_t fi = 0; fi < graph.functions.size(); ++fi) {
    const function_def& fn = graph.functions[fi];
    if (fn.file != last_file) {  // functions are ordered by (file, pos)
      blanked =
          blank_preprocessor(tree.files[static_cast<std::size_t>(fn.file)]
                                 .stripped);
      last_file = fn.file;
    }
    function_cfg cfg =
        build_cfg(tree.files[static_cast<std::size_t>(fn.file)], blanked,
                  fn.body_begin, fn.body_end);
    cfg.function = static_cast<int>(fi);
    out.push_back(std::move(cfg));
  }
  return out;
}

namespace {

/// Try `TYPE [&*] NAME <sep>` at `j`; pushes and returns true on match.
bool try_decl(std::string_view text, std::size_t& j, std::size_t end,
              const source_file& f, bool parameter,
              std::vector<local_decl>& out) {
  const std::string type = read_type(text, j, end);
  if (type.empty()) return false;
  std::size_t p = skip_ws(text, j, end);
  bool ref = false;
  bool ptr = false;
  while (p < end && (text[p] == '&' || text[p] == '*')) {
    if (text[p] == '&') ref = true;
    else ptr = true;
    ++p;
    p = skip_ws(text, p, end);
  }
  if (type == "auto" && p < end && text[p] == '[') {
    // Structured binding: `auto& [a, b] = ...` (or a range-for's
    // `auto& [k, v] : map`). Each introduced name is a local.
    std::size_t close = p + 1;
    while (close < end && text[close] != ']' && text[close] != ';' &&
           text[close] != '{')
      ++close;
    if (close >= end || text[close] != ']') return false;
    bool any = false;
    std::size_t q = p + 1;
    while (q < close) {
      q = skip_ws(text, q, close);
      const std::string_view bound = ident_at(text, q, close);
      if (bound.empty() || is_keyword(bound)) break;
      local_decl d;
      d.name = std::string(bound);
      d.type = "auto";
      d.pos = q;
      d.line = f.line_of(q);
      d.parameter = parameter;
      d.reference = true;  // binds a subobject; never independently owned
      d.pointer = false;
      out.push_back(std::move(d));
      any = true;
      q = skip_ws(text, q + bound.size(), close);
      if (q >= close || text[q] != ',') break;
      ++q;
    }
    if (!any) return false;
    j = close + 1;
    return true;
  }
  const std::string_view name = ident_at(text, p, end);
  if (name.empty() || is_keyword(name)) return false;
  std::size_t after = skip_ws(text, p + name.size(), end);
  const char sep = after < end ? text[after] : (parameter ? ',' : '\0');
  const bool decl_sep = sep == '=' || sep == ';' || sep == '{' ||
                        sep == '(' || sep == ',' ||
                        (sep == ':' &&
                         (after + 1 >= end || text[after + 1] != ':')) ||
                        (parameter && sep == ')');
  if (!decl_sep) return false;
  local_decl d;
  d.name = std::string(name);
  d.type = type;
  d.pos = p;
  d.line = f.line_of(p);
  d.parameter = parameter;
  d.reference = ref;
  d.pointer = ptr;
  out.push_back(std::move(d));
  j = after;
  return true;
}

}  // namespace

std::vector<local_decl> collect_locals(const source_file& file,
                                       std::string_view text,
                                       const function_def& fn) {
  std::vector<local_decl> out;

  // Parameters: the (...) between the defining name and the body.
  std::size_t p = fn.name_pos;
  while (p < fn.body_begin && p < text.size() && text[p] != '(') ++p;
  if (p < fn.body_begin) {
    const std::size_t close =
        match_balanced(text, p, fn.body_begin, '(', ')');
    std::size_t seg = p + 1;
    int depth = 0;
    for (std::size_t i = p + 1; i < close; ++i) {
      const char c = text[i];
      if (c == '(' || c == '[' || c == '{' || c == '<') {
        ++depth;
      } else if (c == ']' || c == '}') {
        if (depth > 0) --depth;
      } else if (c == '>') {
        if (depth > 0) --depth;
      } else if (c == ')') {
        if (i + 1 == close || depth == 0) {
          std::size_t j = seg;
          try_decl(text, j, i, file, true, out);
          break;
        }
        --depth;
      } else if (c == ',' && depth == 0) {
        std::size_t j = seg;
        try_decl(text, j, i, file, true, out);
        seg = i + 1;
      }
    }
  }

  // Block-scope declarations: at every statement boundary, try the
  // two-identifier `TYPE NAME` shape.
  std::size_t i = fn.body_begin;
  const std::size_t end = std::min(fn.body_end, text.size());
  bool boundary = true;
  while (i < end) {
    const char c = text[i];
    if (ws_char(c)) {
      ++i;
      continue;
    }
    if (c == '{' || c == '}' || c == ';' || c == '(' || c == ',') {
      boundary = true;
      ++i;
      continue;
    }
    if (!boundary || !ident_char(c)) {
      boundary = false;
      ++i;
      continue;
    }
    std::size_t j = i;
    const bool matched = try_decl(text, j, end, file, false, out);
    boundary = false;
    i = (matched || j > i) ? std::max(j, i + 1) : i + 1;
  }
  return out;
}

}  // namespace sfp::analysis
