#include "analysis/source_model.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/contract.hpp"

namespace sfp::analysis {

namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Extract `lint: <slug>-ok` tags — and every commented `lint:`
/// occurrence, for the suppression-format rule — from one raw line.
void collect_tags(std::string_view raw_line, int lineno,
                  std::size_t line_begin,
                  std::map<int, std::vector<std::string>>& ok,
                  std::vector<lint_tag>& tags) {
  const std::size_t comment = raw_line.find("//");
  std::size_t pos = 0;
  while ((pos = raw_line.find("lint:", pos)) != std::string_view::npos) {
    // Word boundary: "sfplint:" in prose is not an annotation.
    if (pos > 0 && ident_char(raw_line[pos - 1])) {
      pos += 5;
      continue;
    }
    std::size_t p = pos + 5;
    while (p < raw_line.size() && raw_line[p] == ' ') ++p;
    std::size_t start = p;
    while (p < raw_line.size() &&
           (std::isalnum(static_cast<unsigned char>(raw_line[p])) != 0 ||
            raw_line[p] == '-'))
      ++p;
    std::string_view token = raw_line.substr(start, p - start);
    if (token.size() > 3 && token.substr(token.size() - 3) == "-ok")
      ok[lineno].emplace_back(token.substr(0, token.size() - 3));
    // Prose mentions ("lint: <rule>-ok" in docs) read an empty token at
    // the '<' and are not tags; string literals lack the `//`.
    if (!token.empty() && comment != std::string_view::npos &&
        comment < pos) {
      lint_tag t;
      t.line = lineno;
      t.pos = line_begin + pos;
      t.rest_pos = line_begin + p;
      t.token = std::string(token);
      t.rest = std::string(raw_line.substr(p));
      tags.push_back(std::move(t));
    }
    pos = p;
  }
}

}  // namespace

std::string strip_source(std::string_view text) {
  std::string out(text);
  enum class state {
    code,
    line_comment,
    block_comment,
    string_lit,
    char_lit,
    raw_string
  };
  state st = state::code;
  bool line_is_directive = false;  // first non-ws char on this line was '#'
  bool seen_nonws = false;
  std::string raw_delim;  // for raw strings: ")delim" terminator
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      if (st == state::line_comment) st = state::code;
      line_is_directive = false;
      seen_nonws = false;
      continue;
    }
    switch (st) {
      case state::code:
        if (!seen_nonws && !std::isspace(static_cast<unsigned char>(c))) {
          seen_nonws = true;
          line_is_directive = (c == '#');
        }
        if (c == '/' && next == '/') {
          st = state::line_comment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          st = state::block_comment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || !ident_char(text[i - 1]))) {
          // R"delim( ... )delim"
          std::size_t p = i + 2;
          while (p < text.size() && text[p] != '(' && text[p] != '\n') ++p;
          if (p < text.size() && text[p] == '(') {
            raw_delim = ")";
            raw_delim.append(text.substr(i + 2, p - (i + 2)));
            raw_delim.push_back('"');
            st = state::raw_string;
            i = p;  // keep prefix/delimiter visible, blank the body
          }
        } else if (c == '"') {
          st = state::string_lit;
        } else if (c == '\'' && i > 0 && ident_char(text[i - 1])) {
          // digit separator (1'000'000) — not a character literal
        } else if (c == '\'') {
          st = state::char_lit;
        }
        break;
      case state::line_comment: out[i] = ' '; break;
      case state::block_comment:
        if (c == '*' && next == '/') {
          st = state::code;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else {
          out[i] = ' ';
        }
        break;
      case state::string_lit:
        if (c == '\\' && next != '\0' && next != '\n') {
          if (!line_is_directive) out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          st = state::code;
        } else if (!line_is_directive) {
          out[i] = ' ';
        }
        break;
      case state::char_lit:
        if (c == '\\' && next != '\0' && next != '\n') {
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          st = state::code;
        } else {
          out[i] = ' ';
        }
        break;
      case state::raw_string:
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          st = state::code;
          i += raw_delim.size() - 1;
        } else {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

int source_file::line_of(std::size_t pos) const {
  const auto it =
      std::upper_bound(line_starts.begin(), line_starts.end(), pos);
  return static_cast<int>(it - line_starts.begin());
}

std::string_view source_file::line(int lineno) const {
  SFP_REQUIRE(lineno >= 1 && lineno <= num_lines(),
              "source line out of range: " + path);
  const std::size_t begin = line_starts[static_cast<std::size_t>(lineno - 1)];
  const std::size_t end = lineno < num_lines()
                              ? line_starts[static_cast<std::size_t>(lineno)]
                              : stripped.size();
  std::string_view sv(stripped);
  sv = sv.substr(begin, end - begin);
  while (!sv.empty() && (sv.back() == '\n' || sv.back() == '\r'))
    sv.remove_suffix(1);
  return sv;
}

int source_file::num_lines() const {
  return static_cast<int>(line_starts.size());
}

bool source_file::has_tag(int lineno, std::string_view rule) const {
  const auto it = ok_tags.find(lineno);
  if (it == ok_tags.end()) return false;
  return std::find(it->second.begin(), it->second.end(), rule) !=
         it->second.end();
}

source_file make_source_file(std::string path, std::string_view text) {
  source_file f;
  f.path = std::move(path);
  std::replace(f.path.begin(), f.path.end(), '\\', '/');
  const std::size_t slash = f.path.find('/');
  f.tree = f.path.substr(0, slash);
  if (f.tree == "src" && slash != std::string::npos) {
    const std::size_t next = f.path.find('/', slash + 1);
    if (next != std::string::npos)
      f.module = f.path.substr(slash + 1, next - slash - 1);
  }
  f.is_header = f.path.size() > 4 &&
                f.path.compare(f.path.size() - 4, 4, ".hpp") == 0;
  f.stripped = strip_source(text);
  f.line_starts.push_back(0);
  for (std::size_t i = 0; i < f.stripped.size(); ++i)
    if (f.stripped[i] == '\n' && i + 1 < f.stripped.size())
      f.line_starts.push_back(i + 1);
  // Tags come from the raw text: annotations live inside comments.
  std::size_t start = 0;
  int lineno = 1;
  while (start <= text.size()) {
    std::size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) nl = text.size();
    collect_tags(text.substr(start, nl - start), lineno, start, f.ok_tags,
                 f.tags);
    start = nl + 1;
    ++lineno;
    if (nl == text.size()) break;
  }
  return f;
}

const std::vector<std::string>& default_subtrees() {
  static const std::vector<std::string> trees = {"src", "bench", "tools",
                                                 "examples", "fuzz"};
  return trees;
}

source_tree load_tree(const std::string& root,
                      const std::vector<std::string>& subtrees) {
  namespace fs = std::filesystem;
  SFP_REQUIRE(fs::is_directory(root), "sfplint root is not a directory: " +
                                          root);
  source_tree tree;
  tree.root = root;
  for (const auto& sub : subtrees) {
    const fs::path dir = fs::path(root) / sub;
    if (!fs::is_directory(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".hpp" && ext != ".cpp") continue;
      std::ifstream is(entry.path(), std::ios::binary);
      SFP_REQUIRE(is.good(),
                  "cannot read source file: " + entry.path().string());
      std::ostringstream buf;
      buf << is.rdbuf();
      const std::string rel =
          fs::path(entry.path()).lexically_relative(root).generic_string();
      tree.files.push_back(make_source_file(rel, buf.str()));
    }
  }
  std::sort(tree.files.begin(), tree.files.end(),
            [](const source_file& a, const source_file& b) {
              return a.path < b.path;
            });
  return tree;
}

}  // namespace sfp::analysis
