#pragma once
// Report rendering for sfplint: the human-readable text listing and the
// machine-readable JSON document (written with the io::json writer) that
// tools/ci.sh archives as build/lint-report.json.

#include <string>
#include <vector>

#include "analysis/baseline.hpp"
#include "analysis/passes.hpp"
#include "io/json.hpp"

namespace sfp::analysis {

/// `path:line: [rule] message` per finding, plus a one-line summary.
/// `baselined` are listed only in the trailing counts.
std::string render_text(const analysis_result& r,
                        const std::vector<finding>& baselined);

/// The --stats table: one row per catalogue rule with outstanding /
/// suppressed / baselined counts (zero rows included — a rule that never
/// fires anywhere is a signal too).
std::string render_stats(const analysis_result& r,
                         const std::vector<finding>& baselined);

/// Full machine-readable report:
///   { "tool": "sfplint", "version": 3,
///     "summary": {files, modules, include_edges, findings, suppressed,
///                 baselined},
///     "modules": [ {name, files, deps: [...]}, ... ],
///     "callgraph": {functions, call_sites, resolved_calls,
///                   unresolved_calls, connected},
///     "lockgraph": {mutexes, acquisitions,
///                   edges: [{held, acquired, file, line}, ...],
///                   cycle: [...]},
///     "cfg": {functions, nodes, edges},
///     "rule_stats": {<slug>: {findings, suppressed, baselined}, ...},
///     "findings": [...], "suppressed": [...], "baselined": [...] }
io::json_value report_to_json(const analysis_result& r,
                              const std::vector<finding>& baselined);

}  // namespace sfp::analysis
