#include "analysis/report.hpp"

#include <algorithm>
#include <sstream>

#include "graph/ops.hpp"

namespace sfp::analysis {

std::string render_text(const analysis_result& r,
                        const std::vector<finding>& baselined) {
  std::ostringstream os;
  for (const auto& f : r.findings)
    os << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
       << "\n";
  os << "sfplint: " << r.files_scanned << " files, "
     << r.graph.modules.size() << " modules, " << r.graph.edges.size()
     << " cross-module include sites; " << r.findings.size()
     << " finding(s), " << r.suppressed.size() << " suppressed inline, "
     << baselined.size() << " baselined\n";
  return os.str();
}

namespace {

std::size_t count_rule(const std::vector<finding>& v, std::string_view slug) {
  std::size_t n = 0;
  for (const auto& f : v)
    if (f.rule == slug) ++n;
  return n;
}

io::json_value findings_to_json(const std::vector<finding>& findings) {
  io::json_value list = io::json_array();
  for (const auto& f : findings) {
    io::json_value item = io::json_object();
    item.object.emplace("rule", io::json_string(f.rule));
    item.object.emplace("file", io::json_string(f.file));
    item.object.emplace("line", io::json_number(f.line));
    item.object.emplace("message", io::json_string(f.message));
    list.array.push_back(std::move(item));
  }
  return list;
}

}  // namespace

std::string render_stats(const analysis_result& r,
                         const std::vector<finding>& baselined) {
  // Column-align on the longest slug so the table reads at a glance.
  std::size_t width = 4;
  for (const rule_info& info : rule_catalogue())
    width = std::max(width, std::string_view(info.slug).size());
  std::ostringstream os;
  os << "rule";
  os << std::string(width - 4, ' ') << "  findings  suppressed  baselined\n";
  for (const rule_info& info : rule_catalogue()) {
    const std::string slug = info.slug;
    os << slug << std::string(width - slug.size(), ' ');
    const auto cell = [&os](std::size_t n, std::size_t col) {
      std::string s = std::to_string(n);
      os << std::string(col - s.size(), ' ') << s;
    };
    cell(count_rule(r.findings, slug), 10);
    cell(count_rule(r.suppressed, slug), 12);
    cell(count_rule(baselined, slug), 11);
    os << "\n";
  }
  return os.str();
}

io::json_value report_to_json(const analysis_result& r,
                              const std::vector<finding>& baselined) {
  io::json_value doc = io::json_object();
  doc.object.emplace("tool", io::json_string("sfplint"));
  doc.object.emplace("version", io::json_number(3));

  io::json_value summary = io::json_object();
  summary.object.emplace("files",
                         io::json_number(static_cast<double>(r.files_scanned)));
  summary.object.emplace(
      "modules",
      io::json_number(static_cast<double>(r.graph.modules.size())));
  summary.object.emplace(
      "include_edges",
      io::json_number(static_cast<double>(r.graph.edges.size())));
  summary.object.emplace(
      "findings", io::json_number(static_cast<double>(r.findings.size())));
  summary.object.emplace(
      "suppressed",
      io::json_number(static_cast<double>(r.suppressed.size())));
  summary.object.emplace(
      "baselined", io::json_number(static_cast<double>(baselined.size())));
  // The dogfooded CSR makes connectivity a one-call property: a module
  // drifting out of the dependency graph entirely is worth noticing.
  summary.object.emplace(
      "connected", io::json_bool(graph::is_connected(r.graph.undirected)));
  doc.object.emplace("summary", std::move(summary));

  io::json_value modules = io::json_array();
  for (std::size_t i = 0; i < r.graph.modules.size(); ++i) {
    io::json_value m = io::json_object();
    m.object.emplace("name", io::json_string(r.graph.modules[i]));
    m.object.emplace(
        "files",
        io::json_number(static_cast<double>(
            r.graph.undirected.vertex_weight(static_cast<graph::vid>(i)))));
    io::json_value deps = io::json_array();
    for (const int d : r.graph.dep_of[i])
      deps.array.push_back(
          io::json_string(r.graph.modules[static_cast<std::size_t>(d)]));
    m.object.emplace("deps", std::move(deps));
    modules.array.push_back(std::move(m));
  }
  doc.object.emplace("modules", std::move(modules));

  // Cross-TU semantic model summary: how much of the repo the call graph
  // actually covers (resolution rate is the quality dial to watch).
  io::json_value callgraph = io::json_object();
  callgraph.object.emplace(
      "functions",
      io::json_number(static_cast<double>(r.calls.functions.size())));
  callgraph.object.emplace(
      "call_sites",
      io::json_number(static_cast<double>(r.calls.calls.size())));
  callgraph.object.emplace(
      "resolved_calls",
      io::json_number(static_cast<double>(r.calls.resolved_calls)));
  callgraph.object.emplace(
      "unresolved_calls",
      io::json_number(static_cast<double>(r.calls.unresolved_calls)));
  callgraph.object.emplace(
      "connected",
      io::json_bool(!r.calls.functions.empty() &&
                    graph::is_connected(r.calls.undirected)));
  doc.object.emplace("callgraph", std::move(callgraph));

  io::json_value lockgraph = io::json_object();
  lockgraph.object.emplace(
      "mutexes",
      io::json_number(static_cast<double>(r.lock_order.mutexes.size())));
  lockgraph.object.emplace(
      "acquisitions",
      io::json_number(
          static_cast<double>(r.concurrency.acquisitions.size())));
  io::json_value lock_edges = io::json_array();
  for (const auto& e : r.lock_order.edges) {
    io::json_value item = io::json_object();
    item.object.emplace(
        "held",
        io::json_string(
            r.lock_order.mutexes[static_cast<std::size_t>(e.from)]));
    item.object.emplace(
        "acquired",
        io::json_string(
            r.lock_order.mutexes[static_cast<std::size_t>(e.to)]));
    item.object.emplace("file", io::json_string(e.file));
    item.object.emplace("line", io::json_number(e.line));
    lock_edges.array.push_back(std::move(item));
  }
  lockgraph.object.emplace("edges", std::move(lock_edges));
  io::json_value cycle = io::json_array();
  for (const auto& name : r.lock_order.cycle)
    cycle.array.push_back(io::json_string(name));
  lockgraph.object.emplace("cycle", std::move(cycle));
  doc.object.emplace("lockgraph", std::move(lockgraph));

  // v3: how big the statement CFGs the flow passes ride actually are.
  io::json_value cfg = io::json_object();
  std::size_t cfg_nodes = 0;
  std::size_t cfg_edges = 0;
  for (const auto& c : r.cfgs) {
    cfg_nodes += c.nodes.size();
    cfg_edges += c.num_edges();
  }
  cfg.object.emplace("functions",
                     io::json_number(static_cast<double>(r.cfgs.size())));
  cfg.object.emplace("nodes",
                     io::json_number(static_cast<double>(cfg_nodes)));
  cfg.object.emplace("edges",
                     io::json_number(static_cast<double>(cfg_edges)));
  doc.object.emplace("cfg", std::move(cfg));

  io::json_value stats = io::json_object();
  for (const rule_info& info : rule_catalogue()) {
    io::json_value row = io::json_object();
    row.object.emplace(
        "findings", io::json_number(static_cast<double>(
                        count_rule(r.findings, info.slug))));
    row.object.emplace(
        "suppressed", io::json_number(static_cast<double>(
                          count_rule(r.suppressed, info.slug))));
    row.object.emplace(
        "baselined", io::json_number(static_cast<double>(
                         count_rule(baselined, info.slug))));
    stats.object.emplace(info.slug, std::move(row));
  }
  doc.object.emplace("rule_stats", std::move(stats));

  doc.object.emplace("findings", findings_to_json(r.findings));
  doc.object.emplace("suppressed", findings_to_json(r.suppressed));
  doc.object.emplace("baselined", findings_to_json(baselined));
  return doc;
}

}  // namespace sfp::analysis
