#pragma once
// Concurrency annotations over the sfplint call graph: which mutexes each
// function acquires (scoped guards and raw .lock()), where it blocks
// (condition_variable waits, transport/world blocking calls, sleeps), and
// which nondeterminism sources it touches — plus the transitive closures
// of all three over resolved call edges. The flow-aware passes
// (lock-order, blocking-while-locked, determinism-transitive) are walks
// over this model.
//
// Mutex identity is file-scoped: the key is "<file>::<normalized expr>",
// where the expression is whitespace-stripped, `->` folded to `.`, and a
// leading `this.` / `&` / `*` dropped. Two files locking the same
// conceptual mutex therefore split it into two identities (a false
// negative for cross-file lock cycles — documented in
// docs/static_analysis.md), while same-named members of different types
// in different files stay correctly separate. Guard variables
// (`std::unique_lock<std::mutex> lk(...)`) are remembered per function so
// `lk.lock()` / `lk.unlock()` on the guard is not mistaken for a raw
// mutex acquisition.
//
// Hold ranges: a scoped guard holds from its declaration to the end of
// the enclosing brace scope; a raw `.lock()` holds until a matching
// `.unlock()` on the same expression later in the body, else to the end
// of the body. Guards constructed with `std::defer_lock` are ignored.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/call_graph.hpp"
#include "analysis/source_model.hpp"

namespace sfp::analysis {

/// One mutex acquisition inside a function body.
struct lock_acquisition {
  int function = -1;  ///< index into call_graph::functions
  int mutex = -1;     ///< index into concurrency_model::mutex_names
  std::string expr;   ///< the normalized expression as written
  int line = 0;
  std::size_t pos = 0;         ///< byte offset of the acquisition
  std::size_t hold_end = 0;    ///< byte offset where the hold ends
  bool raw = false;            ///< `.lock()` rather than a scoped guard
};

/// One direct blocking call site (cv wait, recv, barrier, sleep, ...).
struct blocking_site {
  int function = -1;
  std::string what;  ///< the blocking call name as written
  int line = 0;
  std::size_t pos = 0;
};

/// One direct nondeterminism source (rand/srand/time/random_device).
struct nondet_site {
  int function = -1;
  std::string what;
  int line = 0;
  std::size_t pos = 0;
};

struct concurrency_model {
  std::vector<std::string> mutex_names;  ///< interned "<file>::<expr>" ids
  std::vector<lock_acquisition> acquisitions;
  std::vector<blocking_site> blocking;
  std::vector<nondet_site> nondet;
  /// Per function: indices into the three site vectors above.
  std::vector<std::vector<int>> acquisitions_of;
  std::vector<std::vector<int>> blocking_of;
  std::vector<std::vector<int>> nondet_of;
  /// Per function: mutex ids acquired here or in any transitive callee.
  std::vector<std::vector<int>> lock_closure;
  /// Per function: a blocking / nondet site is transitively reachable.
  std::vector<char> blocks_transitively;
  std::vector<char> nondet_transitively;
  /// Witness for chain reconstruction: the call-site index (into
  /// call_graph::calls) this function blocks / goes nondeterministic
  /// through, or -1 when the site is direct (or the bit is unset).
  std::vector<int> blocking_via_call;
  std::vector<int> nondet_via_call;
};

/// Scan every function body for acquisitions / blocking / nondet sites
/// and close them over the call graph's resolved edges.
concurrency_model build_concurrency_model(const source_tree& tree,
                                          const call_graph& graph);

/// Human-readable call chain from `fn` to its nondeterminism source, e.g.
/// "plan_rebalance -> jitter -> rand() [src/core/x.cpp:42]". Empty when
/// `fn` has no nondet reach. `blocking_chain` is the same for blocking.
std::string nondet_chain(const source_tree& tree, const call_graph& graph,
                         const concurrency_model& model, int fn);
std::string blocking_chain(const source_tree& tree, const call_graph& graph,
                           const concurrency_model& model, int fn);

}  // namespace sfp::analysis
