#include "analysis/changed_lines.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>

namespace sfp::analysis {

bool changed_lines::contains(const std::string& path, int line) const {
  const auto it = ranges.find(path);
  if (it == ranges.end()) return false;
  for (const auto& [first, last] : it->second)
    if (line >= first && line <= last) return true;
  return false;
}

changed_lines parse_unified_diff(std::string_view diff) {
  changed_lines out;
  std::string current;
  std::size_t start = 0;
  while (start <= diff.size()) {
    std::size_t nl = diff.find('\n', start);
    if (nl == std::string_view::npos) nl = diff.size();
    const std::string_view line = diff.substr(start, nl - start);
    if (line.rfind("+++ ", 0) == 0) {
      std::string_view path = line.substr(4);
      if (!path.empty() && path.back() == '\r') path.remove_suffix(1);
      // `+++ b/src/x.cpp` or `+++ /dev/null` (deleted file).
      if (path.rfind("b/", 0) == 0) path.remove_prefix(2);
      current = path == "/dev/null" ? std::string() : std::string(path);
    } else if (line.rfind("@@ ", 0) == 0 && !current.empty()) {
      // @@ -a[,b] +c[,d] @@ — the new-side start/count.
      const std::size_t plus = line.find('+', 3);
      if (plus != std::string_view::npos) {
        int c = 0;
        std::size_t i = plus + 1;
        while (i < line.size() &&
               line[i] >= '0' && line[i] <= '9')
          c = c * 10 + (line[i++] - '0');
        int d = 1;
        if (i < line.size() && line[i] == ',') {
          ++i;
          d = 0;
          while (i < line.size() && line[i] >= '0' && line[i] <= '9')
            d = d * 10 + (line[i++] - '0');
        }
        if (d > 0) out.ranges[current].emplace_back(c, c + d - 1);
      }
    }
    if (nl == diff.size()) break;
    start = nl + 1;
  }
  for (auto& [path, rs] : out.ranges) std::sort(rs.begin(), rs.end());
  return out;
}

changed_lines collect_git_changed_lines(const std::string& root,
                                        const std::string& rev,
                                        std::string* error) {
  // Reject characters that would escape the shell quoting below; a git
  // revision never legitimately contains them.
  for (const char c : rev) {
    if (c == '\'' || c == '\n' || c == '\0') {
      if (error != nullptr) *error = "invalid characters in revision";
      return {};
    }
  }
  const std::string cmd = "git -C '" + root +
                          "' diff --unified=0 --no-color '" + rev +
                          "' -- src bench tools examples fuzz 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) {
    if (error != nullptr) *error = "cannot run git";
    return {};
  }
  std::string text;
  std::array<char, 4096> buf{};
  std::size_t got = 0;
  while ((got = fread(buf.data(), 1, buf.size(), pipe)) > 0)
    text.append(buf.data(), got);
  const int status = pclose(pipe);
  if (status != 0) {
    if (error != nullptr)
      *error = "git diff against '" + rev + "' failed: " + text;
    return {};
  }
  return parse_unified_diff(text);
}

}  // namespace sfp::analysis
