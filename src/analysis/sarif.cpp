#include "analysis/sarif.hpp"

namespace sfp::analysis {

namespace {

io::json_value sarif_location(const finding& v) {
  io::json_value artifact = io::json_object();
  artifact.object["uri"] = io::json_string(v.file);
  io::json_value region = io::json_object();
  region.object["startLine"] = io::json_number(v.line);
  io::json_value physical = io::json_object();
  physical.object["artifactLocation"] = std::move(artifact);
  physical.object["region"] = std::move(region);
  io::json_value loc = io::json_object();
  loc.object["physicalLocation"] = std::move(physical);
  return loc;
}

io::json_value sarif_result(const finding& v, int rule_index,
                            const char* suppression_kind) {
  io::json_value msg = io::json_object();
  msg.object["text"] = io::json_string(v.message);
  io::json_value result = io::json_object();
  result.object["ruleId"] = io::json_string(v.rule);
  if (rule_index >= 0)
    result.object["ruleIndex"] = io::json_number(rule_index);
  result.object["level"] = io::json_string("error");
  result.object["message"] = std::move(msg);
  io::json_value locs = io::json_array();
  locs.array.push_back(sarif_location(v));
  result.object["locations"] = std::move(locs);
  if (suppression_kind != nullptr) {
    io::json_value sup = io::json_object();
    sup.object["kind"] = io::json_string(suppression_kind);
    io::json_value sups = io::json_array();
    sups.array.push_back(std::move(sup));
    result.object["suppressions"] = std::move(sups);
  }
  return result;
}

}  // namespace

io::json_value sarif_document(const analysis_result& r,
                              const std::vector<finding>& baselined) {
  const auto& catalogue = rule_catalogue();
  const auto rule_index = [&catalogue](const std::string& slug) {
    for (std::size_t i = 0; i < catalogue.size(); ++i)
      if (slug == catalogue[i].slug) return static_cast<int>(i);
    return -1;
  };

  io::json_value rules = io::json_array();
  for (const rule_info& info : catalogue) {
    io::json_value text = io::json_object();
    text.object["text"] = io::json_string(info.summary);
    io::json_value rule = io::json_object();
    rule.object["id"] = io::json_string(info.slug);
    rule.object["shortDescription"] = std::move(text);
    rules.array.push_back(std::move(rule));
  }

  io::json_value driver = io::json_object();
  driver.object["name"] = io::json_string("sfplint");
  driver.object["informationUri"] =
      io::json_string("docs/static_analysis.md");
  driver.object["rules"] = std::move(rules);
  io::json_value tool = io::json_object();
  tool.object["driver"] = std::move(driver);

  io::json_value results = io::json_array();
  for (const finding& v : r.findings)
    results.array.push_back(sarif_result(v, rule_index(v.rule), nullptr));
  // `inSource` = the `lint: <slug>-ok` comment; `external` = the baseline
  // file. SARIF viewers render both as suppressed rather than hiding them.
  for (const finding& v : r.suppressed)
    results.array.push_back(
        sarif_result(v, rule_index(v.rule), "inSource"));
  for (const finding& v : baselined)
    results.array.push_back(
        sarif_result(v, rule_index(v.rule), "external"));

  io::json_value run = io::json_object();
  run.object["tool"] = std::move(tool);
  run.object["results"] = std::move(results);
  io::json_value runs = io::json_array();
  runs.array.push_back(std::move(run));

  io::json_value doc = io::json_object();
  doc.object["$schema"] =
      io::json_string("https://json.schemastore.org/sarif-2.1.0.json");
  doc.object["version"] = io::json_string("2.1.0");
  doc.object["runs"] = std::move(runs);
  return doc;
}

}  // namespace sfp::analysis
