#include "analysis/call_graph.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "util/contract.hpp"

namespace sfp::analysis {

namespace {

bool ident_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

bool ident_char(char c) {
  return ident_start(c) || (c >= '0' && c <= '9');
}

bool is_ws(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

void skip_ws(std::string_view text, std::size_t& i) {
  while (i < text.size() && is_ws(text[i])) ++i;
}

std::string_view read_ident(std::string_view text, std::size_t& i) {
  const std::size_t start = i;
  while (i < text.size() && ident_char(text[i])) ++i;
  return text.substr(start, i - start);
}

/// Statement keywords and declaration vocabulary that can never be a
/// function name or a call target we own.
bool is_keyword(std::string_view w) {
  static const std::set<std::string_view> kw = {
      "if",       "for",      "while",    "switch",  "return", "catch",
      "sizeof",   "alignof",  "decltype", "new",     "delete", "throw",
      "do",       "else",     "try",      "case",    "goto",   "co_await",
      "co_return", "co_yield", "static_assert", "alignas", "operator",
      "void",     "bool",     "int",      "char",    "float",  "double",
      "long",     "short",    "signed",   "unsigned", "auto",  "const",
      "constexpr", "noexcept", "defined"};
  return kw.count(w) > 0;
}

/// All-caps identifiers are treated as macro invocations, not calls.
bool looks_like_macro(std::string_view w) {
  bool has_upper = false;
  for (const char c : w) {
    if (c >= 'a' && c <= 'z') return false;
    if (c >= 'A' && c <= 'Z') has_upper = true;
  }
  return has_upper;
}

/// Position one past the close matching the open bracket at `i`
/// (text[i] must be `open`); npos when unbalanced.
std::size_t skip_balanced(std::string_view text, std::size_t i, char open,
                          char close) {
  int depth = 0;
  for (; i < text.size(); ++i) {
    if (text[i] == open) ++depth;
    else if (text[i] == close && --depth == 0) return i + 1;
  }
  return std::string_view::npos;
}

/// Skip a balanced `<...>` starting at `i` (text[i] == '<'); returns the
/// position past the closing '>', or `i` unchanged when it runs into a
/// character that proves this was a comparison, not template arguments.
std::size_t skip_angles(std::string_view text, std::size_t i) {
  const std::size_t start = i;
  int depth = 0;
  for (; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '<') ++depth;
    else if (c == '>') {
      if (--depth == 0) return i + 1;
    } else if (c == ';' || c == '{' || c == '}') {
      return start;
    }
  }
  return start;
}

}  // namespace

// Public (declared in call_graph.hpp): the CFG builder blanks bodies the
// same way before walking statements. Newlines survive for provenance.
std::string blank_preprocessor(std::string_view text) {
  std::string out(text);
  std::size_t i = 0;
  while (i < out.size()) {
    std::size_t p = i;
    while (p < out.size() && (out[p] == ' ' || out[p] == '\t')) ++p;
    bool directive = p < out.size() && out[p] == '#';
    std::size_t nl = out.find('\n', i);
    if (nl == std::string::npos) nl = out.size();
    while (directive) {
      const bool continues = nl > i && out[nl - 1] == '\\';
      for (std::size_t k = i; k < nl; ++k) out[k] = ' ';
      if (!continues || nl >= out.size()) break;
      i = nl + 1;
      nl = out.find('\n', i);
      if (nl == std::string::npos) nl = out.size();
    }
    i = nl + 1;
    if (nl >= out.size()) break;
  }
  return out;
}

namespace {

std::vector<std::string> split_qualified(std::string_view qualified) {
  std::vector<std::string> comps;
  std::size_t start = 0;
  while (start <= qualified.size()) {
    const std::size_t sep = qualified.find("::", start);
    if (sep == std::string_view::npos) {
      comps.emplace_back(qualified.substr(start));
      break;
    }
    comps.emplace_back(qualified.substr(start, sep - start));
    start = sep + 2;
  }
  return comps;
}

/// Read a possibly-qualified name chain (`a::b<T>::c`, `~d`) at `i`.
/// Returns the written spelling with template arguments dropped; empty
/// when `i` does not start a name.
std::string read_qualified(std::string_view text, std::size_t& i) {
  std::string written;
  while (i < text.size()) {
    if (text[i] == '~') {
      written.push_back('~');
      ++i;
    }
    if (i >= text.size() || !ident_start(text[i])) break;
    written.append(read_ident(text, i));
    std::size_t p = i;
    if (p < text.size() && text[p] == '<') {
      const std::size_t after = skip_angles(text, p);
      if (after != p) p = after;
    }
    if (p + 1 < text.size() && text[p] == ':' && text[p + 1] == ':') {
      i = p + 2;
      written.append("::");
      continue;
    }
    break;
  }
  if (!written.empty() && written.back() == ':') written.clear();
  return written;
}

struct scope {
  enum class kind { ns, type, block };
  kind k;
  std::string name;  ///< empty for blocks and anonymous namespaces
  bool anonymous_ns = false;
};

/// Try to parse a function definition whose (possibly qualified) name
/// starts at `name_pos` and whose open paren is at `paren_pos`. On
/// success, sets body range and returns true with `i` past the body.
bool parse_definition_tail(std::string_view text, std::size_t paren_pos,
                           std::size_t& i, std::size_t& body_begin,
                           std::size_t& body_end) {
  std::size_t p = skip_balanced(text, paren_pos, '(', ')');
  if (p == std::string_view::npos) return false;
  // Trailer: cv/ref/noexcept/override/final/try, trailing return type,
  // constructor initializer list — then the body '{'.
  for (;;) {
    skip_ws(text, p);
    if (p >= text.size()) return false;
    const char c = text[p];
    if (ident_start(c)) {
      const std::size_t w_start = p;
      const std::string_view w = read_ident(text, p);
      if (w == "const" || w == "override" || w == "final" || w == "try" ||
          w == "mutable" || w == "volatile" || w == "noexcept") {
        skip_ws(text, p);
        if (w == "noexcept" && p < text.size() && text[p] == '(') {
          p = skip_balanced(text, p, '(', ')');
          if (p == std::string_view::npos) return false;
        }
        continue;
      }
      (void)w_start;
      return false;  // a declaration name / macro — not a definition tail
    }
    if (c == '&') {  // ref-qualifier
      ++p;
      continue;
    }
    if (c == '-' && p + 1 < text.size() && text[p + 1] == '>') {
      // Trailing return type: consume to the body '{' or a ';'.
      p += 2;
      int paren = 0;
      while (p < text.size()) {
        const char t = text[p];
        if (t == '(') ++paren;
        else if (t == ')') --paren;
        else if ((t == '{' || t == ';') && paren == 0) break;
        ++p;
      }
      continue;
    }
    if (c == ':' && (p + 1 >= text.size() || text[p + 1] != ':')) {
      // Constructor initializer list: name (args) or name {args}, comma-
      // separated, then the body.
      ++p;
      for (;;) {
        skip_ws(text, p);
        const std::string item = read_qualified(text, p);
        if (item.empty()) return false;
        skip_ws(text, p);
        if (p >= text.size()) return false;
        if (text[p] == '(') p = skip_balanced(text, p, '(', ')');
        else if (text[p] == '{') p = skip_balanced(text, p, '{', '}');
        else return false;
        if (p == std::string_view::npos) return false;
        skip_ws(text, p);
        if (p < text.size() && text[p] == ',') {
          ++p;
          continue;
        }
        break;
      }
      continue;
    }
    if (c == '{') {
      body_begin = p;
      body_end = skip_balanced(text, p, '{', '}');
      if (body_end == std::string_view::npos) return false;
      i = body_end;
      return true;
    }
    return false;  // ';' (declaration), '=' (= default / = 0), ...
  }
}

/// Extract every function definition in one file.
void extract_definitions(const source_file& f, int file_index,
                         std::string_view text,
                         std::vector<function_def>& out) {
  std::vector<scope> scopes;
  std::string pending_type;   // class/struct head awaiting its '{'
  std::size_t i = 0;
  const auto at_decl_scope = [&scopes] {
    return scopes.empty() || scopes.back().k != scope::kind::block;
  };
  while (i < text.size()) {
    const char c = text[i];
    if (ident_start(c) || c == '~') {
      const std::size_t name_pos = i;
      std::string written = read_qualified(text, i);
      if (written.empty()) {
        ++i;
        continue;
      }
      const std::string_view first =
          std::string_view(written).substr(0, written.find(':'));
      if (first == "namespace") {
        skip_ws(text, i);
        std::string name = read_qualified(text, i);
        skip_ws(text, i);
        if (i < text.size() && text[i] == '{') {
          scope s{scope::kind::ns, std::move(name), false};
          s.anonymous_ns = s.name.empty();
          scopes.push_back(std::move(s));
          ++i;
        }  // `namespace x = y;` aliases fall through harmlessly
        continue;
      }
      if (first == "class" || first == "struct" || first == "union") {
        // Read the head name now, then let the main loop carry us through
        // any base-clause tokens to the '{' / ';'.
        skip_ws(text, i);
        while (i < text.size() && text[i] == '[')  // [[attributes]]
          i = std::max(i + 1, text.find(']', i) + 1);
        skip_ws(text, i);
        pending_type = read_qualified(text, i);
        if (pending_type == "final") pending_type.clear();
        // Scan the head: a '{' opens the type scope; ';', '(' or '=' means
        // forward declaration / elaborated type in a declaration.
        while (i < text.size()) {
          const char h = text[i];
          if (h == '{') {
            scopes.push_back({scope::kind::type, pending_type, false});
            ++i;
            break;
          }
          if (h == ';' || h == '(' || h == '=') break;
          if (h == '<') {
            const std::size_t after = skip_angles(text, i);
            i = after == i ? i + 1 : after;
            continue;
          }
          ++i;
        }
        continue;
      }
      if (first == "enum") {
        // Skip the whole enum (its body holds no functions).
        while (i < text.size() && text[i] != '{' && text[i] != ';') ++i;
        if (i < text.size() && text[i] == '{') {
          const std::size_t after = skip_balanced(text, i, '{', '}');
          i = after == std::string_view::npos ? i + 1 : after;
        }
        continue;
      }
      if (first == "template") {
        skip_ws(text, i);
        if (i < text.size() && text[i] == '<') {
          const std::size_t after = skip_angles(text, i);
          i = after == i ? i + 1 : after;
        }
        continue;
      }
      if (first == "using" || first == "typedef") {
        while (i < text.size() && text[i] != ';') ++i;
        continue;
      }
      if (first == "operator") continue;  // operator overloads: skipped
      // Candidate function definition: name chain directly before '('.
      std::size_t p = i;
      skip_ws(text, p);
      if (at_decl_scope() && p < text.size() && text[p] == '(' &&
          !is_keyword(written) && !looks_like_macro(written)) {
        std::size_t body_begin = 0, body_end = 0, after = 0;
        if (parse_definition_tail(text, p, after, body_begin, body_end)) {
          function_def d;
          d.name = split_qualified(written).back();
          std::string qualified;
          for (const auto& s : scopes) {
            if (s.name.empty()) continue;
            qualified += s.name;
            qualified += "::";
          }
          qualified += written;
          d.qualified = std::move(qualified);
          d.file = file_index;
          d.name_pos = name_pos;
          d.line = f.line_of(name_pos);
          d.body_begin = body_begin;
          d.body_end = body_end;
          d.member = written.find("::") != std::string::npos;
          for (const auto& s : scopes) {
            if (s.k == scope::kind::type) d.member = true;
            if (s.anonymous_ns) d.file_local = true;
          }
          out.push_back(std::move(d));
          i = after;
          continue;
        }
      }
      continue;
    }
    if (c == '{') {
      scopes.push_back({scope::kind::block, "", false});
      ++i;
      continue;
    }
    if (c == '}') {
      if (!scopes.empty()) scopes.pop_back();
      ++i;
      continue;
    }
    ++i;
  }
}

/// Extract the call sites inside one function body.
void extract_calls(const source_file& f, std::string_view text,
                   const function_def& def, int caller,
                   std::vector<call_site>& out) {
  std::size_t i = def.body_begin;
  while (i < def.body_end) {
    if (!ident_start(text[i])) {
      ++i;
      continue;
    }
    const std::size_t name_pos = i;
    const std::string written = read_qualified(text, i);
    if (written.empty()) {
      ++i;
      continue;
    }
    std::size_t p = i;
    while (p < def.body_end && (text[p] == ' ' || text[p] == '\t')) ++p;
    if (p >= def.body_end || text[p] != '(') continue;
    const std::string last = split_qualified(written).back();
    if (is_keyword(last) || is_keyword(written) || looks_like_macro(last))
      continue;
    call_site c;
    c.caller = caller;
    c.written = written;
    std::size_t back = name_pos;
    while (back > 0 && is_ws(text[back - 1])) --back;
    c.member = back > 0 && (text[back - 1] == '.' ||
                            (back > 1 && text[back - 1] == '>' &&
                             text[back - 2] == '-'));
    c.pos = name_pos;
    c.line = f.line_of(name_pos);
    out.push_back(std::move(c));
  }
}

}  // namespace

int call_graph::function_at(int file_index, std::size_t pos) const {
  for (std::size_t k = 0; k < functions.size(); ++k) {
    const function_def& d = functions[k];
    if (d.file == file_index && pos >= d.body_begin && pos < d.body_end)
      return static_cast<int>(k);
  }
  return -1;
}

int call_graph::index_of(std::string_view qualified) const {
  for (std::size_t k = 0; k < functions.size(); ++k)
    if (functions[k].qualified == qualified) return static_cast<int>(k);
  return -1;
}

call_graph build_call_graph(const source_tree& tree) {
  call_graph g;
  // Pass 1: definitions. The scanner runs on a copy with preprocessor
  // lines blanked so macro bodies cannot desync brace matching.
  std::vector<std::string> scan_texts(tree.files.size());
  for (std::size_t fi = 0; fi < tree.files.size(); ++fi) {
    scan_texts[fi] = blank_preprocessor(tree.files[fi].stripped);
    extract_definitions(tree.files[fi], static_cast<int>(fi), scan_texts[fi],
                        g.functions);
  }

  // Pass 2: call sites per function body.
  for (std::size_t k = 0; k < g.functions.size(); ++k) {
    const function_def& d = g.functions[k];
    extract_calls(tree.files[static_cast<std::size_t>(d.file)],
                  scan_texts[static_cast<std::size_t>(d.file)], d,
                  static_cast<int>(k), g.calls);
  }

  // Pass 3: resolution by qualified-name suffix.
  std::map<std::string, std::vector<int>> by_name;
  for (std::size_t k = 0; k < g.functions.size(); ++k)
    by_name[g.functions[k].name].push_back(static_cast<int>(k));

  g.calls_of.assign(g.functions.size(), {});
  g.callees_of.assign(g.functions.size(), {});
  for (std::size_t ci = 0; ci < g.calls.size(); ++ci) {
    call_site& c = g.calls[ci];
    const std::vector<std::string> comps = split_qualified(c.written);
    const int caller_file =
        g.functions[static_cast<std::size_t>(c.caller)].file;
    if (comps.front() != "std") {
      const auto it = by_name.find(comps.back());
      if (it != by_name.end()) {
        std::vector<int> targets;
        for (const int cand : it->second) {
          const function_def& d =
              g.functions[static_cast<std::size_t>(cand)];
          if (c.member && !d.member) continue;
          if (!c.member && comps.size() > 1) {
            const std::vector<std::string> dc =
                split_qualified(d.qualified);
            if (dc.size() < comps.size()) continue;
            bool suffix = true;
            for (std::size_t j = 0; j < comps.size(); ++j)
              if (dc[dc.size() - comps.size() + j] != comps[j])
                suffix = false;
            if (!suffix) continue;
          }
          if (d.file_local && d.file != caller_file) continue;
          targets.push_back(cand);
        }
        // An unqualified call with a same-file candidate binds to the
        // same file alone (statics / anonymous-namespace helpers shadow).
        if (comps.size() == 1) {
          bool same_file = false;
          for (const int t : targets)
            if (g.functions[static_cast<std::size_t>(t)].file ==
                caller_file)
              same_file = true;
          if (same_file) {
            targets.erase(
                std::remove_if(targets.begin(), targets.end(),
                               [&](int t) {
                                 return g.functions
                                            [static_cast<std::size_t>(t)]
                                                .file != caller_file;
                               }),
                targets.end());
          }
        }
        std::sort(targets.begin(), targets.end());
        targets.erase(std::unique(targets.begin(), targets.end()),
                      targets.end());
        c.targets = std::move(targets);
      }
    }
    (c.targets.empty() ? g.unresolved_calls : g.resolved_calls) += 1;
    g.calls_of[static_cast<std::size_t>(c.caller)].push_back(
        static_cast<int>(ci));
    for (const int t : c.targets)
      g.callees_of[static_cast<std::size_t>(c.caller)].push_back(t);
  }
  for (auto& v : g.callees_of) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }

  // Dogfood the undirected function-level skeleton through graph::csr.
  // A tree with no extractable functions (headers-only fixtures) keeps the
  // default empty csr: graph::builder requires at least one vertex.
  const int n = static_cast<int>(g.functions.size());
  if (n > 0) {
    std::map<std::pair<int, int>, graph::weight> pair_sites;
    for (const auto& c : g.calls)
      for (const int t : c.targets)
        if (t != c.caller)
          ++pair_sites[{std::min(c.caller, t), std::max(c.caller, t)}];
    graph::builder b(static_cast<graph::vid>(n));
    for (const auto& [pair, sites] : pair_sites)
      b.add_edge(static_cast<graph::vid>(pair.first),
                 static_cast<graph::vid>(pair.second), sites);
    g.undirected = b.build();
    g.undirected.validate();
  }
  return g;
}

}  // namespace sfp::analysis
