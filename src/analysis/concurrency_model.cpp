#include "analysis/concurrency_model.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace sfp::analysis {

namespace {

bool ident_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

bool ident_char(char c) {
  return ident_start(c) || (c >= '0' && c <= '9');
}

bool is_ws(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

void skip_ws(std::string_view text, std::size_t& i) {
  while (i < text.size() && is_ws(text[i])) ++i;
}

std::size_t skip_balanced(std::string_view text, std::size_t i, char open,
                          char close) {
  int depth = 0;
  for (; i < text.size(); ++i) {
    if (text[i] == open) ++depth;
    else if (text[i] == close && --depth == 0) return i + 1;
  }
  return std::string_view::npos;
}

std::size_t skip_angles(std::string_view text, std::size_t i) {
  const std::size_t start = i;
  int depth = 0;
  for (; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '<') ++depth;
    else if (c == '>') {
      if (--depth == 0) return i + 1;
    } else if (c == ';' || c == '{' || c == '}') {
      return start;
    }
  }
  return start;
}

bool guard_token(std::string_view w) {
  return w == "lock_guard" || w == "unique_lock" || w == "scoped_lock" ||
         w == "shared_lock";
}

bool blocking_token(std::string_view w) {
  static const std::set<std::string_view> exact = {
      "wait",      "wait_for",    "wait_until", "recv",  "barrier",
      "sleep_for", "sleep_until", "accept",     "try_recv_any"};
  if (exact.count(w) > 0) return true;
  for (const std::string_view prefix : {"allreduce", "allgather", "exscan"})
    if (w.size() >= prefix.size() && w.substr(0, prefix.size()) == prefix)
      return true;
  return false;
}

/// Whitespace-stripped, `->` folded to `.`, leading `this.` / `&` / `*`
/// and wrapping parens dropped.
std::string normalize_mutex_expr(std::string_view raw) {
  std::string out;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const char c = raw[i];
    if (is_ws(c)) continue;
    if (c == '-' && i + 1 < raw.size() && raw[i + 1] == '>') {
      out.push_back('.');
      ++i;
      continue;
    }
    if (c == '&' || c == '*' || c == '(' || c == ')') continue;
    out.push_back(c);
  }
  if (out.compare(0, 5, "this.") == 0) out.erase(0, 5);
  return out;
}

/// Split a balanced argument list body on top-level commas.
std::vector<std::string> split_args(std::string_view body) {
  std::vector<std::string> out;
  int depth = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i < body.size(); ++i) {
    const char c = body[i];
    if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
    else if (c == ')' || c == ']' || c == '}' || c == '>') --depth;
    else if (c == ',' && depth == 0) {
      out.emplace_back(body.substr(start, i - start));
      start = i + 1;
    }
  }
  out.emplace_back(body.substr(start));
  return out;
}

/// Receiver expression of a member call whose separator (`.` / `->`) ends
/// just before `name_pos`; empty when there is none.
std::string receiver_before(std::string_view text, std::size_t name_pos) {
  std::size_t end = name_pos;
  if (end > 0 && text[end - 1] == '.') {
    --end;
  } else if (end > 1 && text[end - 1] == '>' && text[end - 2] == '-') {
    end -= 2;
  } else {
    return {};
  }
  std::size_t start = end;
  while (start > 0) {
    const char c = text[start - 1];
    if (ident_char(c) || c == '.' || c == ':' || c == ']' || c == '[') {
      --start;
      continue;
    }
    if (c == '>' && start > 1 && text[start - 2] == '-') {
      start -= 2;
      continue;
    }
    break;
  }
  return normalize_mutex_expr(text.substr(start, end - start));
}

int intern_mutex(std::vector<std::string>& names, const std::string& key) {
  for (std::size_t k = 0; k < names.size(); ++k)
    if (names[k] == key) return static_cast<int>(k);
  names.push_back(key);
  return static_cast<int>(names.size() - 1);
}

/// Scan one function body for acquisitions / blocking / nondet sites.
void scan_body(const source_file& f, std::string_view text,
               const function_def& def, int fn, concurrency_model& m) {
  std::set<std::string> guard_vars;          // `lk` in unique_lock lk(...)
  std::vector<std::vector<int>> scope_acqs;  // guard acq indices per scope
  std::map<int, int> open_raw;               // mutex id -> open raw acq
  std::size_t i = def.body_begin;
  while (i < def.body_end) {
    const char c = text[i];
    if (c == '{') {
      scope_acqs.emplace_back();
      ++i;
      continue;
    }
    if (c == '}') {
      if (!scope_acqs.empty()) {
        for (const int a : scope_acqs.back())
          m.acquisitions[static_cast<std::size_t>(a)].hold_end = i + 1;
        scope_acqs.pop_back();
      }
      ++i;
      continue;
    }
    if (!ident_start(c)) {
      ++i;
      continue;
    }
    const std::size_t name_pos = i;
    std::size_t end = i;
    while (end < def.body_end && ident_char(text[end])) ++end;
    const std::string_view word = text.substr(name_pos, end - name_pos);
    i = end;

    if (guard_token(word)) {
      std::size_t p = i;
      if (p < def.body_end && text[p] == '<') {
        const std::size_t after = skip_angles(text, p);
        if (after == p) continue;
        p = after;
      }
      skip_ws(text, p);
      std::size_t var_start = p;
      while (p < def.body_end && ident_char(text[p])) ++p;
      const std::string var(text.substr(var_start, p - var_start));
      skip_ws(text, p);
      if (p >= def.body_end || (text[p] != '(' && text[p] != '{')) continue;
      const char open = text[p];
      const char close = open == '(' ? ')' : '}';
      const std::size_t after = skip_balanced(text, p, open, close);
      if (after == std::string_view::npos || after > def.body_end) continue;
      const std::string_view args =
          text.substr(p + 1, after - p - 2);
      if (args.find("defer_lock") != std::string_view::npos) {
        i = after;
        continue;  // deferred: the later .lock() records the acquisition
      }
      if (!var.empty()) guard_vars.insert(var);
      for (const std::string& arg : split_args(args)) {
        if (arg.find("adopt_lock") != std::string::npos ||
            arg.find("try_to_lock") != std::string::npos)
          continue;
        const std::string expr = normalize_mutex_expr(arg);
        if (expr.empty()) continue;
        lock_acquisition a;
        a.function = fn;
        a.mutex = intern_mutex(m.mutex_names, f.path + "::" + expr);
        a.expr = expr;
        a.pos = name_pos;
        a.line = f.line_of(name_pos);
        a.hold_end = def.body_end;  // refined when the scope closes
        const int idx = static_cast<int>(m.acquisitions.size());
        m.acquisitions.push_back(std::move(a));
        if (!scope_acqs.empty()) scope_acqs.back().push_back(idx);
      }
      i = after;
      continue;
    }

    if (word == "lock" || word == "unlock") {
      std::size_t p = i;
      skip_ws(text, p);
      if (p >= def.body_end || text[p] != '(') continue;
      std::size_t q = p + 1;
      skip_ws(text, q);
      if (q >= def.body_end || text[q] != ')') continue;  // args: not raw
      const std::string expr = receiver_before(text, name_pos);
      if (expr.empty() || guard_vars.count(expr) > 0) continue;
      const int mid = intern_mutex(m.mutex_names, f.path + "::" + expr);
      if (word == "lock") {
        lock_acquisition a;
        a.function = fn;
        a.mutex = mid;
        a.expr = expr;
        a.pos = name_pos;
        a.line = f.line_of(name_pos);
        a.hold_end = def.body_end;
        a.raw = true;
        open_raw[mid] = static_cast<int>(m.acquisitions.size());
        m.acquisitions.push_back(std::move(a));
      } else {
        const auto it = open_raw.find(mid);
        if (it != open_raw.end()) {
          m.acquisitions[static_cast<std::size_t>(it->second)].hold_end =
              name_pos;
          open_raw.erase(it);
        }
      }
      i = q + 1;
      continue;
    }

    if (blocking_token(word)) {
      std::size_t p = i;
      skip_ws(text, p);
      if (p >= def.body_end || text[p] != '(') continue;
      blocking_site s;
      s.function = fn;
      s.what = std::string(word);
      s.pos = name_pos;
      s.line = f.line_of(name_pos);
      m.blocking.push_back(std::move(s));
      continue;
    }

    if (word == "rand" || word == "srand" || word == "time") {
      const bool member =
          name_pos > def.body_begin &&
          (text[name_pos - 1] == '.' ||
           (name_pos > def.body_begin + 1 && text[name_pos - 1] == '>' &&
            text[name_pos - 2] == '-'));
      std::size_t p = i;
      skip_ws(text, p);
      if (member || p >= def.body_end || text[p] != '(') continue;
      nondet_site s;
      s.function = fn;
      s.what = std::string(word);
      s.pos = name_pos;
      s.line = f.line_of(name_pos);
      m.nondet.push_back(std::move(s));
      continue;
    }
    if (word == "random_device") {
      nondet_site s;
      s.function = fn;
      s.what = "random_device";
      s.pos = name_pos;
      s.line = f.line_of(name_pos);
      m.nondet.push_back(std::move(s));
      continue;
    }
  }
}

/// Propagate a boolean reach bit from direct sites up through callers,
/// recording the first witnessing call per function.
void propagate_reach(const call_graph& g, const std::vector<char>& direct,
                     std::vector<char>& reach, std::vector<int>& via) {
  const std::size_t n = g.functions.size();
  reach.assign(n, 0);
  via.assign(n, -1);
  // Reverse edges annotated with the originating call-site index.
  std::vector<std::vector<int>> calls_into(n);
  for (std::size_t ci = 0; ci < g.calls.size(); ++ci)
    for (const int t : g.calls[ci].targets)
      calls_into[static_cast<std::size_t>(t)].push_back(
          static_cast<int>(ci));
  std::vector<int> queue;
  for (std::size_t k = 0; k < n; ++k)
    if (direct[k]) {
      reach[k] = 1;
      queue.push_back(static_cast<int>(k));
    }
  while (!queue.empty()) {
    const int t = queue.back();
    queue.pop_back();
    for (const int ci : calls_into[static_cast<std::size_t>(t)]) {
      const int caller = g.calls[static_cast<std::size_t>(ci)].caller;
      if (reach[static_cast<std::size_t>(caller)]) continue;
      reach[static_cast<std::size_t>(caller)] = 1;
      via[static_cast<std::size_t>(caller)] = ci;
      queue.push_back(caller);
    }
  }
}

/// Shared chain formatter: follow `via` hops from `fn` to a function with
/// a direct site, then append "<what>() [file:line]".
template <class Site>
std::string format_chain(const source_tree& tree, const call_graph& g,
                         const std::vector<char>& reach,
                         const std::vector<int>& via,
                         const std::vector<std::vector<int>>& sites_of,
                         const std::vector<Site>& sites, int fn) {
  if (fn < 0 || static_cast<std::size_t>(fn) >= g.functions.size() ||
      !reach[static_cast<std::size_t>(fn)])
    return {};
  std::string out;
  std::set<int> seen;
  int cur = fn;
  for (int hop = 0; hop < 8; ++hop) {
    if (!seen.insert(cur).second) break;
    out += g.functions[static_cast<std::size_t>(cur)].qualified;
    const auto& direct = sites_of[static_cast<std::size_t>(cur)];
    const int v = via[static_cast<std::size_t>(cur)];
    if (v < 0 || !direct.empty()) {
      if (direct.empty()) break;  // inconsistent model; stop gracefully
      const Site& s = sites[static_cast<std::size_t>(direct.front())];
      const function_def& d = g.functions[static_cast<std::size_t>(cur)];
      out += " -> " + s.what + "() [" +
             tree.files[static_cast<std::size_t>(d.file)].path + ":" +
             std::to_string(s.line) + "]";
      return out;
    }
    out += " -> ";
    const call_site& c = g.calls[static_cast<std::size_t>(v)];
    // Step toward any reachable target of the witness call.
    int next = -1;
    for (const int t : c.targets)
      if (reach[static_cast<std::size_t>(t)]) {
        next = t;
        break;
      }
    if (next < 0) break;
    cur = next;
  }
  out += "...";
  return out;
}

}  // namespace

concurrency_model build_concurrency_model(const source_tree& tree,
                                          const call_graph& graph) {
  concurrency_model m;
  const std::size_t n = graph.functions.size();
  for (std::size_t k = 0; k < n; ++k) {
    const function_def& d = graph.functions[k];
    scan_body(tree.files[static_cast<std::size_t>(d.file)],
              tree.files[static_cast<std::size_t>(d.file)].stripped, d,
              static_cast<int>(k), m);
  }
  m.acquisitions_of.assign(n, {});
  m.blocking_of.assign(n, {});
  m.nondet_of.assign(n, {});
  for (std::size_t k = 0; k < m.acquisitions.size(); ++k)
    m.acquisitions_of[static_cast<std::size_t>(m.acquisitions[k].function)]
        .push_back(static_cast<int>(k));
  for (std::size_t k = 0; k < m.blocking.size(); ++k)
    m.blocking_of[static_cast<std::size_t>(m.blocking[k].function)]
        .push_back(static_cast<int>(k));
  for (std::size_t k = 0; k < m.nondet.size(); ++k)
    m.nondet_of[static_cast<std::size_t>(m.nondet[k].function)].push_back(
        static_cast<int>(k));

  // Lock closure: direct mutexes, then a fixpoint union over callees.
  m.lock_closure.assign(n, {});
  for (const auto& a : m.acquisitions)
    m.lock_closure[static_cast<std::size_t>(a.function)].push_back(a.mutex);
  for (auto& v : m.lock_closure) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t k = 0; k < n; ++k) {
      for (const int t : graph.callees_of[k]) {
        const auto& from = m.lock_closure[static_cast<std::size_t>(t)];
        auto& into = m.lock_closure[k];
        for (const int mid : from) {
          if (!std::binary_search(into.begin(), into.end(), mid)) {
            into.insert(
                std::lower_bound(into.begin(), into.end(), mid), mid);
            changed = true;
          }
        }
      }
    }
  }

  std::vector<char> direct_blocking(n, 0), direct_nondet(n, 0);
  for (std::size_t k = 0; k < n; ++k) {
    direct_blocking[k] = m.blocking_of[k].empty() ? 0 : 1;
    direct_nondet[k] = m.nondet_of[k].empty() ? 0 : 1;
  }
  propagate_reach(graph, direct_blocking, m.blocks_transitively,
                  m.blocking_via_call);
  propagate_reach(graph, direct_nondet, m.nondet_transitively,
                  m.nondet_via_call);
  return m;
}

std::string nondet_chain(const source_tree& tree, const call_graph& graph,
                         const concurrency_model& model, int fn) {
  return format_chain(tree, graph, model.nondet_transitively,
                      model.nondet_via_call, model.nondet_of, model.nondet,
                      fn);
}

std::string blocking_chain(const source_tree& tree, const call_graph& graph,
                           const concurrency_model& model, int fn) {
  return format_chain(tree, graph, model.blocks_transitively,
                      model.blocking_via_call, model.blocking_of,
                      model.blocking, fn);
}

}  // namespace sfp::analysis
