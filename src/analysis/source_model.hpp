#pragma once
// Source model for sfplint: loads a source tree into memory as
// comment-and-string-stripped text with line provenance and per-line
// `lint: <rule>-ok` suppression tags.
//
// Stripping replaces comment bodies and string/char-literal contents with
// spaces while preserving byte offsets and newlines, so every downstream
// pass can match tokens without tripping over prose ("don't call rand()"
// in a log message) yet still report exact file:line positions.
// Preprocessor lines keep their string contents so `#include "x/y.hpp"`
// targets survive for the include-graph pass.

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace sfp::analysis {

/// One `lint:` annotation occurrence in the raw text, well- or mal-formed.
/// Only occurrences preceded by `//` on their line with a non-empty
/// alnum/dash token are recorded — prose like "lint: <rule>-ok" in docs
/// comments has an empty token and is not a tag. The suppression-format
/// rule and the --fix rewriter consume these.
struct lint_tag {
  int line = 0;              ///< 1-based
  std::size_t pos = 0;       ///< byte offset of "lint:" in the file
  std::size_t rest_pos = 0;  ///< byte offset where `rest` begins (token end)
  std::string token;  ///< slug token as written ("blocking-ok", "blocking")
  std::string rest;   ///< raw text after the token up to end of line
};

/// One scanned file: stripped text plus provenance helpers.
struct source_file {
  std::string path;    ///< repo-relative, '/'-separated
  std::string tree;    ///< first path component ("src", "bench", "tools", ...)
  std::string module;  ///< "core" for src/core/...; empty outside src/
  bool is_header = false;

  std::string stripped;                  ///< same length/lines as the raw text
  std::vector<std::size_t> line_starts;  ///< byte offset of each line start
  /// line -> rule slugs suppressed there via `lint: <rule>-ok`
  std::map<int, std::vector<std::string>> ok_tags;
  /// every `//`-commented `lint:` occurrence, in file order
  std::vector<lint_tag> tags;

  /// 1-based line number containing byte offset `pos`.
  int line_of(std::size_t pos) const;
  /// Stripped text of 1-based line `lineno` (no trailing newline).
  std::string_view line(int lineno) const;
  int num_lines() const;
  /// True when `lint: <rule>-ok` annotates the given 1-based line.
  bool has_tag(int lineno, std::string_view rule) const;
};

/// A loaded source tree rooted at `root`.
struct source_tree {
  std::string root;
  std::vector<source_file> files;  ///< sorted by path
};

/// Blank comments and string/char-literal bodies, preserving offsets.
/// Exposed separately so tests can probe the lexer edge cases.
std::string strip_source(std::string_view text);

/// Build a source_file from an in-memory buffer (fixture entry point).
source_file make_source_file(std::string path, std::string_view text);

/// The trees sfplint scans by default. Tests are deliberately excluded:
/// they may use their framework's macros and raw <cassert>.
const std::vector<std::string>& default_subtrees();

/// Load every .hpp/.cpp under root/<subtree> for each listed subtree.
/// Missing subtrees are skipped (a fixture tree need not have all five).
source_tree load_tree(const std::string& root,
                      const std::vector<std::string>& subtrees =
                          default_subtrees());

}  // namespace sfp::analysis
