#pragma once
// Flattened-cube layout (paper Figure 6): places the six faces in a cross so
// global structures (curves, partitions) can be rendered in 2D.

#include <string>
#include <vector>

#include "mesh/cubed_sphere.hpp"

namespace sfp::mesh {

/// Position of an element in the flattened cross:
///
///          [4]
///          [0] [1] [2] [3]        (equatorial strip, eastward)
///          [5]
///
/// The canvas is 4·Ne wide and 3·Ne tall; faces 4/5 sit above/below face 0.
struct flat_pos {
  int x = 0;
  int y = 0;
};

flat_pos flatten(const cubed_sphere& mesh, int element_id);

/// Canvas dimensions for the cross layout.
flat_pos flat_extent(const cubed_sphere& mesh);

/// Render per-element integer labels (e.g. partition owner or curve position
/// modulo base) on the flattened cube; cells outside any face print blanks.
std::string render_flat_labels(const cubed_sphere& mesh,
                               const std::vector<int>& label_of_element,
                               int label_modulus = 0);

}  // namespace sfp::mesh
