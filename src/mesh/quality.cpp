#include "mesh/quality.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace sfp::mesh {

double element_edge_length(const cubed_sphere& mesh, int element, int edge) {
  SFP_REQUIRE(edge >= 0 && edge < 4, "edge index out of range");
  // Corner GLL conventions: edge e runs from local corner e to (e+1)%4.
  // Use the geometric (projection-aware) corners via reference coordinates.
  constexpr double refs[4][2][2] = {
      {{-1, -1}, {1, -1}},   // S
      {{1, -1}, {1, 1}},     // E
      {{1, 1}, {-1, 1}},     // N
      {{-1, 1}, {-1, -1}},   // W
  };
  const vec3 a = mesh.reference_to_sphere(element, refs[edge][0][0],
                                          refs[edge][0][1]);
  const vec3 b = mesh.reference_to_sphere(element, refs[edge][1][0],
                                          refs[edge][1][1]);
  // Great-circle distance between unit vectors.
  const double c = std::clamp(dot(a, b), -1.0, 1.0);
  return std::acos(c);
}

quality_report analyze_quality(const cubed_sphere& mesh) {
  quality_report r;
  r.min_area = 1e300;
  double aspect_sum = 0;
  for (int e = 0; e < mesh.num_elements(); ++e) {
    const double area = mesh.element_area_sphere(e);
    r.min_area = std::min(r.min_area, area);
    r.max_area = std::max(r.max_area, area);
    r.total_area += area;
    double emin = 1e300, emax = 0;
    for (int edge = 0; edge < 4; ++edge) {
      const double len = element_edge_length(mesh, e, edge);
      emin = std::min(emin, len);
      emax = std::max(emax, len);
    }
    const double aspect = emax / emin;
    r.max_aspect = std::max(r.max_aspect, aspect);
    aspect_sum += aspect;
  }
  r.area_ratio = r.max_area / r.min_area;
  r.mean_aspect = aspect_sum / mesh.num_elements();
  return r;
}

}  // namespace sfp::mesh
