#pragma once
// Small 3D vector types for the cubed-sphere: double vectors for geometry on
// the sphere, integer vectors for exact topology on the cube-surface lattice.

#include <cmath>
#include <cstdint>
#include <functional>

namespace sfp::mesh {

struct vec3 {
  double x = 0, y = 0, z = 0;

  friend vec3 operator+(vec3 a, vec3 b) { return {a.x + b.x, a.y + b.y, a.z + b.z}; }
  friend vec3 operator-(vec3 a, vec3 b) { return {a.x - b.x, a.y - b.y, a.z - b.z}; }
  friend vec3 operator*(double s, vec3 a) { return {s * a.x, s * a.y, s * a.z}; }
};

inline double dot(vec3 a, vec3 b) { return a.x * b.x + a.y * b.y + a.z * b.z; }
inline vec3 cross(vec3 a, vec3 b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z, a.x * b.y - a.y * b.x};
}
inline double norm(vec3 a) { return std::sqrt(dot(a, a)); }
inline vec3 normalized(vec3 a) {
  const double n = norm(a);
  return {a.x / n, a.y / n, a.z / n};
}

/// Integer lattice point on the cube surface. With face frames scaled by Ne,
/// element corners on adjoining faces land on *identical* integer points, so
/// cross-face topology reduces to exact integer equality — no epsilon
/// comparisons, no hand-maintained face-gluing tables.
struct ivec3 {
  std::int32_t x = 0, y = 0, z = 0;
  friend bool operator==(const ivec3&, const ivec3&) = default;
  friend auto operator<=>(const ivec3&, const ivec3&) = default;
};

/// Pack into a single key (coordinates must fit in 21 bits after biasing —
/// ample for any realistic Ne).
inline std::uint64_t pack(ivec3 p) {
  constexpr std::int64_t bias = 1 << 20;
  return (static_cast<std::uint64_t>(p.x + bias) << 42) |
         (static_cast<std::uint64_t>(p.y + bias) << 21) |
         static_cast<std::uint64_t>(p.z + bias);
}

/// Solid angle subtended at the origin by the planar triangle (a, b, c)
/// (Van Oosterom & Strackee 1983). Signed; callers take |value|.
double triangle_solid_angle(vec3 a, vec3 b, vec3 c);

/// Longitude/latitude (radians) of a unit vector.
struct lonlat {
  double lon = 0, lat = 0;
};
lonlat to_lonlat(vec3 p);

}  // namespace sfp::mesh
