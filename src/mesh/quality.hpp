#pragma once
// Mesh-quality diagnostics for the cubed-sphere: area uniformity and element
// aspect ratios — the numbers behind choosing the equiangular projection for
// production dycores, and behind per-element weighting when element cost
// scales with area.

#include "mesh/cubed_sphere.hpp"

namespace sfp::mesh {

struct quality_report {
  double min_area = 0;        ///< smallest spherical element area
  double max_area = 0;        ///< largest
  double area_ratio = 0;      ///< max/min (1 = perfectly uniform)
  double total_area = 0;      ///< should be 4π
  double max_aspect = 0;      ///< worst edge-length ratio within an element
  double mean_aspect = 0;
};

/// Analyze all elements of the mesh.
quality_report analyze_quality(const cubed_sphere& mesh);

/// Great-circle length of the element's local edge e (0=S,1=E,2=N,3=W).
double element_edge_length(const cubed_sphere& mesh, int element, int edge);

}  // namespace sfp::mesh
