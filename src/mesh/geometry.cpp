#include "mesh/geometry.hpp"

namespace sfp::mesh {

double triangle_solid_angle(vec3 a, vec3 b, vec3 c) {
  const double la = norm(a), lb = norm(b), lc = norm(c);
  const double numer = dot(a, cross(b, c));
  const double denom = la * lb * lc + dot(a, b) * lc + dot(a, c) * lb +
                       dot(b, c) * la;
  return 2.0 * std::atan2(numer, denom);
}

lonlat to_lonlat(vec3 p) {
  const vec3 u = normalized(p);
  return {std::atan2(u.y, u.x), std::asin(u.z)};
}

}  // namespace sfp::mesh
