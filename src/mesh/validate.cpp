#include "mesh/validate.hpp"

#include <algorithm>
#include <sstream>
#include <string>

namespace sfp::mesh {

namespace {

template <typename... Parts>
std::string format(const Parts&... parts) {
  std::ostringstream os;
  (os << ... << parts);
  return os.str();
}

}  // namespace

diagnostic validate_topology(const topology_view& m) {
  const int ne = m.ne;
  const int k = m.num_elements;
  if (k != 6 * ne * ne)
    return diagnostic::fail(
        "mesh.element-count",
        format("mesh reports ", k, " elements for Ne=", ne, ", want ",
               6 * ne * ne));

  int cube_vertex_incidences = 0;
  for (int id = 0; id < k; ++id) {
    const element_ref r = m.element_of(id);
    if (m.element_id(r) != id)
      return diagnostic::fail(
          "mesh.id-roundtrip",
          format("element ", id, " maps to (face=", r.face, ",i=", r.i,
                 ",j=", r.j, ") which maps back to ", m.element_id(r)),
          id);

    // Four edge neighbours, all mutual, with links that point back.
    for (int e = 0; e < 4; ++e) {
      const int n = m.edge_neighbor(id, e);
      if (n < 0 || n >= k || n == id)
        return diagnostic::fail(
            "mesh.edge-range",
            format("element ", id, " edge ", e, " neighbour is ", n), id);
      const edge_link link = m.edge_link_of(id, e);
      if (link.neighbor != n)
        return diagnostic::fail(
            "mesh.edge-link",
            format("element ", id, " edge ", e, " link names ", link.neighbor,
                   " but edge_neighbor says ", n),
            id);
      if (link.neighbor_edge < 0 || link.neighbor_edge >= 4)
        return diagnostic::fail(
            "mesh.edge-link",
            format("element ", id, " edge ", e, " link has neighbour edge ",
                   link.neighbor_edge),
            id);
      if (m.edge_neighbor(n, link.neighbor_edge) != id)
        return diagnostic::fail(
            "mesh.edge-symmetry",
            format("element ", id, " edge ", e, " goes to ", n, " edge ",
                   link.neighbor_edge, " which goes to ",
                   m.edge_neighbor(n, link.neighbor_edge)),
            id);
      const edge_link back = m.edge_link_of(n, link.neighbor_edge);
      if (back.neighbor != id || back.neighbor_edge != e ||
          back.reversed != link.reversed)
        return diagnostic::fail(
            "mesh.edge-link",
            format("element ", id, " edge ", e, " link is not mirrored by ",
                   n, " edge ", link.neighbor_edge),
            id);
    }

    // Corner-only neighbours: 4 in face interiors, 3 when the element
    // touches a cube vertex; mutual; disjoint from edge neighbours.
    const std::vector<int> corners = m.corner_neighbors(id);
    int vertex_corners = 0;
    for (int c = 0; c < 4; ++c)
      if (m.corner_is_cube_vertex(id, c)) ++vertex_corners;
    cube_vertex_incidences += vertex_corners;
    const auto expected = static_cast<std::size_t>(4 - vertex_corners);
    if (corners.size() != expected)
      return diagnostic::fail(
          "mesh.corner-count",
          format("element ", id, " has ", corners.size(),
                 " corner-only neighbours, want ", expected, " (touches ",
                 vertex_corners, " cube vertices)"),
          id);
    for (const int c : corners) {
      if (c < 0 || c >= k || c == id)
        return diagnostic::fail(
            "mesh.corner-count",
            format("element ", id, " corner neighbour id ", c,
                   " out of range"),
            id);
      for (int e = 0; e < 4; ++e)
        if (m.edge_neighbor(id, e) == c)
          return diagnostic::fail(
              "mesh.corner-disjoint",
              format("element ", id, " lists ", c,
                     " as corner-only but it is also an edge neighbour"),
              id);
      const std::vector<int> back = m.corner_neighbors(c);
      if (std::find(back.begin(), back.end(), id) == back.end())
        return diagnostic::fail(
            "mesh.corner-symmetry",
            format("element ", id, " lists corner neighbour ", c,
                   " which does not list it back"),
            id);
    }
  }

  // The cube has exactly 8 vertices and only 3 faces meet at each.
  if (cube_vertex_incidences != 24)
    return diagnostic::fail(
        "mesh.cube-vertex",
        format("counted ", cube_vertex_incidences,
               " (element, corner) incidences on cube vertices, want 24"));

  return diagnostic::pass();
}

topology_view view_of(const cubed_sphere& m) {
  topology_view v;
  v.ne = m.ne();
  v.num_elements = m.num_elements();
  v.element_of = [&m](int id) { return m.element_of(id); };
  v.element_id = [&m](element_ref r) { return m.element_id(r); };
  v.edge_neighbor = [&m](int id, int e) { return m.edge_neighbor(id, e); };
  v.edge_link_of = [&m](int id, int e) { return m.edge_link_of(id, e); };
  v.corner_neighbors = [&m](int id) { return m.corner_neighbors(id); };
  v.corner_is_cube_vertex = [&m](int id, int c) {
    return m.corner_is_cube_vertex(id, c);
  };
  return v;
}

diagnostic validate_topology(const cubed_sphere& m) {
  return validate_topology(view_of(m));
}

}  // namespace sfp::mesh
