#include "mesh/layout.hpp"

#include <cstdio>
#include <sstream>

#include "util/require.hpp"

namespace sfp::mesh {

flat_pos flatten(const cubed_sphere& mesh, int element_id) {
  const element_ref r = mesh.element_of(element_id);
  const int ne = mesh.ne();
  switch (r.face) {
    case 0: return {r.i, ne + r.j};
    case 1: return {ne + r.i, ne + r.j};
    case 2: return {2 * ne + r.i, ne + r.j};
    case 3: return {3 * ne + r.i, ne + r.j};
    case 4: return {r.i, 2 * ne + r.j};  // north above face 0
    case 5: return {r.i, r.j};           // south below face 0
  }
  SFP_REQUIRE(false, "invalid face");
  return {};
}

flat_pos flat_extent(const cubed_sphere& mesh) {
  return {4 * mesh.ne(), 3 * mesh.ne()};
}

std::string render_flat_labels(const cubed_sphere& mesh,
                               const std::vector<int>& label_of_element,
                               int label_modulus) {
  SFP_REQUIRE(label_of_element.size() ==
                  static_cast<std::size_t>(mesh.num_elements()),
              "one label per element required");
  const flat_pos ext = flat_extent(mesh);
  int max_label = 0;
  for (const int l : label_of_element) max_label = std::max(max_label, l);
  if (label_modulus > 0) max_label = label_modulus - 1;
  int width = 1;
  for (int n = max_label; n >= 10; n /= 10) ++width;

  std::vector<std::string> canvas(
      static_cast<std::size_t>(ext.y),
      std::string(static_cast<std::size_t>(ext.x * (width + 1)), ' '));
  char buf[32];
  for (int id = 0; id < mesh.num_elements(); ++id) {
    const flat_pos p = flatten(mesh, id);
    int label = label_of_element[static_cast<std::size_t>(id)];
    if (label_modulus > 0) label %= label_modulus;
    std::snprintf(buf, sizeof buf, "%*d ", width, label);
    canvas[static_cast<std::size_t>(p.y)].replace(
        static_cast<std::size_t>(p.x * (width + 1)),
        static_cast<std::size_t>(width + 1), buf);
  }
  std::ostringstream os;
  for (auto it = canvas.rbegin(); it != canvas.rend(); ++it) os << *it << '\n';
  return os.str();
}

}  // namespace sfp::mesh
