#pragma once
// Deep topology validation of the cubed-sphere mesh. Returns a structured
// sfp::diagnostic; invariant slugs are stable:
//
//   mesh.element-count    K != 6·Ne²
//   mesh.id-roundtrip     element_id / element_of disagree
//   mesh.edge-range       an edge neighbour id is out of range or self
//   mesh.edge-symmetry    edge neighbour relation is not mutual
//   mesh.edge-link        an edge link does not point back at its origin
//   mesh.corner-count     corner-only neighbour count is not 3 or 4
//   mesh.corner-symmetry  corner-only neighbour relation is not mutual
//   mesh.corner-disjoint  a corner-only neighbour is also an edge neighbour
//   mesh.cube-vertex      cube-vertex incidence count is not exactly 24
//                         (8 vertices × 3 faces)

#include <functional>
#include <vector>

#include "mesh/cubed_sphere.hpp"
#include "util/contract.hpp"

namespace sfp::mesh {

/// Accessor-level view of a cubed-sphere topology. The validator works
/// against this rather than cubed_sphere directly so tests can corrupt one
/// accessor at a time and prove each invariant is actually enforced
/// (cubed_sphere's internals are sealed, by design).
struct topology_view {
  int ne = 0;
  int num_elements = 0;
  std::function<element_ref(int)> element_of;
  std::function<int(element_ref)> element_id;
  std::function<int(int, int)> edge_neighbor;
  std::function<edge_link(int, int)> edge_link_of;
  std::function<std::vector<int>(int)> corner_neighbors;
  std::function<bool(int, int)> corner_is_cube_vertex;
};

/// Full structural audit of a topology view. O(K).
diagnostic validate_topology(const topology_view& v);

/// Full structural audit of the mesh topology. O(K).
diagnostic validate_topology(const cubed_sphere& m);

/// The identity view over `m` — corrupt individual accessors in tests.
topology_view view_of(const cubed_sphere& m);

}  // namespace sfp::mesh
