#pragma once
// The cubed-sphere computational domain (paper Section 1, Figure 1).
//
// Six cube faces, each subdivided into an Ne×Ne array of quadrilateral
// spectral elements, gnomonically projected onto the unit sphere. Total
// element count K = 6·Ne². Elements are the atomic units of partitioning;
// two elements communicate iff they share a boundary edge or a corner point
// (including across cube edges and at cube vertices, where only three faces
// meet).
//
// All cross-face topology is derived from exact integer lattice geometry:
// each element corner maps to an integer point on the cube surface, points
// shared between faces coincide exactly, and adjacency falls out of corner
// identity — there are no hand-written face-gluing tables to get wrong.

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/csr.hpp"
#include "mesh/geometry.hpp"

namespace sfp::mesh {

/// Identifies an element by face and in-face grid position.
struct element_ref {
  int face = 0;  ///< 0..3 equatorial (+x,+y,-x,-y), 4 north (+z), 5 south (-z)
  int i = 0;     ///< local x index in [0, Ne)
  int j = 0;     ///< local y index in [0, Ne)
  friend bool operator==(const element_ref&, const element_ref&) = default;
};

/// Where an element edge connects: the neighbouring element, which of its
/// local edges is glued to ours, and whether the shared edge's parameter
/// runs in the opposite direction (needed for spectral-element DSS).
struct edge_link {
  int neighbor = -1;
  int neighbor_edge = -1;  ///< 0=S, 1=E, 2=N, 3=W on the neighbour
  bool reversed = false;
};

/// How face coordinates map onto the cube before projecting to the sphere.
/// `equidistant` subdivides the cube face uniformly (the construction the
/// paper describes); `equiangular` subdivides uniformly in projected angle
/// (the mapping production dycores adopted for its far more uniform element
/// areas). Topology is identical either way — only geometry changes.
enum class projection : std::uint8_t { equidistant, equiangular };

class cubed_sphere {
 public:
  /// Build the mesh for Ne elements per cube-face side (K = 6·Ne²).
  explicit cubed_sphere(int ne, projection proj = projection::equidistant);

  int ne() const { return ne_; }
  int num_elements() const { return 6 * ne_ * ne_; }
  projection proj() const { return proj_; }

  /// Map an abstract face coordinate a ∈ [-1,1] to the cube coordinate
  /// (identity for equidistant, tan(aπ/4) for equiangular), and its
  /// derivative — the chain-rule factor the spectral element metric needs.
  double map_face_coord(double a) const;
  double map_face_coord_deriv(double a) const;

  // ---- id mapping -------------------------------------------------------
  int element_id(int face, int i, int j) const;
  int element_id(element_ref r) const { return element_id(r.face, r.i, r.j); }
  element_ref element_of(int id) const;

  // ---- topology ---------------------------------------------------------
  /// Neighbour across local edge 0=S (j-1), 1=E (i+1), 2=N (j+1), 3=W (i-1);
  /// steps off the face land on the adjoining face. Every element has
  /// exactly four edge neighbours (the surface is closed).
  int edge_neighbor(int id, int edge) const;

  /// Full link for local edge `edge` (neighbour + its edge + orientation).
  edge_link edge_link_of(int id, int edge) const;

  /// Elements sharing *only* a corner point with `id` (diagonal neighbours).
  /// Size 4 in face interiors; 3 for elements touching a cube vertex.
  const std::vector<int>& corner_neighbors(int id) const;

  /// All elements sharing local corner `c` (0=SW,1=SE,2=NE,3=NW) with `id`,
  /// as (element, that element's corner index) pairs, self excluded.
  /// Size 3 around regular points, 2 around cube vertices.
  std::vector<std::pair<int, int>> corner_links(int id, int corner) const;

  /// True if local corner `c` of `id` lies on a cube vertex (3 faces meet).
  bool corner_is_cube_vertex(int id, int corner) const;

  /// Integer lattice corner points of an element, locally ordered
  /// SW, SE, NE, NW.
  std::array<ivec3, 4> corner_points(int id) const;

  // ---- geometry ---------------------------------------------------------
  /// Gnomonic projection of the element center onto the unit sphere.
  vec3 element_center_sphere(int id) const;

  /// Gnomonic projection of reference coordinates (xi, eta) ∈ [-1,1]² within
  /// the element onto the unit sphere.
  vec3 reference_to_sphere(int id, double xi, double eta) const;

  /// Spherical area (solid angle) of the element.
  double element_area_sphere(int id) const;

  // ---- dual graph (partitioning input, paper Section 2) ------------------
  /// Communication graph: vertices are elements; edge-sharing pairs get
  /// weight `edge_weight`, corner-only pairs `corner_weight` (proportional
  /// to the data exchanged: a whole edge of GLL points vs a single point).
  /// With include_corners=false only edge-sharing pairs appear (ablation).
  graph::csr dual_graph(graph::weight edge_weight = 8,
                        graph::weight corner_weight = 1,
                        bool include_corners = true) const;

  /// Face frame: center + in-face tangent axes (unit integer vectors).
  struct face_frame {
    vec3 center, u, v;
  };
  static face_frame frame_of_face(int face);

 private:
  ivec3 corner_point(int face, int ci, int cj) const;  // lattice corner (ci,cj)
  vec3 corner_point_geometric(int face, int ci, int cj) const;  // projected

  int ne_;
  projection proj_ = projection::equidistant;
  // Per element: 4 edge neighbours, 4 edge links, corner-only neighbours.
  std::vector<std::array<int, 4>> edge_nbr_;
  std::vector<std::array<edge_link, 4>> edge_links_;
  std::vector<std::vector<int>> corner_nbr_;
  // corner point key -> list of (element, local corner) incidences.
  std::unordered_map<std::uint64_t, std::vector<std::pair<int, int>>> corners_;
};

}  // namespace sfp::mesh
