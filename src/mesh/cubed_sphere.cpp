#include "mesh/cubed_sphere.hpp"

#include <algorithm>
#include <utility>

#include "mesh/validate.hpp"
#include "util/contract.hpp"

namespace sfp::mesh {

namespace {

// Integer face frames: center, u (local x), v (local y). Faces 0-3 wrap the
// equator eastward; 4 is the north (+z) cap, 5 the south (-z) cap.
struct iframe {
  ivec3 c, u, v;
};
constexpr iframe kFrames[6] = {
    {{1, 0, 0}, {0, 1, 0}, {0, 0, 1}},    // +x
    {{0, 1, 0}, {-1, 0, 0}, {0, 0, 1}},   // +y
    {{-1, 0, 0}, {0, -1, 0}, {0, 0, 1}},  // -x
    {{0, -1, 0}, {1, 0, 0}, {0, 0, 1}},   // -y
    {{0, 0, 1}, {0, 1, 0}, {-1, 0, 0}},   // +z (north)
    {{0, 0, -1}, {0, 1, 0}, {1, 0, 0}},   // -z (south)
};

struct pair_hash {
  std::size_t operator()(const std::pair<std::uint64_t, std::uint64_t>& p) const {
    // 64-bit mix of the two packed corner keys.
    std::uint64_t h = p.first * 0x9e3779b97f4a7c15ull;
    h ^= p.second + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return static_cast<std::size_t>(h);
  }
};

}  // namespace

cubed_sphere::cubed_sphere(int ne, projection proj) : ne_(ne), proj_(proj) {
  SFP_REQUIRE(ne >= 1, "Ne must be at least 1");
  SFP_REQUIRE(ne <= 4096, "Ne too large for the integer lattice packing");
  const int nelem = num_elements();
  edge_nbr_.assign(static_cast<std::size_t>(nelem), {-1, -1, -1, -1});
  edge_links_.assign(static_cast<std::size_t>(nelem), {});
  corner_nbr_.assign(static_cast<std::size_t>(nelem), {});

  // Pass 1: corner incidences.
  for (int id = 0; id < nelem; ++id) {
    const auto pts = corner_points(id);
    for (int c = 0; c < 4; ++c) corners_[pack(pts[static_cast<std::size_t>(c)])].push_back({id, c});
  }

  // Pass 2: edge incidences -> edge neighbours + links. Local corner order is
  // SW,SE,NE,NW; local edge e joins corners e and (e+1)%4, giving S,E,N,W.
  std::unordered_map<std::pair<std::uint64_t, std::uint64_t>,
                     std::vector<std::pair<int, int>>, pair_hash>
      edge_map;
  for (int id = 0; id < nelem; ++id) {
    const auto pts = corner_points(id);
    for (int e = 0; e < 4; ++e) {
      std::uint64_t a = pack(pts[static_cast<std::size_t>(e)]);
      std::uint64_t b = pack(pts[static_cast<std::size_t>((e + 1) % 4)]);
      if (a > b) std::swap(a, b);
      edge_map[{a, b}].push_back({id, e});
    }
  }
  for (const auto& [key, incidences] : edge_map) {
    SFP_REQUIRE(incidences.size() == 2,
                "every element edge must be shared by exactly two elements "
                "(the cubed-sphere surface is closed)");
    const auto [ea, eb] = std::pair(incidences[0], incidences[1]);
    const auto pts_a = corner_points(ea.first);
    const auto pts_b = corner_points(eb.first);
    const bool reversed =
        !(pts_a[static_cast<std::size_t>(ea.second)] ==
          pts_b[static_cast<std::size_t>(eb.second)]);
    edge_nbr_[static_cast<std::size_t>(ea.first)][static_cast<std::size_t>(ea.second)] = eb.first;
    edge_nbr_[static_cast<std::size_t>(eb.first)][static_cast<std::size_t>(eb.second)] = ea.first;
    edge_links_[static_cast<std::size_t>(ea.first)][static_cast<std::size_t>(ea.second)] =
        {eb.first, eb.second, reversed};
    edge_links_[static_cast<std::size_t>(eb.first)][static_cast<std::size_t>(eb.second)] =
        {ea.first, ea.second, reversed};
  }

  // Pass 3: corner-only (diagonal) neighbours = co-incident at a corner
  // point but not an edge neighbour.
  for (int id = 0; id < nelem; ++id) {
    const auto& enbrs = edge_nbr_[static_cast<std::size_t>(id)];
    auto& cnbrs = corner_nbr_[static_cast<std::size_t>(id)];
    const auto pts = corner_points(id);
    for (int c = 0; c < 4; ++c) {
      for (const auto& [other, other_corner] :
           corners_.at(pack(pts[static_cast<std::size_t>(c)]))) {
        (void)other_corner;
        if (other == id) continue;
        if (std::find(enbrs.begin(), enbrs.end(), other) != enbrs.end())
          continue;
        cnbrs.push_back(other);
      }
    }
    std::sort(cnbrs.begin(), cnbrs.end());
    cnbrs.erase(std::unique(cnbrs.begin(), cnbrs.end()), cnbrs.end());
  }
  // Audit tier: full topology audit of the freshly built mesh (4-neighbour
  // symmetry across faces, corner consistency, 8 cube vertices × 3 faces).
  SFP_AUDIT_DIAG(validate_topology(*this));
}

int cubed_sphere::element_id(int face, int i, int j) const {
  SFP_REQUIRE(face >= 0 && face < 6, "face out of range");
  SFP_REQUIRE(i >= 0 && i < ne_ && j >= 0 && j < ne_, "element index out of range");
  return (face * ne_ + j) * ne_ + i;
}

element_ref cubed_sphere::element_of(int id) const {
  SFP_REQUIRE(id >= 0 && id < num_elements(), "element id out of range");
  element_ref r;
  r.i = id % ne_;
  r.j = (id / ne_) % ne_;
  r.face = id / (ne_ * ne_);
  return r;
}

ivec3 cubed_sphere::corner_point(int face, int ci, int cj) const {
  const iframe& f = kFrames[face];
  const std::int32_t su = static_cast<std::int32_t>(2 * ci - ne_);
  const std::int32_t sv = static_cast<std::int32_t>(2 * cj - ne_);
  return {ne_ * f.c.x + su * f.u.x + sv * f.v.x,
          ne_ * f.c.y + su * f.u.y + sv * f.v.y,
          ne_ * f.c.z + su * f.u.z + sv * f.v.z};
}

std::array<ivec3, 4> cubed_sphere::corner_points(int id) const {
  const element_ref r = element_of(id);
  return {corner_point(r.face, r.i, r.j), corner_point(r.face, r.i + 1, r.j),
          corner_point(r.face, r.i + 1, r.j + 1),
          corner_point(r.face, r.i, r.j + 1)};
}

int cubed_sphere::edge_neighbor(int id, int edge) const {
  SFP_REQUIRE(id >= 0 && id < num_elements(), "element id out of range");
  SFP_REQUIRE(edge >= 0 && edge < 4, "edge index out of range");
  return edge_nbr_[static_cast<std::size_t>(id)][static_cast<std::size_t>(edge)];
}

edge_link cubed_sphere::edge_link_of(int id, int edge) const {
  SFP_REQUIRE(id >= 0 && id < num_elements(), "element id out of range");
  SFP_REQUIRE(edge >= 0 && edge < 4, "edge index out of range");
  return edge_links_[static_cast<std::size_t>(id)][static_cast<std::size_t>(edge)];
}

const std::vector<int>& cubed_sphere::corner_neighbors(int id) const {
  SFP_REQUIRE(id >= 0 && id < num_elements(), "element id out of range");
  return corner_nbr_[static_cast<std::size_t>(id)];
}

std::vector<std::pair<int, int>> cubed_sphere::corner_links(int id,
                                                            int corner) const {
  SFP_REQUIRE(corner >= 0 && corner < 4, "corner index out of range");
  const auto pts = corner_points(id);
  std::vector<std::pair<int, int>> out;
  for (const auto& link : corners_.at(pack(pts[static_cast<std::size_t>(corner)]))) {
    if (link.first != id) out.push_back(link);
  }
  return out;
}

bool cubed_sphere::corner_is_cube_vertex(int id, int corner) const {
  SFP_REQUIRE(corner >= 0 && corner < 4, "corner index out of range");
  const auto pts = corner_points(id);
  return corners_.at(pack(pts[static_cast<std::size_t>(corner)])).size() == 3;
}

double cubed_sphere::map_face_coord(double a) const {
  if (proj_ == projection::equidistant) return a;
  return std::tan(a * 0.25 * 3.14159265358979323846);
}

double cubed_sphere::map_face_coord_deriv(double a) const {
  if (proj_ == projection::equidistant) return 1.0;
  constexpr double quarter_pi = 0.25 * 3.14159265358979323846;
  const double c = std::cos(a * quarter_pi);
  return quarter_pi / (c * c);
}

vec3 cubed_sphere::element_center_sphere(int id) const {
  return reference_to_sphere(id, 0.0, 0.0);
}

vec3 cubed_sphere::reference_to_sphere(int id, double xi, double eta) const {
  SFP_REQUIRE(xi >= -1.0 && xi <= 1.0 && eta >= -1.0 && eta <= 1.0,
              "reference coordinates must lie in [-1,1]");
  const element_ref r = element_of(id);
  const iframe& f = kFrames[r.face];
  // Abstract face coordinates in [-1,1]: element (i,j) covers
  // [2i/Ne - 1, 2(i+1)/Ne - 1] × (same in j); the projection mapping takes
  // them onto the cube.
  const double a =
      map_face_coord((2.0 * (r.i + 0.5 * (xi + 1.0)) - ne_) / ne_);
  const double b =
      map_face_coord((2.0 * (r.j + 0.5 * (eta + 1.0)) - ne_) / ne_);
  const vec3 p{f.c.x + a * f.u.x + b * f.v.x, f.c.y + a * f.u.y + b * f.v.y,
               f.c.z + a * f.u.z + b * f.v.z};
  return normalized(p);
}

vec3 cubed_sphere::corner_point_geometric(int face, int ci, int cj) const {
  const iframe& f = kFrames[face];
  const double a = map_face_coord((2.0 * ci - ne_) / ne_);
  const double b = map_face_coord((2.0 * cj - ne_) / ne_);
  return {f.c.x + a * f.u.x + b * f.v.x, f.c.y + a * f.u.y + b * f.v.y,
          f.c.z + a * f.u.z + b * f.v.z};
}

double cubed_sphere::element_area_sphere(int id) const {
  // Gnomonic projection maps the element's straight cube edges to great
  // circle arcs, so the spherical element is a geodesic quad; its solid
  // angle is the sum of its two geodesic triangles, computed exactly from
  // the (un-normalized) cube-surface corners.
  const element_ref r = element_of(id);
  const vec3 c0 = corner_point_geometric(r.face, r.i, r.j);
  const vec3 c1 = corner_point_geometric(r.face, r.i + 1, r.j);
  const vec3 c2 = corner_point_geometric(r.face, r.i + 1, r.j + 1);
  const vec3 c3 = corner_point_geometric(r.face, r.i, r.j + 1);
  return std::abs(triangle_solid_angle(c0, c1, c2)) +
         std::abs(triangle_solid_angle(c0, c2, c3));
}

graph::csr cubed_sphere::dual_graph(graph::weight edge_weight,
                                    graph::weight corner_weight,
                                    bool include_corners) const {
  SFP_REQUIRE(edge_weight > 0, "edge weight must be positive");
  SFP_REQUIRE(corner_weight > 0, "corner weight must be positive");
  graph::builder b(num_elements());
  for (int id = 0; id < num_elements(); ++id) {
    for (int e = 0; e < 4; ++e) {
      const int nbr = edge_neighbor(id, e);
      if (id < nbr) b.add_edge(id, nbr, edge_weight);
    }
    if (include_corners) {
      for (const int nbr : corner_neighbors(id)) {
        if (id < nbr) b.add_edge(id, nbr, corner_weight);
      }
    }
  }
  return b.build();
}

cubed_sphere::face_frame cubed_sphere::frame_of_face(int face) {
  SFP_REQUIRE(face >= 0 && face < 6, "face out of range");
  const iframe& f = kFrames[face];
  const auto v = [](ivec3 p) {
    return vec3{static_cast<double>(p.x), static_cast<double>(p.y),
                static_cast<double>(p.z)};
  };
  return {v(f.c), v(f.u), v(f.v)};
}

}  // namespace sfp::mesh
