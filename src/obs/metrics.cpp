#include "obs/metrics.hpp"

#include <algorithm>
#include <functional>
#include <string>

#include "util/contract.hpp"

namespace sfp::obs {

namespace {
// Route contract violations through the metrics registry so an obs session
// dump shows how many (and which tier of) checks fired. Registered at
// static-init time; the hook only resolves counters lazily at violation
// time, so registry construction order does not matter.
void count_violation(const contract_violation& v) {
  registry::global()
      .get_counter(std::string("contract.violations.") + v.kind)
      .inc();
}

[[maybe_unused]] const bool g_contract_observer_registered = [] {
  set_violation_observer(&count_violation);
  return true;
}();
}  // namespace

registry& registry::global() {
  static registry instance;
  return instance;
}

registry::shard& registry::shard_of(std::string_view name) {
  const std::size_t h = std::hash<std::string_view>{}(name);
  return shards_[h % kShards];
}

counter& registry::get_counter(std::string_view name) {
  shard& s = shard_of(name);
  std::lock_guard<std::mutex> lock(s.mutex);
  auto it = s.counters.find(name);
  if (it == s.counters.end())
    it = s.counters.emplace(std::string(name), std::make_unique<counter>())
             .first;
  return *it->second;
}

gauge& registry::get_gauge(std::string_view name) {
  shard& s = shard_of(name);
  std::lock_guard<std::mutex> lock(s.mutex);
  auto it = s.gauges.find(name);
  if (it == s.gauges.end())
    it = s.gauges.emplace(std::string(name), std::make_unique<gauge>()).first;
  return *it->second;
}

histogram& registry::get_histogram(std::string_view name) {
  shard& s = shard_of(name);
  std::lock_guard<std::mutex> lock(s.mutex);
  auto it = s.histograms.find(name);
  if (it == s.histograms.end())
    it = s.histograms.emplace(std::string(name), std::make_unique<histogram>())
             .first;
  return *it->second;
}

metrics_snapshot registry::snapshot() const {
  metrics_snapshot snap;
  for (const shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mutex);
    for (const auto& [name, c] : s.counters)
      snap.counters.push_back({name, c->value()});
    for (const auto& [name, g] : s.gauges)
      snap.gauges.push_back({name, g->value()});
    for (const auto& [name, h] : s.histograms) {
      metrics_snapshot::histogram_row row;
      row.name = name;
      row.count = h->count();
      row.sum = h->sum();
      for (int i = 0; i < histogram::kBuckets; ++i)
        row.buckets[static_cast<std::size_t>(i)] = h->bucket(i);
      snap.histograms.push_back(std::move(row));
    }
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

void registry::reset() {
  for (shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mutex);
    for (auto& [name, c] : s.counters) c->reset();
    for (auto& [name, g] : s.gauges) g->reset();
    for (auto& [name, h] : s.histograms) h->reset();
  }
}

}  // namespace sfp::obs
