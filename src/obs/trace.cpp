#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <mutex>

#include "obs/metrics.hpp"

namespace sfp::obs {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

namespace {

/// Bound on events retained per thread per session. Overflow drops the
/// newest events (the interesting ramp-up is usually at the start) and
/// counts them in thread_trace::dropped.
constexpr std::size_t kMaxEventsPerThread = std::size_t{1} << 16;

struct thread_buffer {
  std::mutex mutex;
  std::uint32_t tid = 0;
  std::string name;
  std::vector<trace_event> events;
  std::int64_t dropped = 0;
};

/// Process-wide trace state. Buffers register on first use and retire their
/// events here on thread exit so a post-join collect() still sees them.
struct trace_state {
  std::atomic<bool> enabled{false};
  std::atomic<std::int64_t> epoch_ns{0};
  std::mutex mutex;  // guards the two vectors below
  std::vector<thread_buffer*> live;
  std::vector<thread_trace> retired;
  std::uint32_t next_tid = 1;

  static trace_state& get() {
    static trace_state* state = new trace_state();  // immortal: threads may
    return *state;                                  // outlive static dtors
  }
};

/// Owns registration; the destructor moves any recorded events into the
/// retired list so they survive the thread.
struct thread_buffer_owner {
  thread_buffer buffer;

  thread_buffer_owner() {
    trace_state& state = trace_state::get();
    std::lock_guard<std::mutex> lock(state.mutex);
    buffer.tid = state.next_tid++;
    state.live.push_back(&buffer);
  }

  ~thread_buffer_owner() {
    trace_state& state = trace_state::get();
    std::lock_guard<std::mutex> lock(state.mutex);
    std::erase(state.live, &buffer);
    std::lock_guard<std::mutex> block(buffer.mutex);
    if (!buffer.events.empty() || buffer.dropped > 0)
      state.retired.push_back({buffer.tid, std::move(buffer.name),
                               std::move(buffer.events), buffer.dropped});
  }
};

thread_buffer& local_buffer() {
  thread_local thread_buffer_owner owner;
  return owner.buffer;
}

}  // namespace

namespace trace {

void enable() {
  trace_state& state = trace_state::get();
  std::lock_guard<std::mutex> lock(state.mutex);
  for (thread_buffer* b : state.live) {
    std::lock_guard<std::mutex> block(b->mutex);
    b->events.clear();
    b->dropped = 0;
  }
  state.retired.clear();
  state.epoch_ns.store(now_ns(), std::memory_order_relaxed);
  state.enabled.store(true, std::memory_order_release);
}

void disable() {
  trace_state::get().enabled.store(false, std::memory_order_release);
}

bool enabled() {
#ifdef SFP_OBS_DISABLED
  return false;
#else
  return trace_state::get().enabled.load(std::memory_order_acquire);
#endif
}

void set_thread_name(std::string name) {
  thread_buffer& b = local_buffer();
  std::lock_guard<std::mutex> lock(b.mutex);
  b.name = std::move(name);
}

void record(const char* name, const char* category, std::int64_t start_ns,
            std::int64_t dur_ns) {
  if (!enabled()) return;
  thread_buffer& b = local_buffer();
  std::lock_guard<std::mutex> lock(b.mutex);
  if (b.events.size() >= kMaxEventsPerThread) {
    ++b.dropped;
    return;
  }
  b.events.push_back({name, category, start_ns, dur_ns});
}

trace_dump collect() {
  trace_state& state = trace_state::get();
  trace_dump dump;
  dump.epoch_ns = state.epoch_ns.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(state.mutex);
  dump.threads.reserve(state.live.size() + state.retired.size());
  for (thread_buffer* b : state.live) {
    std::lock_guard<std::mutex> block(b->mutex);
    if (b->events.empty() && b->dropped == 0 && b->name.empty()) continue;
    dump.threads.push_back({b->tid, b->name, b->events, b->dropped});
  }
  for (const thread_trace& t : state.retired) dump.threads.push_back(t);
  return dump;
}

}  // namespace trace

timed_scope::~timed_scope() {
  const std::int64_t dur_ns = now_ns() - start_ns_;
  registry::global()
      .get_histogram(std::string(name_) + ".us")
      .observe(dur_ns / 1000);
  if (trace::enabled()) trace::record(name_, category_, start_ns_, dur_ns);
}

}  // namespace sfp::obs
