#pragma once
// Span-based tracing with per-thread ring buffers and a post-run collector.
//
// A trace session brackets a region of interest: trace::enable() clears all
// buffers and starts the clock, instrumented code records complete spans
// ("X" events in Chrome-trace terms) through RAII scopes, and
// trace::collect() snapshots every thread's events — including threads that
// have already exited, whose buffers are retired into the session rather
// than lost (the virtual-rank runtime joins its rank threads before anyone
// can collect).
//
// Cost model: when no session is active a scope is one relaxed atomic load
// and a branch; when active it is two steady_clock reads and one append
// under the buffer's (uncontended, per-thread) mutex. Buffers are bounded —
// overflow drops the newest events and counts them, it never blocks or
// reallocates unboundedly. The per-buffer mutex is what keeps collection
// ThreadSanitizer-clean without ordering tricks.
//
// Compile-out: defining SFP_OBS_DISABLED turns the macros into no-ops and
// enabled() into a constant false; the API remains callable.

#include <cstdint>
#include <string>
#include <vector>

namespace sfp::obs {

/// One completed span, timestamps in steady-clock nanoseconds (absolute;
/// exporters subtract the session epoch). `name`/`category` must be string
/// literals or otherwise outlive the session.
struct trace_event {
  const char* name;
  const char* category;
  std::int64_t start_ns;
  std::int64_t dur_ns;
};

/// All events one thread recorded during the session.
struct thread_trace {
  std::uint32_t tid = 0;        ///< stable small id, assigned per thread
  std::string name;             ///< from set_thread_name(), may be empty
  std::vector<trace_event> events;
  std::int64_t dropped = 0;     ///< events lost to ring-buffer overflow
};

/// A collected session: per-thread event lists plus the session epoch.
struct trace_dump {
  std::int64_t epoch_ns = 0;
  std::vector<thread_trace> threads;
};

std::int64_t now_ns();

namespace trace {

/// Start a session: clears every buffer (live and retired) and sets the
/// epoch. Nestable only trivially — a second enable() restarts the session.
void enable();
void disable();
bool enabled();

/// Label the calling thread in subsequent collections ("rank 3", "main").
void set_thread_name(std::string name);

/// Record one completed span on the calling thread (no-op when disabled).
void record(const char* name, const char* category, std::int64_t start_ns,
            std::int64_t dur_ns);

/// Snapshot all events recorded since enable(). Safe to call from any
/// thread, with recording threads still live (their buffers are locked
/// briefly) — though the intended use is after the traced region joined.
trace_dump collect();

}  // namespace trace

/// RAII span: records [construction, destruction) when a session is active.
class trace_scope {
 public:
  explicit trace_scope(const char* name, const char* category = "app") {
    if (!trace::enabled()) return;
    name_ = name;
    category_ = category;
    start_ns_ = now_ns();
  }
  ~trace_scope() {
    if (name_) trace::record(name_, category_, start_ns_, now_ns() - start_ns_);
  }
  trace_scope(const trace_scope&) = delete;
  trace_scope& operator=(const trace_scope&) = delete;

 private:
  const char* name_ = nullptr;
  const char* category_ = nullptr;
  std::int64_t start_ns_ = 0;
};

/// RAII span that also feeds the histogram "<name>.us" in the global
/// registry — for phase timings that should appear in the metrics dump even
/// when no trace session is active.
class timed_scope {
 public:
  explicit timed_scope(const char* name, const char* category = "phase")
      : name_(name), category_(category), start_ns_(now_ns()) {}
  ~timed_scope();
  timed_scope(const timed_scope&) = delete;
  timed_scope& operator=(const timed_scope&) = delete;

 private:
  const char* name_;
  const char* category_;
  std::int64_t start_ns_;
};

}  // namespace sfp::obs

#define SFP_OBS_CONCAT_IMPL(a, b) a##b
#define SFP_OBS_CONCAT(a, b) SFP_OBS_CONCAT_IMPL(a, b)

#ifndef SFP_OBS_DISABLED
/// Trace the enclosing scope as a span named `name` (a string literal).
#define SFP_TRACE_SCOPE(name) \
  ::sfp::obs::trace_scope SFP_OBS_CONCAT(sfp_trace_scope_, __LINE__)(name)
#define SFP_TRACE_SCOPE_CAT(name, category)                             \
  ::sfp::obs::trace_scope SFP_OBS_CONCAT(sfp_trace_scope_, __LINE__)(name, \
                                                                     category)
/// Span + histogram "<name>.us" in the global metrics registry.
#define SFP_OBS_TIMED_SCOPE(name) \
  ::sfp::obs::timed_scope SFP_OBS_CONCAT(sfp_timed_scope_, __LINE__)(name)
#else
#define SFP_TRACE_SCOPE(name) \
  do {                        \
  } while (false)
#define SFP_TRACE_SCOPE_CAT(name, category) \
  do {                                      \
  } while (false)
#define SFP_OBS_TIMED_SCOPE(name) \
  do {                            \
  } while (false)
#endif
