#pragma once
// Low-overhead metrics registry: named counters, gauges, and fixed
// log2-bucket histograms behind a lock-sharded name table.
//
// The design splits the cost into two phases. *Registration* (name ->
// handle) takes one shard mutex and is expected once per call site — cache
// the returned pointer. *Updates* through a handle are lock-free relaxed
// atomics, safe from any thread, including every rank thread of the
// virtual-rank runtime under ThreadSanitizer. Handles are stable for the
// lifetime of the registry (reset() zeroes values in place, it never
// invalidates pointers).
//
// This subsystem absorbs and extends runtime::rank_counters: the world
// publishes its per-run aggregates here, and instrumented layers (seam
// halo exchange, mgp phases, core stitch search) add their own series.

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace sfp::obs {

/// Monotonically increasing 64-bit counter.
class counter {
 public:
  void add(std::int64_t v) { value_.fetch_add(v, std::memory_order_relaxed); }
  void inc() { add(1); }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class registry;
  void reset() { value_.store(0, std::memory_order_relaxed); }
  std::atomic<std::int64_t> value_{0};
};

/// Last-written double (e.g. a ratio or a level, not a rate).
class gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class registry;
  void reset() { value_.store(0.0, std::memory_order_relaxed); }
  std::atomic<double> value_{0.0};
};

/// Histogram over non-negative integer samples (microseconds, bytes, ...)
/// with fixed log2 buckets: bucket 0 counts v <= 0, bucket i (i >= 1)
/// counts 2^(i-1) <= v < 2^i. The top bucket absorbs everything larger.
class histogram {
 public:
  static constexpr int kBuckets = 64;

  void observe(std::int64_t v) {
    buckets_[static_cast<std::size_t>(bucket_of(v))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v > 0 ? v : 0, std::memory_order_relaxed);
  }

  /// Bucket index a sample lands in (exposed for tests).
  static int bucket_of(std::int64_t v) {
    if (v <= 0) return 0;
    int b = 1;
    while (b < kBuckets - 1 && v >= (std::int64_t{1} << b)) ++b;
    return b;
  }

  std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::int64_t bucket(int i) const {
    return buckets_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
  }

 private:
  friend class registry;
  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }
  std::array<std::atomic<std::int64_t>, kBuckets> buckets_{};
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
};

/// Immutable, name-sorted copy of every metric — what exporters consume.
struct metrics_snapshot {
  struct counter_row {
    std::string name;
    std::int64_t value;
  };
  struct gauge_row {
    std::string name;
    double value;
  };
  struct histogram_row {
    std::string name;
    std::int64_t count;
    std::int64_t sum;
    std::array<std::int64_t, histogram::kBuckets> buckets;
  };
  std::vector<counter_row> counters;
  std::vector<gauge_row> gauges;
  std::vector<histogram_row> histograms;
};

/// Lock-sharded name table. Thread-safe; one global instance plus
/// constructible locals for tests.
class registry {
 public:
  static registry& global();

  counter& get_counter(std::string_view name);
  gauge& get_gauge(std::string_view name);
  histogram& get_histogram(std::string_view name);

  metrics_snapshot snapshot() const;

  /// Zero every metric in place. Handles stay valid.
  void reset();

 private:
  struct shard {
    mutable std::mutex mutex;
    std::map<std::string, std::unique_ptr<counter>, std::less<>> counters;
    std::map<std::string, std::unique_ptr<gauge>, std::less<>> gauges;
    std::map<std::string, std::unique_ptr<histogram>, std::less<>> histograms;
  };
  static constexpr std::size_t kShards = 16;

  shard& shard_of(std::string_view name);

  std::array<shard, kShards> shards_;
};

}  // namespace sfp::obs
