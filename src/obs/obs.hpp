#pragma once
// Umbrella header for the observability subsystem: the metrics registry
// (obs/metrics.hpp), span tracing (obs/trace.hpp), and the session helper
// that brackets an observed region of code.
//
// Typical use — the `sfcpart trace` subcommand is the canonical example:
//
//   sfp::obs::session s;                  // enable tracing, reset metrics
//   ...run the instrumented workload...
//   auto dump = s.finish();               // disable + collect spans
//   io::write_chrome_trace_file("run.trace.json", dump);
//   io::write_metrics_json_file("run.metrics.json",
//                               sfp::obs::registry::global().snapshot());

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sfp::obs {

/// RAII trace session: enables tracing (and optionally resets the global
/// metrics registry so the dump covers exactly this session) on
/// construction; finish() — or destruction — disables it again.
class session {
 public:
  explicit session(bool reset_metrics = true) {
    if (reset_metrics) registry::global().reset();
    trace::enable();
  }
  ~session() {
    if (!finished_) trace::disable();
  }
  session(const session&) = delete;
  session& operator=(const session&) = delete;

  /// Stop recording and return everything recorded since construction.
  trace_dump finish() {
    finished_ = true;
    trace::disable();
    return trace::collect();
  }

 private:
  bool finished_ = false;
};

}  // namespace sfp::obs
