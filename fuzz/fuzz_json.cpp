// Fuzz surface 1: the io::json recursive-descent parser.
//
// Properties checked beyond "no crash":
//   * malformed input is rejected with sfp::contract_error, never anything
//     else (no std::bad_alloc from hostile nesting, no stack overflow);
//   * json_escape() composed with the parser is the identity on arbitrary
//     byte strings.

#include <string>
#include <string_view>

#include "harness.hpp"
#include "io/json.hpp"
#include "util/contract.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);

  try {
    const sfp::io::json_value v = sfp::io::parse_json(text);
    // Parsed documents support the lookup helpers without blowing up.
    if (v.is_object())
      for (const auto& [key, child] : v.object) {
        (void)child;
        if (!v.has(key)) return 0;  // unreachable; keeps `key` used
      }
  } catch (const sfp::contract_error&) {
    // Expected rejection path for malformed input.
  }

  // Escape / re-parse must round-trip arbitrary bytes exactly.
  const std::string quoted =
      "\"" + sfp::io::json_escape(text) + "\"";
  const sfp::io::json_value round = sfp::io::parse_json(quoted);
  if (!round.is_string() || round.string != text)
    // A failed round-trip is a real parser/escaper bug: crash loudly so
    // both drivers report the input.
    __builtin_trap();
  return 0;
}
