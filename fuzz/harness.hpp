#pragma once
// Shared declaration for the fuzz harnesses under fuzz/.
//
// Each harness defines the standard libFuzzer entry point
// LLVMFuzzerTestOneInput over one untrusted-input surface. Two drivers can
// host it:
//
//   * clang's libFuzzer (-DSFCPART_LIBFUZZER=ON, requires clang): coverage
//     -guided fuzzing, the mode to use for long exploratory runs;
//   * fuzz/driver_main.cpp (default, works with any compiler): replays the
//     committed corpus, then runs a time-boxed deterministic mutation loop
//     — the CI regression mode, typically under the asan-ubsan preset.
//
// Harness contract: sfp::contract_error is the *expected* rejection path
// for malformed input and must be caught; anything else that escapes —
// another exception type, a sanitizer report, a crash — is a bug in the
// parser under test.

#include <cstddef>
#include <cstdint>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);
