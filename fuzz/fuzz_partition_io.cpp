// Fuzz surface 2: the io::partition_io reader (CSV with a v1 preamble).
//
// Properties checked beyond "no crash":
//   * malformed input is rejected with sfp::contract_error — in particular
//     a hostile preamble (num_vertices far beyond the body) must fail
//     cheaply instead of attempting a giant allocation;
//   * any accepted partition round-trips exactly through save/load.

#include <sstream>
#include <string>

#include "harness.hpp"
#include "io/partition_io.hpp"
#include "util/contract.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);

  sfp::partition::partition p;
  try {
    std::istringstream is(text);
    p = sfp::io::load_partition(is);
  } catch (const sfp::contract_error&) {
    return 0;  // expected rejection path
  }

  // Accepted input: the parsed partition must round-trip exactly.
  std::ostringstream saved;
  sfp::io::save_partition(saved, p);
  std::istringstream again(saved.str());
  const sfp::partition::partition q = sfp::io::load_partition(again);
  if (q.num_parts != p.num_parts || q.part_of != p.part_of) __builtin_trap();
  return 0;
}
