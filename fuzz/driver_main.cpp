// Standalone driver for the fuzz harnesses — no libFuzzer required, so the
// regression mode runs with any toolchain (and under the asan-ubsan preset
// in CI).
//
//   fuzz_<surface> [-t SECONDS] [-n ITERATIONS] [-seed N] [-v] PATH...
//
// Every PATH (file, or directory scanned recursively) is replayed through
// LLVMFuzzerTestOneInput first — the committed-corpus regression gate.
// With -t (or -n), a deterministic mutation loop then generates fresh
// inputs from the corpus: xorshift-seeded byte flips, truncations, splices,
// and dictionary insertions. Deterministic by construction (fixed -seed =
// fixed input sequence), so a CI failure reproduces locally.
//
// Exit code 0 = every input processed without a crash; harness property
// violations trap (SIGILL) and sanitizers abort, both non-zero.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "harness.hpp"

namespace {

namespace fs = std::filesystem;

// Deterministic xorshift64* — the driver must not depend on platform RNGs.
struct rng {
  std::uint64_t state;
  explicit rng(std::uint64_t seed) : state(seed ? seed : 0x9e3779b97f4a7c15ULL) {}
  std::uint64_t next() {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545f4914f6cdd1dULL;
  }
  std::size_t below(std::size_t n) {
    return n ? static_cast<std::size_t>(next() % n) : 0;
  }
};

// Tokens that help mutations cross the parsers' early gates.
const char* const kDictionary[] = {
    "{", "}", "[", "]", "\"", ":", ",", "true", "false", "null", "\\u0041",
    "1e9", "-0.5", "# sfcpart-partition v1 ", "num_vertices=", "num_parts=",
    "element,part\n", "0,0\n", "hilbert", "peano", "cinco", "p*2", "h^3",
    "2", "3", "5",
};

std::vector<std::uint8_t> read_file(const fs::path& p) {
  std::ifstream is(p, std::ios::binary);
  return {std::istreambuf_iterator<char>(is),
          std::istreambuf_iterator<char>()};
}

std::vector<std::uint8_t> mutate(const std::vector<std::vector<std::uint8_t>>& corpus,
                                 rng& r) {
  std::vector<std::uint8_t> out;
  if (!corpus.empty()) out = corpus[r.below(corpus.size())];
  const std::size_t rounds = 1 + r.below(8);
  for (std::size_t k = 0; k < rounds; ++k) {
    switch (r.below(6)) {
      case 0:  // flip a bit
        if (!out.empty())
          out[r.below(out.size())] ^=
              static_cast<std::uint8_t>(1u << r.below(8));
        break;
      case 1:  // overwrite a byte
        if (!out.empty())
          out[r.below(out.size())] = static_cast<std::uint8_t>(r.next());
        break;
      case 2:  // truncate
        if (!out.empty()) out.resize(r.below(out.size()));
        break;
      case 3: {  // insert random bytes
        const std::size_t n = 1 + r.below(8);
        const std::size_t at = r.below(out.size() + 1);
        std::vector<std::uint8_t> bytes(n);
        for (auto& b : bytes) b = static_cast<std::uint8_t>(r.next());
        out.insert(out.begin() + static_cast<std::ptrdiff_t>(at),
                   bytes.begin(), bytes.end());
        break;
      }
      case 4: {  // insert a dictionary token
        const char* tok =
            kDictionary[r.below(sizeof kDictionary / sizeof *kDictionary)];
        const std::size_t at = r.below(out.size() + 1);
        out.insert(out.begin() + static_cast<std::ptrdiff_t>(at),
                   tok, tok + std::strlen(tok));
        break;
      }
      case 5: {  // splice with another corpus entry
        if (corpus.empty()) break;
        const auto& other = corpus[r.below(corpus.size())];
        if (other.empty()) break;
        const std::size_t take = r.below(other.size()) + 1;
        const std::size_t at = r.below(out.size() + 1);
        out.insert(out.begin() + static_cast<std::ptrdiff_t>(at),
                   other.begin(),
                   other.begin() + static_cast<std::ptrdiff_t>(take));
        break;
      }
    }
    if (out.size() > (1u << 16)) out.resize(1u << 16);  // keep execs fast
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  double seconds = 0;
  long long iterations = 0;
  std::uint64_t seed = 0x5fc0de;
  bool verbose = false;
  std::vector<fs::path> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-t" && i + 1 < argc) seconds = std::atof(argv[++i]);
    else if (arg == "-n" && i + 1 < argc) iterations = std::atoll(argv[++i]);
    else if (arg == "-seed" && i + 1 < argc)
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    else if (arg == "-v") verbose = true;
    else if (arg == "-h" || arg == "--help") {
      std::printf("usage: %s [-t seconds] [-n iterations] [-seed N] [-v] "
                  "corpus-path...\n", argv[0]);
      return 0;
    } else paths.push_back(arg);
  }

  // Stage 1: corpus regression replay.
  std::vector<std::vector<std::uint8_t>> corpus;
  for (const fs::path& p : paths) {
    if (fs::is_directory(p)) {
      std::vector<fs::path> files;
      for (const auto& e : fs::recursive_directory_iterator(p))
        if (e.is_regular_file()) files.push_back(e.path());
      std::sort(files.begin(), files.end());  // deterministic order
      for (const auto& f : files) corpus.push_back(read_file(f));
    } else if (fs::is_regular_file(p)) {
      corpus.push_back(read_file(p));
    } else {
      std::fprintf(stderr, "fuzz: no such corpus path: %s\n",
                   p.string().c_str());
      return 2;
    }
  }
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    if (verbose)
      std::fprintf(stderr, "replay %zu/%zu (%zu bytes)\n", i + 1,
                   corpus.size(), corpus[i].size());
    LLVMFuzzerTestOneInput(corpus[i].data(), corpus[i].size());
  }
  std::fprintf(stderr, "fuzz: replayed %zu corpus inputs\n", corpus.size());

  // Stage 2: time- or count-boxed deterministic mutation fuzzing.
  long long execs = 0;
  if (seconds > 0 || iterations > 0) {
    rng r(seed);
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(seconds > 0 ? seconds : 1e18));
    while (true) {
      if (iterations > 0 && execs >= iterations) break;
      if (seconds > 0 && (execs & 0x3f) == 0 &&
          std::chrono::steady_clock::now() >= deadline)
        break;
      const std::vector<std::uint8_t> input = mutate(corpus, r);
      LLVMFuzzerTestOneInput(input.data(), input.size());
      ++execs;
    }
  }
  std::fprintf(stderr, "fuzz: %lld mutated execs, 0 crashes\n", execs);
  return 0;
}
