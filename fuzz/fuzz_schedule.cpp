// Fuzz surface 3: the SFC schedule-string parser (sfc/parse.hpp).
//
// Properties checked beyond "no crash":
//   * malformed specs are rejected with a diagnostic (try_parse_schedule
//     returns false with an error), never an exception or a crash;
//   * accepted schedules respect the 2^20 side bound;
//   * format_schedule / parse_schedule round-trip exactly;
//   * small accepted schedules generate curves that pass the full
//     Hamiltonian-path + unit-step validator.

#include <string>
#include <string_view>

#include "harness.hpp"
#include "sfc/curve.hpp"
#include "sfc/parse.hpp"
#include "sfc/validate.hpp"
#include "util/contract.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view spec(reinterpret_cast<const char*>(data), size);

  sfp::sfc::schedule s;
  std::string error;
  if (!sfp::sfc::try_parse_schedule(spec, s, &error)) {
    if (error.empty()) __builtin_trap();  // rejection must carry a message
    return 0;
  }

  const int side = sfp::sfc::side_of(s);
  if (side < 2 || side > (1 << 20)) __builtin_trap();

  // Canonical spec round-trip.
  const std::string canonical = sfp::sfc::format_schedule(s);
  const sfp::sfc::schedule reparsed = sfp::sfc::parse_schedule(canonical);
  if (reparsed != s) __builtin_trap();

  // Small schedules: generate and fully validate the curve.
  if (side <= 64) {
    const sfp::diagnostic d =
        sfp::sfc::validate_curve(sfp::sfc::generate(s), side);
    if (!d.ok) __builtin_trap();
  }
  return 0;
}
