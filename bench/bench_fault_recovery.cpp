// Fault-recovery bench (beyond the paper): when a rank dies mid-run, the
// survivors must agree on a new partition fast and move as little data as
// possible. Compares two strategies on the cube curve:
//   (a) full re-slice: cut the curve into nparts-1 equal segments and remap
//       against the pre-failure partition to maximize overlap;
//   (b) plan_recovery: absorb the failed segment into its curve neighbours,
//       splitting at the weight midpoint.
// Reports migration fraction, post-recovery load balance, and planning time.
//
// A second, transient-fault section runs the actual distributed step loop
// on the K=384 mesh (Ne=8) under seeded message chaos: drop / corrupt /
// duplicate / reorder faults that the reliable transport heals in place
// (zero migration) versus a rank kill that must climb the escalation
// ladder to a plan_recovery re-slice. It reports wall-clock overhead and
// retransmit counts and writes the numbers to BENCH_chaos.json.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/cube_curve.hpp"
#include "core/rebalance.hpp"
#include "core/sfc_partition.hpp"
#include "io/json.hpp"
#include "mesh/cubed_sphere.hpp"
#include "partition/partition.hpp"
#include "seam/advection.hpp"
#include "seam/distributed.hpp"
#include "util/table.hpp"

namespace {

using namespace sfp;

double load_balance_of(const partition::partition& p) {
  std::vector<std::int64_t> count(static_cast<std::size_t>(p.num_parts), 0);
  for (const auto part : p.part_of) ++count[static_cast<std::size_t>(part)];
  const auto max = *std::max_element(count.begin(), count.end());
  const double avg =
      static_cast<double>(p.part_of.size()) / static_cast<double>(p.num_parts);
  return static_cast<double>(max) / avg;
}

double moved_fraction_reslice(const core::cube_curve& curve,
                              const partition::partition& before, int failed) {
  // Strategy (a): equal re-slice over nparts-1 segments, then relabel the
  // new parts to overlap the pre-failure owners as much as possible. An
  // element only stays put if it keeps a surviving owner — anything that
  // lived on the failed rank migrates no matter what label it gets.
  auto sliced = core::sfc_partition(curve, before.num_parts - 1);
  core::remap_to_maximize_overlap(before, sliced);
  std::int64_t moved = 0;
  for (std::size_t i = 0; i < sliced.part_of.size(); ++i)
    if (before.part_of[i] == failed || sliced.part_of[i] != before.part_of[i])
      ++moved;
  return static_cast<double>(moved) /
         static_cast<double>(sliced.part_of.size());
}

// ---- transient-fault mode: healed in place vs re-slice ---------------------

/// One timed resilient run; `report` and the wall-clock come back to the
/// caller so the rows below can compare transports and fault loads.
double timed_resilient_ms(const seam::advection_model& model,
                          const core::cube_curve& curve,
                          const partition::partition& part, double dt,
                          int nsteps, const seam::resilience_options& ropts,
                          seam::recovery_report* report) {
  const auto t0 = std::chrono::steady_clock::now();
  (void)seam::run_distributed_resilient(model, curve, part, dt, nsteps, ropts,
                                        report);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

void transient_fault_section() {
  // K = 6*Ne^2 = 384 elements — the paper's smallest sweep point — split
  // over 24 virtual ranks. Wall-clock on a thread-per-rank world measures
  // protocol overhead (envelopes, acks, retransmits), not network time.
  const int ne = 8, nproc = 24, nsteps = 4;
  const mesh::cubed_sphere mesh(ne);
  const auto curve = core::build_cube_curve(mesh);
  const auto part = core::sfc_partition(curve, nproc);
  seam::advection_model model(mesh, 4);
  model.set_field([](mesh::vec3 p) {
    return std::exp(-6.0 * ((p.x - 1) * (p.x - 1) + p.y * p.y + p.z * p.z));
  });
  const double dt = model.cfl_dt(0.3);

  std::printf("== Transient faults at K=%d: heal in place vs re-slice ==\n\n",
              mesh.num_elements());

  const auto base = [&] {
    seam::resilience_options r;
    r.timeout = std::chrono::milliseconds(20000);
    r.reliable.recv_timeout = std::chrono::milliseconds(15000);
    // 24 rank threads share whatever cores the machine has; a retransmit
    // timeout below the scheduling jitter would count descheduled peers as
    // lost messages and drown the fault-driven retransmits being measured.
    r.reliable.retransmit_timeout = std::chrono::microseconds(20000);
    r.reliable.max_backoff = std::chrono::microseconds(80000);
    return r;
  };

  // (1) raw transport, no faults — the floor.
  seam::resilience_options raw = base();
  seam::recovery_report raw_rep;
  const double raw_ms =
      timed_resilient_ms(model, curve, part, dt, nsteps, raw, &raw_rep);

  // (2) reliable transport, no faults — envelope + ack overhead.
  seam::resilience_options clean = base();
  clean.reliable_transport = true;
  seam::recovery_report clean_rep;
  const double clean_ms =
      timed_resilient_ms(model, curve, part, dt, nsteps, clean, &clean_rep);

  // (3) reliable transport under message chaos — retransmit overhead, the
  // faults heal in place (attempts stays 1, nothing migrates).
  seam::resilience_options chaos = base();
  chaos.reliable_transport = true;
  chaos.faults.seed = 384;
  auto& mf = chaos.faults.message_faults.emplace_back();
  mf.drop_probability = 0.02;
  mf.corrupt_probability = 0.02;
  mf.duplicate_probability = 0.02;
  mf.reorder_probability = 0.01;
  seam::recovery_report chaos_rep;
  const double chaos_ms =
      timed_resilient_ms(model, curve, part, dt, nsteps, chaos, &chaos_rep);

  // (4) rank kill — transient healing cannot help; the run re-slices.
  seam::resilience_options kill = base();
  kill.faults.kills.push_back({nproc / 2, 40});
  seam::recovery_report kill_rep;
  const double kill_ms =
      timed_resilient_ms(model, curve, part, dt, nsteps, kill, &kill_rep);

  table t({"scenario", "ms", "attempts", "retransmits", "moved %"});
  const auto row = [&](const char* name, double ms,
                       const seam::recovery_report& rep) {
    t.new_row()
        .add(name)
        .add(ms, 1)
        .add(rep.attempts)
        .add(rep.reliable.retransmits)
        .add(100.0 * rep.migration.moved_fraction, 2);
  };
  row("raw, fault-free", raw_ms, raw_rep);
  row("reliable, fault-free", clean_ms, clean_rep);
  row("reliable, message chaos", chaos_ms, chaos_rep);
  row("raw, rank kill -> re-slice", kill_ms, kill_rep);
  std::printf("%s\n", t.str().c_str());
  std::printf("Message chaos heals in place: attempts stays 1 and nothing\n"
              "migrates; the cost is retransmits on the already-degraded\n"
              "links. A kill always pays a re-slice plus a rollback to the\n"
              "last checkpoint.\n\n");

  io::json_value doc = io::json_object();
  doc.object["ne"] = io::json_number(ne);
  doc.object["elements"] = io::json_number(mesh.num_elements());
  doc.object["nproc"] = io::json_number(nproc);
  doc.object["nsteps"] = io::json_number(nsteps);
  const auto scenario = [](double ms, const seam::recovery_report& rep) {
    io::json_value s = io::json_object();
    s.object["ms"] = io::json_number(ms);
    s.object["attempts"] = io::json_number(rep.attempts);
    s.object["retransmits"] =
        io::json_number(static_cast<double>(rep.reliable.retransmits));
    s.object["corruption_detected"] = io::json_number(
        static_cast<double>(rep.reliable.corruption_detected));
    s.object["dedup_dropped"] =
        io::json_number(static_cast<double>(rep.reliable.dedup_dropped));
    s.object["moved_fraction"] =
        io::json_number(rep.migration.moved_fraction);
    return s;
  };
  doc.object["raw_fault_free"] = scenario(raw_ms, raw_rep);
  doc.object["reliable_fault_free"] = scenario(clean_ms, clean_rep);
  doc.object["reliable_message_chaos"] = scenario(chaos_ms, chaos_rep);
  doc.object["rank_kill_reslice"] = scenario(kill_ms, kill_rep);
  io::write_json_file(doc, "BENCH_chaos.json");
  std::printf("wrote BENCH_chaos.json\n");
}

}  // namespace

int main() {
  std::printf("== Rank-failure recovery: full re-slice vs neighbour absorb ==\n\n");
  std::printf("One rank dies; survivors repartition the curve. 'moved' counts\n"
              "elements whose owner changes (data that must migrate).\n\n");

  table t({"Ne", "K", "nparts", "reslice moved %", "absorb moved %",
           "1/nparts %", "absorb LB", "plan us"});

  const int cases[][2] = {{8, 24}, {8, 96}, {16, 96}, {16, 384}, {32, 384}};
  for (const auto& c : cases) {
    const int ne = c[0], nproc = c[1];
    const mesh::cubed_sphere mesh(ne);
    const auto curve = core::build_cube_curve(mesh);
    const auto before = core::sfc_partition(curve, nproc);

    // Average over a spread of failed ranks; time the planning itself.
    double reslice_moved = 0, absorb_moved = 0, worst_lb = 0;
    double plan_us = 0;
    const int failures[] = {0, nproc / 3, nproc / 2, nproc - 1};
    for (const int failed : failures) {
      reslice_moved += moved_fraction_reslice(curve, before, failed);
      const auto t0 = std::chrono::steady_clock::now();
      const auto plan = core::plan_recovery(curve, before, failed);
      const auto t1 = std::chrono::steady_clock::now();
      plan_us += std::chrono::duration<double, std::micro>(t1 - t0).count();
      absorb_moved += plan.migration.moved_fraction;
      worst_lb = std::max(worst_lb, load_balance_of(plan.part));
    }
    const double n = static_cast<double>(std::size(failures));
    t.new_row()
        .add(ne)
        .add(mesh.num_elements())
        .add(nproc)
        .add(100.0 * reslice_moved / n, 2)
        .add(100.0 * absorb_moved / n, 2)
        .add(100.0 / nproc, 2)
        .add(worst_lb, 3)
        .add(plan_us / n, 1);
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("Absorbing the failed segment moves exactly the failed rank's\n"
              "elements (1/nparts of the mesh) at the cost of ~1.5x load on\n"
              "the two absorbers (2x when the failed rank sits at a curve end\n"
              "and has one neighbour); a full re-slice rebalances perfectly\n"
              "but migrates an nparts-independent ~25%% of the mesh.\n\n");
  transient_fault_section();
  return 0;
}
