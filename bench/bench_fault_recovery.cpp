// Fault-recovery bench (beyond the paper): when a rank dies mid-run, the
// survivors must agree on a new partition fast and move as little data as
// possible. Compares two strategies on the cube curve:
//   (a) full re-slice: cut the curve into nparts-1 equal segments and remap
//       against the pre-failure partition to maximize overlap;
//   (b) plan_recovery: absorb the failed segment into its curve neighbours,
//       splitting at the weight midpoint.
// Reports migration fraction, post-recovery load balance, and planning time.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "core/cube_curve.hpp"
#include "core/rebalance.hpp"
#include "core/sfc_partition.hpp"
#include "mesh/cubed_sphere.hpp"
#include "partition/partition.hpp"
#include "util/table.hpp"

namespace {

using namespace sfp;

double load_balance_of(const partition::partition& p) {
  std::vector<std::int64_t> count(static_cast<std::size_t>(p.num_parts), 0);
  for (const auto part : p.part_of) ++count[static_cast<std::size_t>(part)];
  const auto max = *std::max_element(count.begin(), count.end());
  const double avg =
      static_cast<double>(p.part_of.size()) / static_cast<double>(p.num_parts);
  return static_cast<double>(max) / avg;
}

double moved_fraction_reslice(const core::cube_curve& curve,
                              const partition::partition& before, int failed) {
  // Strategy (a): equal re-slice over nparts-1 segments, then relabel the
  // new parts to overlap the pre-failure owners as much as possible. An
  // element only stays put if it keeps a surviving owner — anything that
  // lived on the failed rank migrates no matter what label it gets.
  auto sliced = core::sfc_partition(curve, before.num_parts - 1);
  core::remap_to_maximize_overlap(before, sliced);
  std::int64_t moved = 0;
  for (std::size_t i = 0; i < sliced.part_of.size(); ++i)
    if (before.part_of[i] == failed || sliced.part_of[i] != before.part_of[i])
      ++moved;
  return static_cast<double>(moved) /
         static_cast<double>(sliced.part_of.size());
}

}  // namespace

int main() {
  std::printf("== Rank-failure recovery: full re-slice vs neighbour absorb ==\n\n");
  std::printf("One rank dies; survivors repartition the curve. 'moved' counts\n"
              "elements whose owner changes (data that must migrate).\n\n");

  table t({"Ne", "K", "nparts", "reslice moved %", "absorb moved %",
           "1/nparts %", "absorb LB", "plan us"});

  const int cases[][2] = {{8, 24}, {8, 96}, {16, 96}, {16, 384}, {32, 384}};
  for (const auto& c : cases) {
    const int ne = c[0], nproc = c[1];
    const mesh::cubed_sphere mesh(ne);
    const auto curve = core::build_cube_curve(mesh);
    const auto before = core::sfc_partition(curve, nproc);

    // Average over a spread of failed ranks; time the planning itself.
    double reslice_moved = 0, absorb_moved = 0, worst_lb = 0;
    double plan_us = 0;
    const int failures[] = {0, nproc / 3, nproc / 2, nproc - 1};
    for (const int failed : failures) {
      reslice_moved += moved_fraction_reslice(curve, before, failed);
      const auto t0 = std::chrono::steady_clock::now();
      const auto plan = core::plan_recovery(curve, before, failed);
      const auto t1 = std::chrono::steady_clock::now();
      plan_us += std::chrono::duration<double, std::micro>(t1 - t0).count();
      absorb_moved += plan.migration.moved_fraction;
      worst_lb = std::max(worst_lb, load_balance_of(plan.part));
    }
    const double n = static_cast<double>(std::size(failures));
    t.new_row()
        .add(ne)
        .add(mesh.num_elements())
        .add(nproc)
        .add(100.0 * reslice_moved / n, 2)
        .add(100.0 * absorb_moved / n, 2)
        .add(100.0 / nproc, 2)
        .add(worst_lb, 3)
        .add(plan_us / n, 1);
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("Absorbing the failed segment moves exactly the failed rank's\n"
              "elements (1/nparts of the mesh) at the cost of ~1.5x load on\n"
              "the two absorbers (2x when the failed rank sits at a curve end\n"
              "and has one neighbour); a full re-slice rebalances perfectly\n"
              "but migrates an nparts-independent ~25%% of the mesh.\n");
  return 0;
}
