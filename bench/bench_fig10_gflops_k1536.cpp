// Regenerates paper Figure 10: sustained floating-point execution rate
// (total Gflop/s) vs processor count for K=1536, SFC vs best METIS-family
// partitioning. Paper reports a 22% higher rate for SFC at 768 processors.

#include <cstdio>

#include "common.hpp"
#include "util/table.hpp"

int main() {
  using namespace sfp;
  const int ne = 16;
  std::printf(
      "== Paper Figure 10: sustained Gflop/s vs Nproc, K=%d (Ne=%d) ==\n\n",
      6 * ne * ne, ne);
  const bench::experiment exp(ne);

  table t({"Nproc", "Gflop/s SFC", "Gflop/s best-METIS", "best",
           "SFC advantage %"});
  double adv_at_768 = 0;
  for (const int nproc : bench::nproc_ladder(ne, 2, 768)) {
    const auto rows = exp.evaluate(nproc);
    const auto& sfc = rows[0];
    const auto& best = rows[bench::experiment::best_mgp(rows)];
    const double adv = 100.0 * (sfc.gflops / best.gflops - 1.0);
    t.new_row()
        .add(nproc)
        .add(sfc.gflops, 2)
        .add(best.gflops, 2)
        .add(best.name)
        .add(adv, 1);
    if (nproc == 768) adv_at_768 = adv;
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("SFC advantage at 768 procs: %.1f%% (paper: 22%%)\n",
              adv_at_768);
  return 0;
}
