// Strong-scaling microbenchmark for the distributed SFC partitioner:
// elements/sec of the full parallel pipeline (local key generation +
// distributed splitter search + labeling) as the virtual-rank count grows,
// against the serial slicer as the one-rank reference. Emits
// BENCH_partition_scaling.json for the trend tooling.
//
// Virtual ranks are threads on one node, so this measures the algorithm's
// communication structure (rounds, probe volume, window traffic) and
// per-rank compute shrinkage rather than real network latency; the wire
// volume per phase is what transfers to a cluster.

#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "io/json.hpp"
#include "runtime/partition_fabric.hpp"
#include "util/cli.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace sfp;
  const cli_args args(argc, argv);
  const int ne = static_cast<int>(args.get_int_or("ne", 16));
  const int nparts = static_cast<int>(args.get_int_or("nparts", 24));
  const int repeat = static_cast<int>(args.get_int_or("repeat", 3));
  const std::string out_path =
      args.get_or("out", "BENCH_partition_scaling.json");

  const mesh::cubed_sphere mesh(ne);
  const int k = mesh.num_elements();
  const core::cube_curve curve = core::build_cube_curve(mesh);
  const core::cube_curve_spec spec = core::spec_of(curve);
  const partition::partition serial = core::sfc_partition(curve, nparts);

  // Serial reference: the sliced plan over the already-built curve.
  double serial_ms = 1e300;
  for (int r = 0; r < repeat; ++r) {
    stopwatch sw;
    const auto p = core::sfc_partition(curve, nparts);
    serial_ms = std::min(serial_ms, sw.milliseconds());
    if (p.part_of != serial.part_of) {
      std::fprintf(stderr, "serial slicer is not deterministic?\n");
      return 1;
    }
  }

  std::printf("== Distributed partition scaling: K=%d (Ne=%d), %d parts ==\n\n",
              k, ne, nparts);
  std::printf("serial sfc_partition (curve prebuilt): %.3f ms\n\n", serial_ms);

  io::json_value doc = io::json_object();
  doc.object["ne"] = io::json_number(ne);
  doc.object["elements"] = io::json_number(k);
  doc.object["nparts"] = io::json_number(nparts);
  doc.object["serial_ms"] = io::json_number(serial_ms);
  io::json_value points = io::json_array();

  table t({"ranks", "ms (best)", "elements/sec", "rounds", "probes",
           "window", "retransmits"});
  for (const int nranks : {1, 2, 4, 8}) {
    runtime::parallel_partition_report report;
    double best_ms = 1e300;
    for (int r = 0; r < repeat; ++r) {
      stopwatch sw;
      report = runtime::run_parallel_partition(mesh, spec, nparts, {}, nranks);
      best_ms = std::min(best_ms, sw.milliseconds());
    }
    if (report.plan.part_of != serial.part_of) {
      std::fprintf(stderr, "parallel plan diverged from serial at %d ranks\n",
                   nranks);
      return 1;
    }
    const double elems_per_sec = static_cast<double>(k) / (best_ms / 1e3);
    std::int64_t probes = 0, window = 0;
    for (const auto& st : report.rank_stats) {
      probes += st.probes_evaluated;
      window += st.window_records;
    }
    const int rounds = report.rank_stats.empty() ? 0 : report.rank_stats[0].rounds;
    t.new_row()
        .add(nranks)
        .add(best_ms, 3)
        .add(elems_per_sec, 0)
        .add(rounds)
        .add(probes)
        .add(window)
        .add(static_cast<double>(report.reliable.retransmits), 0);

    io::json_value pt = io::json_object();
    pt.object["ranks"] = io::json_number(nranks);
    pt.object["ms"] = io::json_number(best_ms);
    pt.object["elements_per_sec"] = io::json_number(elems_per_sec);
    pt.object["rounds"] = io::json_number(rounds);
    pt.object["probes"] = io::json_number(static_cast<double>(probes));
    pt.object["window_records"] = io::json_number(static_cast<double>(window));
    pt.object["retransmits"] =
        io::json_number(static_cast<double>(report.reliable.retransmits));
    points.array.push_back(std::move(pt));
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("Reading: rank counts here are threads, so elements/sec mostly\n"
              "prices the splitter search's communication structure; the\n"
              "per-rank key-generation and labeling work shrinks as 1/P\n"
              "while rounds and probe volume stay flat.\n");

  doc.object["points"] = std::move(points);
  io::write_json_file(doc, out_path);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
