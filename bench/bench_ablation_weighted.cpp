// Ablation: equal-count vs weight-aware slicing of the space-filling curve.
//
// The paper slices the curve into equal-sized segments (uniform element
// cost). With heterogeneous element weights (e.g. physics columns that cost
// more near the poles), weighted slicing keeps LB small where equal-count
// slicing degrades — quantifying how the SFC algorithm extends beyond the
// paper's uniform setting.

#include <cstdio>

#include "common.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace sfp;
  std::printf("== Ablation: equal-count vs weighted curve slicing ==\n\n");

  const int ne = 8;
  const mesh::cubed_sphere mesh(ne);
  const auto curve = core::build_cube_curve(mesh);
  const int k = mesh.num_elements();

  // Heterogeneous weights: elements in the polar faces (4, 5) cost 3x.
  std::vector<graph::weight> weights(static_cast<std::size_t>(k), 1);
  for (int e = 0; e < k; ++e)
    if (mesh.element_of(e).face >= 4) weights[static_cast<std::size_t>(e)] = 3;

  graph::builder gb(k);
  gb.add_edge(0, 1);
  for (int e = 0; e < k; ++e)
    gb.set_vertex_weight(e, weights[static_cast<std::size_t>(e)]);
  const auto weighted_graph = gb.build();

  table t({"Nproc", "LB(weight) equal-count", "LB(weight) weighted"});
  for (const int nproc : {12, 24, 48, 96}) {
    const auto equal_count = core::sfc_partition(curve, nproc);
    const auto weighted = core::sfc_partition(curve, nproc, weights);
    const auto w_eq = partition::part_weights(equal_count, weighted_graph);
    const auto w_wt = partition::part_weights(weighted, weighted_graph);
    t.new_row()
        .add(nproc)
        .add(load_balance(std::span<const graph::weight>(w_eq)), 4)
        .add(load_balance(std::span<const graph::weight>(w_wt)), 4);
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("Reading: the weighted slicer restores the paper's LB~0\n"
              "property under a 3x polar cost skew.\n");
  return 0;
}
