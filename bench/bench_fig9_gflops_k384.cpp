// Regenerates paper Figure 9: sustained floating-point execution rate
// (total Gflop/s) vs processor count for K=384, SFC vs best METIS-family
// partitioning. Paper reports a 37% higher rate for SFC at 384 processors.

#include <cstdio>

#include "common.hpp"
#include "util/table.hpp"

int main() {
  using namespace sfp;
  const int ne = 8;
  std::printf(
      "== Paper Figure 9: sustained Gflop/s vs Nproc, K=%d (Ne=%d) ==\n\n",
      6 * ne * ne, ne);
  const bench::experiment exp(ne);

  table t({"Nproc", "Gflop/s SFC", "Gflop/s best-METIS", "best",
           "SFC advantage %"});
  for (const int nproc : bench::nproc_ladder(ne, 1, 384)) {
    if (nproc == 1) {
      t.new_row()
          .add(1)
          .add(perf::sustained_gflops(exp.mesh.num_elements(), exp.workload,
                                      exp.serial),
               3)
          .add(perf::sustained_gflops(exp.mesh.num_elements(), exp.workload,
                                      exp.serial),
               3)
          .add("-")
          .add(0.0, 1);
      continue;
    }
    const auto rows = exp.evaluate(nproc);
    const auto& sfc = rows[0];
    const auto& best = rows[bench::experiment::best_mgp(rows)];
    t.new_row()
        .add(nproc)
        .add(sfc.gflops, 2)
        .add(best.gflops, 2)
        .add(best.name)
        .add(100.0 * (sfc.gflops / best.gflops - 1.0), 1);
  }
  std::printf("%s\n", t.str().c_str());
  return 0;
}
