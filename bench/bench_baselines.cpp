// Three-family baseline comparison (beyond the paper, which only compares
// SFC against METIS): space-filling curve vs multilevel graph (best of
// RB/KWAY/TV) vs geometric recursive coordinate bisection, across
// granularities. RCB shares the SFC's geometric nature (ignores the graph)
// but lacks its 1-D contiguity; the gap between them isolates how much of
// the SFC's win is locality-of-numbering rather than geometry alone.

#include <cstdio>

#include "common.hpp"
#include "mgp/geometric.hpp"
#include "util/table.hpp"

int main() {
  using namespace sfp;
  std::printf("== Baselines: SFC vs multilevel-graph vs geometric RCB ==\n\n");

  for (const int ne : {8, 16}) {
    const bench::experiment exp(ne);
    const int k = 6 * ne * ne;
    std::vector<mgp::point3> centers(static_cast<std::size_t>(k));
    for (int e = 0; e < k; ++e) {
      const mesh::vec3 c = exp.mesh.element_center_sphere(e);
      centers[static_cast<std::size_t>(e)] = {c.x, c.y, c.z};
    }

    std::printf("K=%d (Ne=%d):\n", k, ne);
    table t({"Nproc", "elems/proc", "family", "LB(nelemd)", "edgecut",
             "time (usec)"});
    for (const int nproc : {k / 16, k / 4, k / 2, k}) {
      auto rows = exp.evaluate(nproc);
      const std::size_t best = bench::experiment::best_mgp(rows);
      rows.push_back(exp.evaluate_partition(
          "RCB-geom",
          mgp::recursive_coordinate_bisection(centers, {}, nproc)));
      for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto& row = rows[i];
        const bool is_mgp = row.name == "RB" || row.name == "KWAY" ||
                            row.name == "TV";
        if (is_mgp && i != best) continue;  // show only the best graph method
        t.new_row()
            .add(nproc)
            .add(k / nproc)
            .add(row.name == "SFC" ? "SFC"
                                   : (is_mgp ? "graph (" + row.name + ")"
                                             : "geometric"))
            .add(row.metrics.lb_elems, 4)
            .add(row.metrics.edgecut_edges)
            .add(row.time.total_s * 1e6, 0);
      }
    }
    std::printf("%s\n", t.str().c_str());
  }
  std::printf("Reading: RCB matches SFC's balance but cuts more (boxes on a\n"
              "sphere are less compact than curve segments) and its part\n"
              "numbering is less placement-friendly; the SFC keeps the edge\n"
              "everywhere it applies.\n");
  return 0;
}
