// Three-family baseline comparison (beyond the paper, which only compares
// SFC against METIS): space-filling curve vs multilevel graph (best of
// RB/KWAY/TV) vs geometric recursive coordinate bisection, across
// granularities. RCB shares the SFC's geometric nature (ignores the graph)
// but lacks its 1-D contiguity; the gap between them isolates how much of
// the SFC's win is locality-of-numbering rather than geometry alone.

#include <cstdio>

#include "common.hpp"
#include "io/json.hpp"
#include "mgp/geometric.hpp"
#include "util/table.hpp"

int main() {
  using namespace sfp;
  std::printf("== Baselines: SFC vs multilevel-graph vs geometric RCB ==\n\n");

  io::json_value doc = io::json_object();
  io::json_value cases = io::json_array();
  for (const int ne : {8, 16}) {
    const bench::experiment exp(ne);
    const int k = 6 * ne * ne;
    std::vector<mgp::point3> centers(static_cast<std::size_t>(k));
    for (int e = 0; e < k; ++e) {
      const mesh::vec3 c = exp.mesh.element_center_sphere(e);
      centers[static_cast<std::size_t>(e)] = {c.x, c.y, c.z};
    }

    std::printf("K=%d (Ne=%d):\n", k, ne);
    table t({"Nproc", "elems/proc", "family", "LB(nelemd)", "edgecut",
             "time (usec)"});
    io::json_value rows_json = io::json_array();
    for (const int nproc : {k / 16, k / 4, k / 2, k}) {
      auto rows = exp.evaluate(nproc);
      const std::size_t best = bench::experiment::best_mgp(rows);
      rows.push_back(exp.evaluate_partition(
          "RCB-geom",
          mgp::recursive_coordinate_bisection(centers, {}, nproc)));
      for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto& row = rows[i];
        const bool is_mgp = row.name == "RB" || row.name == "KWAY" ||
                            row.name == "TV";
        if (is_mgp && i != best) continue;  // show only the best graph method
        const std::string family =
            row.name == "SFC"
                ? "SFC"
                : (is_mgp ? "graph (" + row.name + ")" : "geometric");
        t.new_row()
            .add(nproc)
            .add(k / nproc)
            .add(family)
            .add(row.metrics.lb_elems, 4)
            .add(row.metrics.edgecut_edges)
            .add(row.time.total_s * 1e6, 0);
        io::json_value r = io::json_object();
        r.object["nproc"] = io::json_number(nproc);
        r.object["family"] = io::json_string(family);
        r.object["method"] = io::json_string(row.name);
        r.object["lb_elems"] = io::json_number(row.metrics.lb_elems);
        r.object["edgecut_edges"] = io::json_number(
            static_cast<double>(row.metrics.edgecut_edges));
        r.object["time_usec"] = io::json_number(row.time.total_s * 1e6);
        rows_json.array.push_back(std::move(r));
      }
    }
    std::printf("%s\n", t.str().c_str());
    io::json_value c = io::json_object();
    c.object["ne"] = io::json_number(ne);
    c.object["elements"] = io::json_number(k);
    c.object["rows"] = std::move(rows_json);
    cases.array.push_back(std::move(c));
  }
  std::printf("Reading: RCB matches SFC's balance but cuts more (boxes on a\n"
              "sphere are less compact than curve segments) and its part\n"
              "numbering is less placement-friendly; the SFC keeps the edge\n"
              "everywhere it applies.\n");
  doc.object["cases"] = std::move(cases);
  io::write_json_file(doc, "BENCH_baselines.json");
  std::printf("wrote BENCH_baselines.json\n");
  return 0;
}
