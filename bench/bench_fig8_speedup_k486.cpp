// Regenerates paper Figure 8: speedup vs processor count for K=486 (Ne=9),
// exercising the m-Peano curve (Ne = 3^2). Paper reports SFC comparable to
// METIS below ~50 processors and 51% faster at 486 processors.

#include <cstdio>

#include "common.hpp"
#include "sfc/curve.hpp"
#include "util/table.hpp"

int main() {
  using namespace sfp;
  const int ne = 9;
  std::printf("== Paper Figure 8: speedup vs Nproc, K=%d (Ne=%d, m-Peano) ==\n\n",
              6 * ne * ne, ne);
  const bench::experiment exp(ne);
  std::printf("face curve type: %s\n\n",
              sfc::schedule_name(exp.curve.face_schedule).c_str());

  table t({"Nproc", "elems/proc", "speedup SFC", "speedup best-METIS",
           "best", "SFC advantage %"});
  double adv_at_max = 0;
  for (const int nproc : bench::nproc_ladder(ne, 2, 486)) {
    const auto rows = exp.evaluate(nproc);
    const auto& sfc = rows[0];
    const auto& best = rows[bench::experiment::best_mgp(rows)];
    const double adv = 100.0 * (best.time.total_s / sfc.time.total_s - 1.0);
    t.new_row()
        .add(nproc)
        .add(6 * ne * ne / nproc)
        .add(sfc.speedup, 1)
        .add(best.speedup, 1)
        .add(best.name)
        .add(adv, 1);
    adv_at_max = adv;
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("SFC advantage at 486 procs: %.1f%% (paper: 51%%)\n",
              adv_at_max);
  return 0;
}
