// Sensitivity study: how robust is the paper's conclusion to the machine
// constants? Sweeps network latency and bandwidth around the calibrated
// P690 values and reports the SFC advantage at the paper's headline
// configuration (K=1536, 768 processors) — showing which regimes favour the
// SFC most and that the qualitative conclusion survives large parameter
// changes.

#include <cstdio>

#include "common.hpp"
#include "util/table.hpp"

int main() {
  using namespace sfp;
  std::printf("== Machine-parameter sensitivity (K=1536 on 768 procs) ==\n\n");

  const bench::experiment exp(16);
  const int nproc = 768;
  const auto sfc_part = core::sfc_partition(exp.curve, nproc);
  const auto mgp_parts = mgp::run_all_methods(exp.dual, nproc);

  const auto advantage = [&](const perf::machine_model& machine) {
    const auto t_sfc =
        perf::simulate_step(exp.dual, sfc_part, machine, exp.workload);
    double best = 0;
    for (const auto& [algo, part] : mgp_parts) {
      (void)algo;
      const auto tm = perf::simulate_step(exp.dual, part, machine, exp.workload);
      if (best == 0 || tm.total_s < best) best = tm.total_s;
    }
    return 100.0 * (best / t_sfc.total_s - 1.0);
  };

  table t({"latency scale", "bandwidth scale", "compute scale",
           "SFC advantage %"});
  const double scales[] = {0.25, 1.0, 4.0};
  for (const double ls : scales) {
    for (const double bs : scales) {
      perf::machine_model m;
      m.latency_s *= ls;
      m.latency_intra_s *= ls;
      m.bandwidth_bps *= bs;
      m.bandwidth_intra_bps *= bs;
      m.node_adapter_bandwidth_bps *= bs;
      t.new_row().add(ls, 2).add(bs, 2).add(1.0, 2).add(advantage(m), 1);
    }
  }
  // Faster processors (same network): communication dominates more.
  for (const double cs : {2.0, 8.0}) {
    perf::machine_model m;
    m.sustained_flops *= cs;
    t.new_row().add(1.0, 2).add(1.0, 2).add(cs, 2).add(advantage(m), 1);
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("Reading: the SFC advantage is positive across the entire\n"
              "sweep; it grows when the network is weaker relative to\n"
              "compute (higher latency, lower bandwidth, faster processors) —\n"
              "i.e. the paper's conclusion strengthens on every subsequent\n"
              "generation of machines, which is why SFC partitioning stuck\n"
              "in HOMME/CAM.\n");
  return 0;
}
