// Recovery-latency bench for the survivor-regroup layer: what a fail-stop
// rank death costs the distributed partitioner. Three scenarios on one
// problem — fault-free, root killed early (succession), two staggered
// kills down to exact quorum — each timed end to end and audited for
// serial parity (the bench exits non-zero if a recovered plan diverges).
// Emits BENCH_partition_recovery.json for the perf guard: the structural
// columns (aborted, parity, kills fired, ranks lost) are deterministic per
// schedule; wall-clock and timing-dependent recovery accounting are
// ignored by the guard's key filter.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/cube_curve.hpp"
#include "core/sfc_partition.hpp"
#include "io/json.hpp"
#include "mesh/cubed_sphere.hpp"
#include "runtime/partition_fabric.hpp"
#include "util/cli.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace sfp;

struct scenario {
  std::string name;
  std::vector<runtime::fault_plan::kill_spec> kills;
};

/// Reliable tuning matched to kill runs: fast retransmit exhaustion makes
/// corpse detection definite quickly, and the short base recv timeout
/// keeps the regroup silence budgets (counted in recv rounds) small — so
/// the bench prices the protocol, not a conservative production timeout.
runtime::parallel_partition_run_options recovery_run_options() {
  runtime::parallel_partition_run_options opts;
  opts.reliable.retransmit_timeout = std::chrono::microseconds(5000);
  opts.reliable.max_backoff = std::chrono::microseconds(20000);
  opts.reliable.max_retransmits = 12;
  opts.reliable.recv_timeout = std::chrono::milliseconds(100);
  opts.timeout = std::chrono::milliseconds(20000);
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  const cli_args args(argc, argv);
  const int ne = static_cast<int>(args.get_int_or("ne", 4));
  const int nparts = static_cast<int>(args.get_int_or("nparts", 5));
  const int nranks = static_cast<int>(args.get_int_or("nproc", 4));
  const int repeat = static_cast<int>(args.get_int_or("repeat", 3));
  const std::string out_path =
      args.get_or("out", "BENCH_partition_recovery.json");

  const mesh::cubed_sphere mesh(ne);
  const core::cube_curve curve = core::build_cube_curve(mesh);
  const core::cube_curve_spec spec = core::spec_of(curve);
  const partition::partition serial = core::sfc_partition(curve, nparts);

  const std::vector<scenario> scenarios = {
      {"fault-free", {}},
      {"kill-root-early", {{0, 2}}},
      {"two-kills-exact-quorum", {{0, 6}, {2, 3}}},
  };

  std::printf(
      "== Partition recovery: K=%d (Ne=%d), %d parts, %d ranks ==\n\n",
      mesh.num_elements(), ne, nparts, nranks);

  io::json_value doc = io::json_object();
  doc.object["ne"] = io::json_number(ne);
  doc.object["nparts"] = io::json_number(nparts);
  doc.object["nranks"] = io::json_number(nranks);
  io::json_value rows = io::json_array();

  table t({"scenario", "ms (best)", "recoveries", "epoch", "lost",
           "kills fired", "parity"});
  double base_ms = 0;
  for (const scenario& sc : scenarios) {
    runtime::parallel_partition_report report;
    double best_ms = 1e300;
    for (int r = 0; r < repeat; ++r) {
      runtime::parallel_partition_run_options opts = recovery_run_options();
      opts.faults.kills = sc.kills;
      stopwatch sw;
      report =
          runtime::run_parallel_partition(mesh, spec, nparts, {}, nranks, opts);
      best_ms = std::min(best_ms, sw.milliseconds());
    }
    if (sc.kills.empty()) base_ms = best_ms;
    const bool parity =
        !report.aborted && report.plan.part_of == serial.part_of;
    if (!parity) {
      std::fprintf(stderr, "scenario '%s' lost serial parity%s\n",
                   sc.name.c_str(), report.aborted ? " (aborted)" : "");
      return 1;
    }
    if (!sc.kills.empty() &&
        (report.counters.injected_kills !=
             static_cast<std::int64_t>(sc.kills.size()) ||
         report.recoveries < 1)) {
      std::fprintf(stderr, "scenario '%s' did not exercise recovery\n",
                   sc.name.c_str());
      return 1;
    }
    t.new_row()
        .add(sc.name)
        .add(best_ms, 3)
        .add(report.recoveries)
        .add(static_cast<double>(report.group_epoch), 0)
        .add(static_cast<int>(report.lost_ranks.size()))
        .add(static_cast<double>(report.counters.injected_kills), 0)
        .add(parity ? 1 : 0);

    io::json_value row = io::json_object();
    row.object["scenario"] = io::json_string(sc.name);
    row.object["time_usec"] = io::json_number(best_ms * 1e3);
    // Timing-dependent: how many agreement rounds the deaths coalesced
    // into. The CI guard names it in --ignore alongside time_usec.
    row.object["recoveries"] = io::json_number(report.recoveries);
    row.object["aborted"] = io::json_number(report.aborted ? 1 : 0);
    row.object["parity"] = io::json_number(parity ? 1 : 0);
    row.object["kills_fired"] = io::json_number(
        static_cast<double>(report.counters.injected_kills));
    row.object["ranks_lost"] =
        io::json_number(static_cast<double>(report.lost_ranks.size()));
    rows.array.push_back(std::move(row));
  }
  std::printf("%s\n", t.str().c_str());
  std::printf(
      "Reading: recovery cost = detection (retransmit exhaustion or the\n"
      "silence patience budget) + one agreement round + a from-scratch\n"
      "re-execution over the survivors; fault-free baseline %.3f ms.\n",
      base_ms);

  doc.object["rows"] = std::move(rows);
  io::write_json_file(doc, out_path);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
