// Ablation: communication/computation overlap. The paper-era model (and
// SEAM's MPI at the time) was synchronous; modern codes overlap halo
// exchange with interior compute. This bench asks how much of the SFC
// advantage survives perfect overlap — separating the communication-
// locality share of the win from the load-balance share (which overlap
// cannot hide).

#include <cstdio>

#include "common.hpp"
#include "util/table.hpp"

int main() {
  using namespace sfp;
  std::printf("== Ablation: communication overlap (K=1536) ==\n\n");

  const bench::experiment exp(16);
  table t({"Nproc", "overlap", "time SFC (usec)", "best-METIS (usec)",
           "vs best %", "KWAY (usec)", "vs KWAY %"});
  for (const int nproc : {384, 768}) {
    for (const double overlap : {0.0, 0.5, 1.0}) {
      perf::machine_model machine;
      machine.comm_overlap = overlap;
      const auto sfc_part = core::sfc_partition(exp.curve, nproc);
      const auto t_sfc =
          perf::simulate_step(exp.dual, sfc_part, machine, exp.workload);
      double best = 0, kway = 0;
      for (const auto& [algo, part] : mgp::run_all_methods(exp.dual, nproc)) {
        const auto tm =
            perf::simulate_step(exp.dual, part, machine, exp.workload);
        if (best == 0 || tm.total_s < best) best = tm.total_s;
        if (algo == mgp::method::kway) kway = tm.total_s;
      }
      t.new_row()
          .add(nproc)
          .add(overlap, 1)
          .add(t_sfc.total_s * 1e6, 0)
          .add(best * 1e6, 0)
          .add(100.0 * (best / t_sfc.total_s - 1.0), 1)
          .add(kway * 1e6, 0)
          .add(100.0 * (kway / t_sfc.total_s - 1.0), 1);
    }
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("Reading: overlap compresses the communication share of the\n"
              "gap. Against RB (balanced like SFC) the advantage vanishes at\n"
              "full overlap; against KWAY a large residual remains — that is\n"
              "pure load imbalance, which no amount of overlap can hide and\n"
              "which the paper identifies as METIS's core problem at O(1)\n"
              "elements per processor.\n");
  return 0;
}
