// Curve-locality comparison across families (Hilbert, m-Peano,
// Hilbert-Peano in all nesting orders, Cinco, row-major baseline): the
// curve-intrinsic numbers behind the partition-quality differences the
// paper observes between Ne=8 (pure Hilbert) and Ne=18 (nested) — and this
// library's answer to §5's "refinement order" question at the curve level.
//
// Besides the console table, the run writes BENCH_curve_locality.json so
// the numbers are machine-comparable across commits (tools/ci.sh guards
// the deterministic subset against tools/bench_reference.json).

#include <cstdio>

#include "io/json.hpp"
#include "sfc/curve.hpp"
#include "sfc/locality.hpp"
#include "util/table.hpp"

int main() {
  using namespace sfp;
  using namespace sfp::sfc;
  std::printf("== Curve locality across families ==\n\n");

  struct entry {
    std::string name;
    std::vector<cell> curve;
    int side;
  };
  std::vector<entry> entries;
  entries.push_back({"hilbert (32)", hilbert_curve(5), 32});
  entries.push_back({"m-peano (27)", peano_curve(3), 27});
  entries.push_back(
      {"hilbert-peano peano-first (36)",
       generate(*schedule_for(36, nesting_order::peano_first)), 36});
  entries.push_back(
      {"hilbert-peano hilbert-first (36)",
       generate(*schedule_for(36, nesting_order::hilbert_first)), 36});
  entries.push_back(
      {"hilbert-peano interleaved (36)",
       generate(*schedule_for(36, nesting_order::interleaved)), 36});
  entries.push_back({"cinco (25)", generate_factors({5, 5}), 25});
  entries.push_back({"row-major (32)", row_major_order(32), 32});

  io::json_value doc = io::json_object();
  doc.object["bench"] = io::json_string("curve_locality");
  io::json_value curves = io::json_array();

  table t({"curve", "dilation@16", "dilation@64", "max stretch",
           "segment-16 perimeter", "vs ideal"});
  for (const auto& e : entries) {
    const auto r = analyze_locality(e.curve, e.side);
    const double vs_ideal = r.mean_segment_perimeter_16 /
                            sfc::locality_report::ideal_perimeter(16);
    t.new_row()
        .add(e.name)
        .add(r.dilation_lag16, 3)
        .add(r.dilation_lag64, 3)
        .add(r.max_stretch, 1)
        .add(r.mean_segment_perimeter_16, 1)
        .add(vs_ideal, 2);
    io::json_value row = io::json_object();
    row.object["curve"] = io::json_string(e.name);
    row.object["side"] = io::json_number(e.side);
    row.object["dilation_lag16"] = io::json_number(r.dilation_lag16);
    row.object["dilation_lag64"] = io::json_number(r.dilation_lag64);
    row.object["max_stretch"] = io::json_number(r.max_stretch);
    row.object["segment16_perimeter"] =
        io::json_number(r.mean_segment_perimeter_16);
    row.object["vs_ideal"] = io::json_number(vs_ideal);
    curves.array.push_back(row);
  }
  doc.object["curves"] = curves;
  std::printf("%s\n", t.str().c_str());
  io::write_json_file(doc, "BENCH_curve_locality.json");
  std::printf("wrote BENCH_curve_locality.json\n\n");
  std::printf("Reading: all SFC families sit within ~2x of the ideal square\n"
              "perimeter while row-major pays >2x more; among the nesting\n"
              "orders, peano-first (the paper's default) is never worse —\n"
              "consistent with the partition-level ablation.\n");
  return 0;
}
