// Extension bench: the synthesized 5-fold "Cinco" generator broadens the
// SFC algorithm's applicability beyond the paper's 2^n·3^m restriction
// (paper §5 lists the restriction as the method's main drawback; NCAR's
// HOMME later added exactly this factor). This bench partitions Ne = 10,
// 15, 20, 30 cubed-spheres with the extended curve and shows the paper's
// quality properties carry over.

#include <cstdio>
#include <string>

#include "core/cube_curve.hpp"
#include "core/sfc_partition.hpp"
#include "mesh/cubed_sphere.hpp"
#include "mgp/partitioner.hpp"
#include "partition/metrics.hpp"
#include "perf/machine.hpp"
#include "perf/simulate.hpp"
#include "sfc/curve.hpp"
#include "util/table.hpp"

int main() {
  using namespace sfp;
  std::printf("== Extension: Cinco (5-fold) refinement — "
              "Ne = 2^n 3^m 5^p ==\n\n");

  const perf::machine_model machine;
  const perf::seam_workload workload;

  table t({"Ne", "K", "curve", "Nproc", "elems/proc", "LB(nelemd)",
           "LB(spcv)", "time SFC (usec)", "vs best METIS"});
  for (const int ne : {10, 15, 20, 30}) {
    const mesh::cubed_sphere mesh(ne);
    const int k = mesh.num_elements();
    const auto dual = mesh.dual_graph();
    const auto curve = core::build_cube_curve_extended(mesh);
    // Pick a fine-granularity processor count: 2 elements per processor.
    const int nproc = k / 2;
    const auto sfc = core::sfc_partition(curve, nproc);
    const auto m = partition::compute_metrics(dual, sfc);
    const auto time = perf::simulate_step(dual, sfc, machine, workload);
    double best_mgp = 0;
    for (const auto& [algo, part] : mgp::run_all_methods(dual, nproc)) {
      (void)algo;
      const auto tm = perf::simulate_step(dual, part, machine, workload);
      if (best_mgp == 0 || tm.total_s < best_mgp) best_mgp = tm.total_s;
    }
    t.new_row()
        .add(ne)
        .add(k)
        .add(sfc::schedule_name(curve.face_schedule))
        .add(nproc)
        .add(2)
        .add(m.lb_elems, 4)
        .add(m.lb_comm, 4)
        .add(time.total_s * 1e6, 0)
        .add(std::to_string(static_cast<int>(
                 100.0 * (best_mgp / time.total_s - 1.0) + 0.5)) +
             "% faster");
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("Reading: the extended curve keeps LB(nelemd)=0 and the SFC\n"
              "advantage at resolutions the paper's 2^n 3^m rule excludes\n"
              "(Ne=10, 20 need the factor 5; Ne=15, 30 need 5 with 3).\n");
  return 0;
}
