// Regenerates paper Table 1: "SEAM test resolutions" — the four cubed-sphere
// resolutions, their element counts, SFC refinement levels, and the range of
// equal-load processor counts each supports.

#include <cstdio>

#include "core/sfc_partition.hpp"
#include "mesh/cubed_sphere.hpp"
#include "sfc/curve.hpp"
#include "util/table.hpp"

int main() {
  using namespace sfp;
  std::printf("== Paper Table 1: SEAM test resolutions ==\n");
  std::printf("K = 6 Ne^2 spectral elements; SFC levels from Ne = 2^n 3^m\n\n");

  table t({"K (# of elements)", "Nproc", "Ne", "Hilbert", "m-Peano",
           "curve type"});
  for (const int ne : {8, 9, 16, 18}) {
    const mesh::cubed_sphere mesh(ne);
    const auto schedule = sfc::schedule_for(ne);
    int n2 = 0, n3 = 0;
    for (const auto r : *schedule)
      (r == sfc::refinement::hilbert2 ? n2 : n3)++;
    const auto nprocs = core::equal_load_nprocs(ne);
    t.new_row()
        .add(mesh.num_elements())
        .add("1 to " + std::to_string(nprocs.back()))
        .add(ne)
        .add(n2)
        .add(n3)
        .add(sfc::schedule_name(*schedule));
  }
  std::printf("%s\n", t.str().c_str());

  std::printf("Valid equal-load processor counts (divisors of K):\n");
  for (const int ne : {8, 9, 16, 18}) {
    std::printf("  Ne=%-3d:", ne);
    for (const int p : core::equal_load_nprocs(ne)) std::printf(" %d", p);
    std::printf("\n");
  }
  return 0;
}
