// Dynamic rebalancing bench (beyond the paper): a rotating day/night cost
// pattern (physics following the terminator) drives periodic repartitioning.
// Compares, per phase: (a) keeping the static unweighted SFC partition,
// (b) SFC re-slicing with current weights, and the migration volume the
// re-slice costs — the trade HOMME's weighted-SFC mode makes in practice.

#include <cmath>
#include <cstdio>

#include "core/cube_curve.hpp"
#include "core/rebalance.hpp"
#include "core/sfc_partition.hpp"
#include "mesh/cubed_sphere.hpp"
#include "partition/partition.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace sfp;
  std::printf("== Rebalancing under a rotating day/night cost pattern ==\n\n");

  const int ne = 16, nproc = 192;
  const mesh::cubed_sphere mesh(ne);
  const int k = mesh.num_elements();
  const auto curve = core::build_cube_curve(mesh);
  const auto static_part = core::sfc_partition(curve, nproc);

  std::printf("Ne=%d (K=%d), %d processors; day-side physics costs 2x\n\n",
              ne, k, nproc);
  table t({"phase (deg)", "LB static", "LB rebalanced", "moved elements",
           "moved %"});

  const auto weights_at = [&](double phase_deg) {
    const double phase = phase_deg * 3.14159265358979 / 180.0;
    std::vector<graph::weight> w(static_cast<std::size_t>(k), 2);
    for (int e = 0; e < k; ++e) {
      const mesh::vec3 c = mesh.element_center_sphere(e);
      // Day side: hemisphere facing (cos phase, sin phase, 0).
      if (c.x * std::cos(phase) + c.y * std::sin(phase) > 0)
        w[static_cast<std::size_t>(e)] = 4;
    }
    return w;
  };
  const auto lb_of = [&](const partition::partition& p,
                         const std::vector<graph::weight>& w) {
    graph::builder gb(k);
    gb.add_edge(0, 1);
    for (int e = 0; e < k; ++e)
      gb.set_vertex_weight(e, w[static_cast<std::size_t>(e)]);
    const auto g = gb.build();
    return load_balance(
        std::span<const graph::weight>(partition::part_weights(p, g)));
  };

  partition::partition current = static_part;
  for (int phase_deg = 0; phase_deg <= 120; phase_deg += 20) {
    const auto w = weights_at(phase_deg);
    core::migration_stats stats;
    const auto rebalanced = core::rebalance(curve, current, w, nproc, &stats);
    t.new_row()
        .add(phase_deg)
        .add(lb_of(static_part, w), 4)
        .add(lb_of(rebalanced, w), 4)
        .add(stats.moved_elements)
        .add(100.0 * stats.moved_fraction, 1);
    current = rebalanced;
  }
  std::printf("%s\n", t.str().c_str());

  // Migration cost as a function of how far the pattern moved between
  // rebalances — the incremental property: smaller steps migrate less.
  table t2({"phase step (deg)", "moved elements", "moved %"});
  const auto p0 = core::rebalance(curve, static_part, weights_at(0), nproc);
  for (const int step : {5, 10, 20, 45, 90, 180}) {
    core::migration_stats stats;
    core::rebalance(curve, p0, weights_at(step), nproc, &stats);
    t2.new_row()
        .add(step)
        .add(stats.moved_elements)
        .add(100.0 * stats.moved_fraction, 1);
  }
  std::printf("%s\n", t2.str().c_str());
  std::printf("Reading: weighted re-slicing holds LB near 0 where the static\n"
              "partition sits at 0.25 under the 2x day/night skew; the\n"
              "migration per rebalance scales with how far the pattern moved\n"
              "since the last one (the first table's first row pays the\n"
              "one-time cost of leaving the unweighted partition).\n");
  return 0;
}
