// Dynamic rebalancing bench (beyond the paper): a rotating day/night cost
// pattern (physics following the terminator) drives periodic repartitioning.
// Compares, per phase: (a) keeping the static unweighted SFC partition,
// (b) SFC re-slicing with current weights, and the migration volume the
// re-slice costs — the trade HOMME's weighted-SFC mode makes in practice.
//
// Besides the console tables, the run writes BENCH_rebalance.json so the
// numbers are machine-comparable across commits.

#include <cmath>
#include <cstdio>

#include "core/cube_curve.hpp"
#include "core/rebalance.hpp"
#include "core/sfc_partition.hpp"
#include "io/json.hpp"
#include "mesh/cubed_sphere.hpp"
#include "partition/partition.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace sfp;
  std::printf("== Rebalancing under a rotating day/night cost pattern ==\n\n");

  const int ne = 16, nproc = 192;
  const mesh::cubed_sphere mesh(ne);
  const int k = mesh.num_elements();
  const auto curve = core::build_cube_curve(mesh);
  const auto static_part = core::sfc_partition(curve, nproc);

  std::printf("Ne=%d (K=%d), %d processors; day-side physics costs 2x\n\n",
              ne, k, nproc);
  table t({"phase (deg)", "LB static", "LB rebalanced", "moved elements",
           "moved %"});

  const auto weights_at = [&](double phase_deg) {
    const double phase = phase_deg * 3.14159265358979 / 180.0;
    std::vector<graph::weight> w(static_cast<std::size_t>(k), 2);
    for (int e = 0; e < k; ++e) {
      const mesh::vec3 c = mesh.element_center_sphere(e);
      // Day side: hemisphere facing (cos phase, sin phase, 0).
      if (c.x * std::cos(phase) + c.y * std::sin(phase) > 0)
        w[static_cast<std::size_t>(e)] = 4;
    }
    return w;
  };
  const auto lb_of = [&](const partition::partition& p,
                         const std::vector<graph::weight>& w) {
    graph::builder gb(k);
    gb.add_edge(0, 1);
    for (int e = 0; e < k; ++e)
      gb.set_vertex_weight(e, w[static_cast<std::size_t>(e)]);
    const auto g = gb.build();
    return load_balance(
        std::span<const graph::weight>(partition::part_weights(p, g)));
  };

  io::json_value doc = io::json_object();
  doc.object["bench"] = io::json_string("rebalance");
  doc.object["ne"] = io::json_number(ne);
  doc.object["nproc"] = io::json_number(nproc);
  io::json_value phases = io::json_array();

  partition::partition current = static_part;
  for (int phase_deg = 0; phase_deg <= 120; phase_deg += 20) {
    const auto w = weights_at(phase_deg);
    core::migration_stats stats;
    const auto rebalanced = core::rebalance(curve, current, w, nproc, &stats);
    t.new_row()
        .add(phase_deg)
        .add(lb_of(static_part, w), 4)
        .add(lb_of(rebalanced, w), 4)
        .add(stats.moved_elements)
        .add(100.0 * stats.moved_fraction, 1);
    io::json_value row = io::json_object();
    row.object["phase_deg"] = io::json_number(phase_deg);
    row.object["lb_static"] = io::json_number(lb_of(static_part, w));
    row.object["lb_rebalanced"] = io::json_number(lb_of(rebalanced, w));
    row.object["moved_elements"] = io::json_number(
        static_cast<double>(stats.moved_elements));
    row.object["moved_fraction"] = io::json_number(stats.moved_fraction);
    phases.array.push_back(row);
    current = rebalanced;
  }
  doc.object["phases"] = phases;
  std::printf("%s\n", t.str().c_str());

  // Migration cost as a function of how far the pattern moved between
  // rebalances — the incremental property: smaller steps migrate less.
  table t2({"phase step (deg)", "moved elements", "moved %"});
  io::json_value steps = io::json_array();
  const auto p0 = core::rebalance(curve, static_part, weights_at(0), nproc);
  for (const int step : {5, 10, 20, 45, 90, 180}) {
    core::migration_stats stats;
    core::rebalance(curve, p0, weights_at(step), nproc, &stats);
    t2.new_row()
        .add(step)
        .add(stats.moved_elements)
        .add(100.0 * stats.moved_fraction, 1);
    io::json_value row = io::json_object();
    row.object["step_deg"] = io::json_number(step);
    row.object["moved_elements"] = io::json_number(
        static_cast<double>(stats.moved_elements));
    row.object["moved_fraction"] = io::json_number(stats.moved_fraction);
    steps.array.push_back(row);
  }
  doc.object["phase_steps"] = steps;
  std::printf("%s\n", t2.str().c_str());
  io::write_json_file(doc, "BENCH_rebalance.json");
  std::printf("wrote BENCH_rebalance.json\n\n");
  std::printf("Reading: weighted re-slicing holds LB near 0 where the static\n"
              "partition sits at 0.25 under the 2x day/night skew; the\n"
              "migration per rebalance scales with how far the pattern moved\n"
              "since the last one (the first table's first row pays the\n"
              "one-time cost of leaving the unweighted partition).\n");
  return 0;
}
