// Regenerates the paper's Section 4 Hilbert-Peano study: K=1944 (Ne=18 =
// 2·3²) uses the nested Hilbert-Peano curve. The paper observes a smaller
// SFC advantage here (7% at 486 processors = 4 elements/processor) than the
// pure-Hilbert K=384 case at the same 4 elements/processor (13% at 96
// processors), and leaves open whether that is inherent to the nested curve.

#include <cstdio>

#include "common.hpp"
#include "sfc/curve.hpp"
#include "util/table.hpp"

int main() {
  using namespace sfp;
  std::printf("== Paper §4: Hilbert-Peano study, K=1944 vs K=384 at 4 "
              "elements/processor ==\n\n");

  table t({"K", "Ne", "curve", "Nproc", "elems/proc", "SFC advantage %",
           "paper"});

  {
    const bench::experiment exp(18);
    const auto rows = exp.evaluate(486);
    const auto& sfc = rows[0];
    const auto& best = rows[bench::experiment::best_mgp(rows)];
    t.new_row()
        .add(1944)
        .add(18)
        .add(sfc::schedule_name(exp.curve.face_schedule))
        .add(486)
        .add(4)
        .add(100.0 * (best.time.total_s / sfc.time.total_s - 1.0), 1)
        .add("7%");
  }
  {
    const bench::experiment exp(8);
    const auto rows = exp.evaluate(96);
    const auto& sfc = rows[0];
    const auto& best = rows[bench::experiment::best_mgp(rows)];
    t.new_row()
        .add(384)
        .add(8)
        .add(sfc::schedule_name(exp.curve.face_schedule))
        .add(96)
        .add(4)
        .add(100.0 * (best.time.total_s / sfc.time.total_s - 1.0), 1)
        .add("13%");
  }
  std::printf("%s\n", t.str().c_str());

  // Partition-quality comparison of the two curves at the same granularity,
  // to probe the paper's open question on curve quality itself.
  std::printf("SFC partition quality at 4 elements/processor:\n");
  table q({"K", "curve", "LB(nelemd)", "LB(spcv)", "edgecut", "max peers"});
  for (const auto& [ne, nproc] : {std::pair(18, 486), std::pair(8, 96)}) {
    const bench::experiment exp(ne);
    const auto row =
        exp.evaluate_partition("SFC", core::sfc_partition(exp.curve, nproc));
    q.new_row()
        .add(6 * ne * ne)
        .add(sfc::schedule_name(exp.curve.face_schedule))
        .add(row.metrics.lb_elems, 4)
        .add(row.metrics.lb_comm, 4)
        .add(row.metrics.edgecut_edges)
        .add(row.metrics.max_peers);
  }
  std::printf("%s", q.str().c_str());
  return 0;
}
