#include "common.hpp"

#include <cstdlib>
#include <string_view>

#include "core/validate.hpp"
#include "graph/validate.hpp"
#include "mesh/validate.hpp"
#include "util/contract.hpp"

namespace sfp::bench {

bool selfcheck_enabled() {
  static const bool on = [] {
    const char* v = std::getenv("SFCPART_SELFCHECK");
    return v != nullptr && *v != '\0' && std::string_view(v) != "0";
  }();
  return on;
}

namespace {

// Validate the fixed per-experiment structures once, up front.
void selfcheck_experiment(const experiment& e) {
  const diagnostic mesh_d = mesh::validate_topology(e.mesh);
  SFP_REQUIRE(mesh_d.ok, "bench selfcheck: " + mesh_d.to_string());
  const diagnostic dual_d = graph::validate_csr(e.dual);
  SFP_REQUIRE(dual_d.ok, "bench selfcheck: " + dual_d.to_string());
  std::string curve_err;
  SFP_REQUIRE(core::verify_cube_curve(e.mesh, e.curve.order, &curve_err),
              "bench selfcheck: cube curve broken: " + curve_err);
}

}  // namespace

experiment::experiment(int ne_in)
    : ne(ne_in),
      mesh(ne_in),
      dual(mesh.dual_graph(/*edge_weight=*/8, /*corner_weight=*/1)),
      curve(core::build_cube_curve(mesh)),
      serial(perf::serial_step(mesh.num_elements(), machine, workload)) {
  if (selfcheck_enabled()) selfcheck_experiment(*this);
}

eval_row experiment::evaluate_partition(const std::string& name,
                                        const partition::partition& p) const {
  if (selfcheck_enabled()) {
    partition::validate(p, dual);
    SFP_REQUIRE(partition::all_parts_nonempty(p),
                "bench selfcheck: partition '" + name + "' has an empty part");
  }
  eval_row row;
  row.name = name;
  row.metrics = partition::compute_metrics(dual, p);
  row.time = perf::simulate_step(dual, p, machine, workload);
  row.speedup = perf::speedup(serial, row.time);
  row.gflops = perf::sustained_gflops(mesh.num_elements(), workload, row.time);
  return row;
}

std::vector<eval_row> experiment::evaluate(int nproc) const {
  std::vector<eval_row> rows;
  const partition::partition sfc_plan = core::sfc_partition(curve, nproc);
  if (selfcheck_enabled()) {
    // The SFC plan additionally owes the curve-segment invariants: one
    // contiguous segment per part, within the paper's balance bound.
    const diagnostic d = core::validate_plan(sfc_plan, curve);
    SFP_REQUIRE(d.ok, "bench selfcheck: " + d.to_string());
  }
  rows.push_back(evaluate_partition("SFC", sfc_plan));
  for (const auto& [algo, part] : mgp::run_all_methods(dual, nproc)) {
    rows.push_back(evaluate_partition(mgp::method_name(algo), part));
  }
  return rows;
}

std::size_t experiment::best_mgp(const std::vector<eval_row>& rows) {
  std::size_t best = 0;
  bool have = false;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].name == "SFC") continue;
    if (!have || rows[i].time.total_s < rows[best].time.total_s) {
      best = i;
      have = true;
    }
  }
  SFP_REQUIRE(have, "no MGP rows present");
  return best;
}

std::vector<int> nproc_ladder(int ne, int lo, int hi) {
  const int k = 6 * ne * ne;
  std::vector<int> out;
  for (int p = lo; p <= hi && p <= k; ++p)
    if (k % p == 0) out.push_back(p);
  return out;
}

}  // namespace sfp::bench
