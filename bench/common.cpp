#include "common.hpp"

#include "util/require.hpp"

namespace sfp::bench {

experiment::experiment(int ne_in)
    : ne(ne_in),
      mesh(ne_in),
      dual(mesh.dual_graph(/*edge_weight=*/8, /*corner_weight=*/1)),
      curve(core::build_cube_curve(mesh)),
      serial(perf::serial_step(mesh.num_elements(), machine, workload)) {}

eval_row experiment::evaluate_partition(const std::string& name,
                                        const partition::partition& p) const {
  eval_row row;
  row.name = name;
  row.metrics = partition::compute_metrics(dual, p);
  row.time = perf::simulate_step(dual, p, machine, workload);
  row.speedup = perf::speedup(serial, row.time);
  row.gflops = perf::sustained_gflops(mesh.num_elements(), workload, row.time);
  return row;
}

std::vector<eval_row> experiment::evaluate(int nproc) const {
  std::vector<eval_row> rows;
  rows.push_back(evaluate_partition("SFC", core::sfc_partition(curve, nproc)));
  for (const auto& [algo, part] : mgp::run_all_methods(dual, nproc)) {
    rows.push_back(evaluate_partition(mgp::method_name(algo), part));
  }
  return rows;
}

std::size_t experiment::best_mgp(const std::vector<eval_row>& rows) {
  std::size_t best = 0;
  bool have = false;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].name == "SFC") continue;
    if (!have || rows[i].time.total_s < rows[best].time.total_s) {
      best = i;
      have = true;
    }
  }
  SFP_REQUIRE(have, "no MGP rows present");
  return best;
}

std::vector<int> nproc_ladder(int ne, int lo, int hi) {
  const int k = 6 * ne * ne;
  std::vector<int> out;
  for (int p = lo; p <= hi && p <= k; ++p)
    if (k % p == 0) out.push_back(p);
  return out;
}

}  // namespace sfp::bench
