#pragma once
// Shared experiment drivers for the benchmark harness. Each bench binary
// regenerates one table or figure of the paper; the heavy lifting — building
// the mesh and dual graph, producing SFC and MGP partitions, evaluating
// metrics and simulated execution time — is shared here.

#include <string>
#include <vector>

#include "core/cube_curve.hpp"
#include "core/sfc_partition.hpp"
#include "mesh/cubed_sphere.hpp"
#include "mgp/partitioner.hpp"
#include "partition/metrics.hpp"
#include "perf/machine.hpp"
#include "perf/simulate.hpp"

namespace sfp::bench {

/// One partitioning strategy evaluated at one processor count.
struct eval_row {
  std::string name;  ///< "SFC", "RB", "KWAY", "TV"
  partition::metrics metrics;
  perf::step_time time;
  double speedup = 0;
  double gflops = 0;
};

/// Everything fixed for one resolution.
struct experiment {
  explicit experiment(int ne);

  int ne;
  mesh::cubed_sphere mesh;
  graph::csr dual;           ///< edge weight np, corner weight 1 (GLL points)
  core::cube_curve curve;    ///< stitched global SFC (if Ne is compatible)
  perf::machine_model machine;
  perf::seam_workload workload;
  perf::step_time serial;

  /// Evaluate SFC plus all three MGP methods at `nproc`.
  std::vector<eval_row> evaluate(int nproc) const;

  /// Evaluate a single ready-made partition.
  eval_row evaluate_partition(const std::string& name,
                              const partition::partition& p) const;

  /// Index of the best (fastest simulated time) non-SFC row.
  static std::size_t best_mgp(const std::vector<eval_row>& rows);
};

/// Divisors of K=6·Ne² between lo and hi (the "equal elements per processor"
/// processor counts the paper sweeps).
std::vector<int> nproc_ladder(int ne, int lo, int hi);

/// True when SFCPART_SELFCHECK is set (non-empty, not "0") in the
/// environment. Every bench driver then runs the deep validators — mesh
/// topology, dual-graph structure, cube-curve stitching, and per-partition
/// audits — on the data it is about to measure, independent of whether the
/// library itself was built with SFCPART_AUDIT. Numbers from a benchmark
/// run that silently measured a broken partition are worse than no numbers.
bool selfcheck_enabled();

}  // namespace sfp::bench
