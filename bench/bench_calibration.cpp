// Calibration report: checks the machine/workload model against the two hard
// numbers published in the paper (§4 and Table 2), and times the *real*
// spectral-element kernel of the SEAM mini-app on this host for reference.

#include <cstdio>

#include "common.hpp"
#include "seam/advection.hpp"
#include "seam/distributed.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

int main() {
  using namespace sfp;
  std::printf("== Calibration: machine model vs paper constants ==\n\n");

  const perf::machine_model machine;
  const perf::seam_workload workload;
  table t({"quantity", "model", "paper"});
  t.new_row()
      .add("single-proc sustained (Mflop/s)")
      .add(machine.sustained_flops / 1e6, 0)
      .add("841");
  t.new_row()
      .add("sustained fraction of peak")
      .add(machine.sustained_fraction(), 3)
      .add("0.16");
  t.new_row()
      .add("per-interface message (bytes)")
      .add(workload.bytes_per_interface(), 0)
      .add("~1600 (implied by Table 2 TCV)");

  const bench::experiment exp(16);
  const auto rows = exp.evaluate(768);
  t.new_row()
      .add("TCV K=1536 @768 (Mbytes)")
      .add(rows[0].metrics.tcv_bytes(workload.bytes_per_interface()) / 1e6, 1)
      .add("16.8-17.7");
  std::printf("%s\n", t.str().c_str());

  // Real kernel timing on this host (not the paper's POWER4): one SSP-RK3
  // advection step on K=384, np=8 — demonstrates the mini-app does real
  // floating-point work at the modeled flop count.
  const mesh::cubed_sphere m(8);
  seam::advection_model model(m, 8);
  model.set_field([](mesh::vec3 p) { return p.x + p.y * p.z; });
  const double dt = model.cfl_dt(0.3);
  model.step(dt);  // warm up
  constexpr int kSteps = 10;
  stopwatch clock;
  for (int s = 0; s < kSteps; ++s) model.step(dt);
  const double per_step = clock.seconds() / kSteps;
  const double model_flops = workload.flops_per_element() * m.num_elements();
  std::printf("real mini-app step on this host: %.2f ms "
              "(modelled workload: %.0f kflop/element)\n",
              per_step * 1e3, workload.flops_per_element() / 1e3);
  std::printf("host sustained rate on the kernel: %.2f Gflop/s equivalent\n",
              model_flops / per_step / 1e9);
  return 0;
}
