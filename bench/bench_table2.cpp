// Regenerates paper Table 2: partition statistics for K=1536 (Ne=16) on 768
// processors — computational and communication load balance, total
// communication volume, edgecut, and simulated execution time per timestep
// for the SFC partition vs the three METIS-family methods (KWAY, TV, RB).

#include <cstdio>
#include <stdexcept>

#include "common.hpp"
#include "util/table.hpp"

int main() {
  using namespace sfp;
  const int ne = 16, nproc = 768;
  std::printf("== Paper Table 2: partition statistics, K=%d on %d procs ==\n\n",
              6 * ne * ne, nproc);

  const bench::experiment exp(ne);
  const auto rows = exp.evaluate(nproc);

  table t({"Metric", "SFC", "KWAY", "TV", "RB"});
  const auto row_of = [&](const char* name) -> const bench::eval_row& {
    for (const auto& r : rows)
      if (r.name == name) return r;
    throw std::runtime_error("missing row");
  };
  const bench::eval_row* cols[4] = {&row_of("SFC"), &row_of("KWAY"),
                                    &row_of("TV"), &row_of("RB")};

  t.new_row().add("LB(nelemd)");
  for (const auto* c : cols) t.add(c->metrics.lb_elems, 4);
  t.new_row().add("LB(spcv)");
  for (const auto* c : cols) t.add(c->metrics.lb_comm, 4);
  t.new_row().add("TCV (Mbytes)");
  for (const auto* c : cols)
    t.add(c->metrics.tcv_bytes(exp.workload.bytes_per_interface()) / 1.0e6, 1);
  t.new_row().add("edgecut");
  for (const auto* c : cols) t.add(c->metrics.edgecut_edges);
  t.new_row().add("Time (usec)");
  for (const auto* c : cols) t.add(c->time.total_s * 1e6, 0);
  std::printf("%s\n", t.str().c_str());

  // The paper's reading of this table: SFC has perfect computational load
  // balance; reductions in LB(nelemd) correlate with reductions in time.
  const double best_mgp_time =
      rows[bench::experiment::best_mgp(rows)].time.total_s;
  std::printf("SFC time advantage over best METIS-family partition: %.1f%%\n",
              100.0 * (best_mgp_time / row_of("SFC").time.total_s - 1.0));
  std::printf("(paper reports a 22%% execution-rate improvement at 768 procs)\n");
  return 0;
}
