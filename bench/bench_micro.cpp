// Microbenchmarks (google-benchmark): raw speed of the library's hot paths —
// curve generation, cube stitching, dual-graph construction, partitioners,
// metrics, and the spectral-element kernel. These are host-performance
// numbers, not paper reproductions.
//
// Besides the console report, every run is teed into BENCH_micro.json
// (name / iterations / adjusted real and cpu time / user counters) so the
// numbers are machine-comparable across commits.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <utility>
#include <vector>

#include "io/json.hpp"

#include "core/cube_curve.hpp"
#include "core/sfc_partition.hpp"
#include "mesh/cubed_sphere.hpp"
#include "mgp/partitioner.hpp"
#include "obs/obs.hpp"
#include "partition/metrics.hpp"
#include "seam/advection.hpp"
#include "sfc/curve.hpp"

namespace {

using namespace sfp;

void BM_HilbertCurve(benchmark::State& state) {
  const int level = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sfc::hilbert_curve(level));
  }
  state.SetItemsProcessed(state.iterations() * (1LL << (2 * state.range(0))));
}
BENCHMARK(BM_HilbertCurve)->Arg(3)->Arg(5)->Arg(7);

void BM_PeanoCurve(benchmark::State& state) {
  const int level = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sfc::peano_curve(level));
  }
}
BENCHMARK(BM_PeanoCurve)->Arg(2)->Arg(3)->Arg(4);

void BM_CubeStitch(benchmark::State& state) {
  const int ne = static_cast<int>(state.range(0));
  const mesh::cubed_sphere m(ne);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::build_cube_curve(m));
  }
}
BENCHMARK(BM_CubeStitch)->Arg(8)->Arg(16)->Arg(24);

void BM_MeshBuild(benchmark::State& state) {
  const int ne = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const mesh::cubed_sphere m(ne);
    benchmark::DoNotOptimize(m.num_elements());
  }
}
BENCHMARK(BM_MeshBuild)->Arg(8)->Arg(16)->Arg(32);

void BM_DualGraph(benchmark::State& state) {
  const mesh::cubed_sphere m(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.dual_graph());
  }
}
BENCHMARK(BM_DualGraph)->Arg(8)->Arg(16);

void BM_SfcPartition(benchmark::State& state) {
  const mesh::cubed_sphere m(16);
  const auto curve = core::build_cube_curve(m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::sfc_partition(curve, static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_SfcPartition)->Arg(96)->Arg(768);

void BM_MgpKway(benchmark::State& state) {
  const mesh::cubed_sphere m(8);
  const auto dual = m.dual_graph();
  mgp::options opt;
  opt.algo = mgp::method::kway;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mgp::partition_graph(dual, static_cast<int>(state.range(0)), opt));
  }
}
BENCHMARK(BM_MgpKway)->Arg(16)->Arg(96)->Arg(192);

void BM_MgpRecursiveBisection(benchmark::State& state) {
  const mesh::cubed_sphere m(8);
  const auto dual = m.dual_graph();
  mgp::options opt;
  opt.algo = mgp::method::recursive_bisection;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mgp::partition_graph(dual, static_cast<int>(state.range(0)), opt));
  }
}
BENCHMARK(BM_MgpRecursiveBisection)->Arg(16)->Arg(96)->Arg(192);

void BM_Metrics(benchmark::State& state) {
  const mesh::cubed_sphere m(16);
  const auto dual = m.dual_graph();
  const auto p = core::sfc_partition(m, 768);
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition::compute_metrics(dual, p));
  }
}
BENCHMARK(BM_Metrics);

// Observability overhead: the disabled-scope cost is what every
// instrumented hot path pays when no `sfcpart trace` session is active
// (one relaxed load + branch), and the enabled-scope cost bounds the
// distortion a live session adds to the timeline it records.
void BM_ObsScopeDisabled(benchmark::State& state) {
  obs::trace::disable();
  for (auto _ : state) {
    SFP_TRACE_SCOPE_CAT("bench.scope", "bench");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ObsScopeDisabled);

void BM_ObsScopeEnabled(benchmark::State& state) {
  obs::trace::enable();
  for (auto _ : state) {
    SFP_TRACE_SCOPE_CAT("bench.scope", "bench");
    benchmark::ClobberMemory();
  }
  obs::trace::disable();
}
BENCHMARK(BM_ObsScopeEnabled);

void BM_ObsCounter(benchmark::State& state) {
  obs::counter& c = obs::registry::global().get_counter("bench.counter");
  for (auto _ : state) c.inc();
}
BENCHMARK(BM_ObsCounter);

void BM_ObsHistogram(benchmark::State& state) {
  obs::histogram& h = obs::registry::global().get_histogram("bench.hist");
  std::int64_t v = 1;
  for (auto _ : state) {
    h.observe(v);
    v = (v * 31) % 100000 + 1;
  }
}
BENCHMARK(BM_ObsHistogram);

// The real overhead criterion: an instrumented library hot path
// (sfc_partition carries a trace scope + counter) with tracing disabled,
// comparable against BM_SfcPartition history.
void BM_SfcPartitionObsDisabled(benchmark::State& state) {
  obs::trace::disable();
  const mesh::cubed_sphere m(16);
  const auto curve = core::build_cube_curve(m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::sfc_partition(curve, static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_SfcPartitionObsDisabled)->Arg(768);

void BM_SeamStep(benchmark::State& state) {
  const mesh::cubed_sphere m(static_cast<int>(state.range(0)));
  seam::advection_model model(m, 8);
  model.set_field([](mesh::vec3 p) { return p.x; });
  const double dt = model.cfl_dt(0.3);
  for (auto _ : state) {
    model.step(dt);
  }
  state.SetItemsProcessed(state.iterations() * m.num_elements());
}
BENCHMARK(BM_SeamStep)->Arg(4)->Arg(8);

// Console output as usual, plus one JSON row per finished run.
class json_tee_reporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& report) override {
    for (const Run& run : report) {
      if (run.error_occurred) continue;
      io::json_value row = io::json_object();
      row.object["name"] = io::json_string(run.benchmark_name());
      row.object["iterations"] =
          io::json_number(static_cast<double>(run.iterations));
      row.object["real_time"] = io::json_number(run.GetAdjustedRealTime());
      row.object["cpu_time"] = io::json_number(run.GetAdjustedCPUTime());
      row.object["time_unit"] =
          io::json_string(benchmark::GetTimeUnitString(run.time_unit));
      for (const auto& [counter_name, counter] : run.counters)
        row.object[counter_name] =
            io::json_number(static_cast<double>(counter.value));
      rows_.push_back(std::move(row));
    }
    ConsoleReporter::ReportRuns(report);
  }

  std::vector<io::json_value> take_rows() { return std::move(rows_); }

 private:
  std::vector<io::json_value> rows_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  json_tee_reporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  io::json_value doc = io::json_object();
  doc.object["bench"] = io::json_string("micro");
  io::json_value results = io::json_array();
  results.array = reporter.take_rows();
  const std::size_t nrows = results.array.size();
  doc.object["results"] = std::move(results);
  io::write_json_file(doc, "BENCH_micro.json");
  std::printf("wrote BENCH_micro.json (%zu runs)\n", nrows);
  return 0;
}
