// The paper's §5 future work: "Experimental results on systems with greater
// than 768 processors should be obtained in order to investigate the scaling
// properties of the SFC approach." The machine model has no 768-processor
// limit, so this bench extends Figure 10 to the full K=1536 ladder and to
// the K=3456 (Ne=24) resolution the introduction names as the top climate
// configuration — up to one element per processor.

#include <cstdio>

#include "common.hpp"
#include "util/table.hpp"

int main() {
  using namespace sfp;
  std::printf("== Beyond 768 processors (paper §5 future work) ==\n\n");

  for (const int ne : {16, 24}) {
    const bench::experiment exp(ne);
    const int k = 6 * ne * ne;
    std::printf("K=%d (Ne=%d):\n", k, ne);
    table t({"Nproc", "elems/proc", "Gflop/s SFC", "Gflop/s best-METIS",
             "SFC advantage %", "parallel eff %"});
    for (const int nproc : bench::nproc_ladder(ne, 256, k)) {
      const auto rows = exp.evaluate(nproc);
      const auto& sfc = rows[0];
      const auto& best = rows[bench::experiment::best_mgp(rows)];
      t.new_row()
          .add(nproc)
          .add(k / nproc)
          .add(sfc.gflops, 1)
          .add(best.gflops, 1)
          .add(100.0 * (sfc.gflops / best.gflops - 1.0), 1)
          .add(100.0 * sfc.speedup / nproc, 1);
    }
    std::printf("%s\n", t.str().c_str());
  }
  std::printf("Reading: the SFC advantage keeps growing to 1 element per\n"
              "processor; parallel efficiency decays as communication\n"
              "dominates, bounding useful scaling for a fixed problem size\n"
              "(the classic strong-scaling wall, now quantified past 768).\n");
  return 0;
}
