// Ablation: refinement order of the nested Hilbert-Peano curve.
//
// The paper (§5) flags "the impact that refinement order has on the
// Hilbert-Peano curve" as an open question. This bench builds the K=1944
// (Ne=18 = 2·3²) and Ne=12 (2²·3) global curves with Peano-first,
// Hilbert-first, and interleaved schedules and compares the partition
// quality and simulated time of each at several processor counts.

#include <cstdio>

#include "common.hpp"
#include "sfc/curve.hpp"
#include "util/table.hpp"

int main() {
  using namespace sfp;
  std::printf("== Ablation: Hilbert-Peano refinement order ==\n\n");

  struct named_order {
    sfc::nesting_order order;
    const char* name;
  };
  const named_order orders[] = {
      {sfc::nesting_order::peano_first, "peano-first (paper)"},
      {sfc::nesting_order::hilbert_first, "hilbert-first"},
      {sfc::nesting_order::interleaved, "interleaved"},
  };

  for (const int ne : {12, 18}) {
    const int k = 6 * ne * ne;
    std::printf("Ne=%d (K=%d):\n", ne, k);
    table t({"schedule", "Nproc", "LB(nelemd)", "LB(spcv)", "edgecut",
             "max peers", "time (usec)"});
    const bench::experiment exp(ne);
    for (const named_order& no : orders) {
      const auto curve = core::build_cube_curve(exp.mesh, no.order);
      for (const int nproc : {k / 8, k / 4, k / 2}) {
        const auto row = exp.evaluate_partition(
            no.name, core::sfc_partition(curve, nproc));
        t.new_row()
            .add(no.name)
            .add(nproc)
            .add(row.metrics.lb_elems, 4)
            .add(row.metrics.lb_comm, 4)
            .add(row.metrics.edgecut_edges)
            .add(row.metrics.max_peers)
            .add(row.time.total_s * 1e6, 0);
      }
    }
    std::printf("%s\n", t.str().c_str());
  }
  std::printf("Reading: all orders give LB(nelemd)=0; differences show up in\n"
              "communication locality (edgecut, LB(spcv)), answering the\n"
              "paper's open question for this metric suite.\n");
  return 0;
}
