// Ablation: does counting corner-only neighbours in the communication graph
// matter? The paper's element graph connects elements sharing "a boundary or
// corner point"; this bench compares partition metrics and simulated times
// when the dual graph includes vs excludes corner-only edges.

#include <cstdio>

#include "common.hpp"
#include "util/table.hpp"

int main() {
  using namespace sfp;
  std::printf("== Ablation: corner-only neighbours in the dual graph ==\n\n");

  const int ne = 8;
  const mesh::cubed_sphere mesh(ne);
  const auto curve = core::build_cube_curve(mesh);
  const auto dual_full = mesh.dual_graph(8, 1, /*include_corners=*/true);
  const auto dual_edges = mesh.dual_graph(8, 1, /*include_corners=*/false);
  const perf::machine_model machine;
  const perf::seam_workload workload;

  table t({"graph", "partitioner", "Nproc", "edgecut", "TCV (ifaces)",
           "max peers", "time (usec)"});
  for (const int nproc : {48, 96, 192, 384}) {
    for (const bool corners : {true, false}) {
      const auto& dual = corners ? dual_full : dual_edges;
      // SFC partition is graph-independent; MGP sees the chosen graph.
      const auto sfc_part = core::sfc_partition(curve, nproc);
      mgp::options opt;
      opt.algo = mgp::method::kway;
      const auto kway_part = mgp::partition_graph(dual, nproc, opt);
      for (const auto& [name, part] :
           {std::pair<const char*, const partition::partition&>("SFC", sfc_part),
            {"KWAY", kway_part}}) {
        // Metrics/time always evaluated on the FULL physical graph — the
        // model exchanges corner points regardless of what the partitioner
        // was shown.
        const auto m = partition::compute_metrics(dual_full, part);
        const auto time = perf::simulate_step(dual_full, part, machine, workload);
        t.new_row()
            .add(corners ? "edges+corners" : "edges-only")
            .add(name)
            .add(nproc)
            .add(m.edgecut_edges)
            .add(m.tcv_interfaces, 0)
            .add(m.max_peers)
            .add(time.total_s * 1e6, 0);
      }
    }
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("Reading: hiding corner couplings from the graph partitioner\n"
              "lets it split diagonal pairs it cannot see; the physical\n"
              "communication volume then exceeds what it optimized for.\n");
  return 0;
}
