// Regenerates paper Figure 7: speedup vs processor count for K=384 (Ne=8),
// SFC vs the best METIS-family partition, relative to one processor.
// Expected shape: comparable at small Nproc; SFC pulls ahead above ~50
// processors (fewer than 8 elements each); paper reports 37% at 384.

#include <cstdio>

#include "common.hpp"
#include "util/table.hpp"

int main() {
  using namespace sfp;
  const int ne = 8;
  std::printf("== Paper Figure 7: speedup vs Nproc, K=%d (Ne=%d) ==\n\n",
              6 * ne * ne, ne);
  const bench::experiment exp(ne);

  table t({"Nproc", "elems/proc", "speedup SFC", "speedup best-METIS",
           "best", "SFC advantage %"});
  double adv_at_max = 0;
  for (const int nproc : bench::nproc_ladder(ne, 2, 384)) {
    const auto rows = exp.evaluate(nproc);
    const auto& sfc = rows[0];
    const auto& best = rows[bench::experiment::best_mgp(rows)];
    const double adv = 100.0 * (best.time.total_s / sfc.time.total_s - 1.0);
    t.new_row()
        .add(nproc)
        .add(6 * ne * ne / nproc)
        .add(sfc.speedup, 1)
        .add(best.speedup, 1)
        .add(best.name)
        .add(adv, 1);
    adv_at_max = adv;
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("single-processor rate: %.0f Mflop/s (paper: 841 Mflop/s)\n",
              perf::sustained_gflops(exp.mesh.num_elements(), exp.workload,
                                     exp.serial) * 1e3);
  std::printf("SFC advantage at 384 procs: %.1f%% (paper: 37%%)\n",
              adv_at_max);
  return 0;
}
