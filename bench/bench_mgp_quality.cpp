// MGP (METIS stand-in) quality report: documents the behaviour of the three
// partitioning methods across granularities so the substitution for METIS is
// itself auditable — RB should balance best, KWAY should cut least, TV
// should carry the lowest total communication volume.
//
// Besides the console tables, the run writes BENCH_mgp_quality.json so the
// quality metrics are machine-comparable across commits. The `time_usec`
// column is wall clock and excluded from any cross-commit comparison; the
// quality metrics are deterministic.

#include <cstdio>

#include "common.hpp"
#include "io/json.hpp"
#include "util/table.hpp"

int main() {
  using namespace sfp;
  std::printf("== MGP quality: RB vs KWAY vs TV across granularities ==\n\n");

  io::json_value doc = io::json_object();
  doc.object["bench"] = io::json_string("mgp_quality");
  io::json_value grids = io::json_array();

  for (const int ne : {8, 16}) {
    const bench::experiment exp(ne);
    const int k = 6 * ne * ne;
    std::printf("K=%d (Ne=%d):\n", k, ne);
    io::json_value grid = io::json_object();
    grid.object["ne"] = io::json_number(ne);
    grid.object["k"] = io::json_number(k);
    io::json_value rows_json = io::json_array();
    table t({"Nproc", "method", "LB(nelemd)", "edgecut", "TCV (ifaces)",
             "LB(spcv)", "time (usec)"});
    for (const int nproc : bench::nproc_ladder(ne, 8, k / 2)) {
      if (k / nproc > 48) continue;  // keep the report focused on fine grain
      const auto rows = exp.evaluate(nproc);
      for (const auto& row : rows) {
        if (row.name == "SFC") continue;
        t.new_row()
            .add(nproc)
            .add(row.name)
            .add(row.metrics.lb_elems, 4)
            .add(row.metrics.edgecut_edges)
            .add(row.metrics.tcv_interfaces, 0)
            .add(row.metrics.lb_comm, 4)
            .add(row.time.total_s * 1e6, 0);
        io::json_value jr = io::json_object();
        jr.object["nproc"] = io::json_number(nproc);
        jr.object["method"] = io::json_string(row.name);
        jr.object["lb_elems"] = io::json_number(row.metrics.lb_elems);
        jr.object["edgecut"] =
            io::json_number(static_cast<double>(row.metrics.edgecut_edges));
        jr.object["tcv_interfaces"] =
            io::json_number(row.metrics.tcv_interfaces);
        jr.object["lb_comm"] = io::json_number(row.metrics.lb_comm);
        jr.object["time_usec"] = io::json_number(row.time.total_s * 1e6);
        rows_json.array.push_back(jr);
      }
    }
    grid.object["rows"] = rows_json;
    grids.array.push_back(grid);
    std::printf("%s\n", t.str().c_str());
  }
  doc.object["grids"] = grids;
  io::write_json_file(doc, "BENCH_mgp_quality.json");
  std::printf("wrote BENCH_mgp_quality.json\n\n");
  std::printf("Reading: RB keeps LB(nelemd) smallest; KWAY trades balance\n"
              "for edgecut once elements/processor is O(1); TV targets\n"
              "total communication volume (the paper observed METIS's TV\n"
              "failing to beat KWAY on TCV — see EXPERIMENTS.md for how this\n"
              "implementation behaves).\n");
  return 0;
}
