// MGP (METIS stand-in) quality report: documents the behaviour of the three
// partitioning methods across granularities so the substitution for METIS is
// itself auditable — RB should balance best, KWAY should cut least, TV
// should carry the lowest total communication volume.

#include <cstdio>

#include "common.hpp"
#include "util/table.hpp"

int main() {
  using namespace sfp;
  std::printf("== MGP quality: RB vs KWAY vs TV across granularities ==\n\n");

  for (const int ne : {8, 16}) {
    const bench::experiment exp(ne);
    const int k = 6 * ne * ne;
    std::printf("K=%d (Ne=%d):\n", k, ne);
    table t({"Nproc", "method", "LB(nelemd)", "edgecut", "TCV (ifaces)",
             "LB(spcv)", "time (usec)"});
    for (const int nproc : bench::nproc_ladder(ne, 8, k / 2)) {
      if (k / nproc > 48) continue;  // keep the report focused on fine grain
      const auto rows = exp.evaluate(nproc);
      for (const auto& row : rows) {
        if (row.name == "SFC") continue;
        t.new_row()
            .add(nproc)
            .add(row.name)
            .add(row.metrics.lb_elems, 4)
            .add(row.metrics.edgecut_edges)
            .add(row.metrics.tcv_interfaces, 0)
            .add(row.metrics.lb_comm, 4)
            .add(row.time.total_s * 1e6, 0);
      }
    }
    std::printf("%s\n", t.str().c_str());
  }
  std::printf("Reading: RB keeps LB(nelemd) smallest; KWAY trades balance\n"
              "for edgecut once elements/processor is O(1); TV targets\n"
              "total communication volume (the paper observed METIS's TV\n"
              "failing to beat KWAY on TCV — see EXPERIMENTS.md for how this\n"
              "implementation behaves).\n");
  return 0;
}
