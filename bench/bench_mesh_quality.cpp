// Mesh-quality report: gnomonic distortion of the cubed-sphere under the
// equidistant mapping (the paper's construction) vs the equiangular mapping
// production dycores adopted — context for the weighted-partitioning
// ablation (element cost tracks element size when dt is area-limited).

#include <cstdio>

#include "mesh/cubed_sphere.hpp"
#include "mesh/quality.hpp"
#include "util/table.hpp"

int main() {
  using namespace sfp;
  using namespace sfp::mesh;
  std::printf("== Cubed-sphere mesh quality: equidistant vs equiangular ==\n\n");

  table t({"Ne", "projection", "area max/min", "max aspect", "mean aspect"});
  for (const int ne : {4, 8, 16, 32}) {
    for (const auto proj : {projection::equidistant, projection::equiangular}) {
      const auto q = analyze_quality(cubed_sphere(ne, proj));
      t.new_row()
          .add(ne)
          .add(proj == projection::equidistant ? "equidistant (paper)"
                                               : "equiangular")
          .add(q.area_ratio, 3)
          .add(q.max_aspect, 3)
          .add(q.mean_aspect, 3);
    }
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("Reading: equidistant subdivision (as in the paper) leaves a\n"
              "~5x area spread at high Ne — the partitioning consequence is\n"
              "that 'equal element counts' is only 'equal work' if per-\n"
              "element cost is resolution-independent; the weighted-slicing\n"
              "ablation covers the case where it is not.\n");
  return 0;
}
